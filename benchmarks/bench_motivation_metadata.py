"""E8 — §2 motivation: per-page metadata work is linear in memory size.

"The Linux PAGE structure has 25 separate flags ... Any operations that
are linear in the amount of memory available (physical) or used (virtual)
may get relatively slower."  Measured: the cost of one metadata pass over
all frames (what reclaim scans, memory hotplug, and compaction do) as
physical memory grows — against the O(1) alternative of per-extent
bitmap state.
"""

from conftest import run_once

from repro.analysis import Series, format_series_table
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.mem.bitmap import Bitmap
from repro.mem.frame_meta import FrameTable, PageFlags
from repro.units import GIB, PAGE_SIZE

SIZES_GB = [1, 4, 16, 64]


def scan_cost(size_gb: int) -> int:
    clock = SimClock()
    table = FrameTable(clock, CostModel(), EventCounters())
    frames = size_gb * GIB // PAGE_SIZE
    # One aging pass: touch every frame's metadata (as kswapd would).
    for meta in table.scan(iter(range(frames))):
        meta.clear_flag(PageFlags.REFERENCED)
    return clock.now


def bitmap_cost(size_gb: int) -> int:
    clock = SimClock()
    costs = CostModel()
    frames = size_gb * GIB // PAGE_SIZE
    bitmap = Bitmap(frames)
    # The file-system equivalent: one run update covering the same state.
    bitmap.set_range(0, frames)
    clock.advance(costs.bitmap_run_ns)
    return clock.now


def run_experiment():
    struct_page = Series("struct-page scan")
    extent_bitmap = Series("extent bitmap")
    for size_gb in SIZES_GB:
        struct_page.add(size_gb, scan_cost(size_gb))
        extent_bitmap.add(size_gb, bitmap_cost(size_gb))
    return struct_page, extent_bitmap


def test_motivation_metadata_linear(benchmark, record_result):
    struct_page, extent_bitmap = run_once(benchmark, run_experiment)
    record_result(
        "motivation_metadata",
        format_series_table(
            [struct_page, extent_bitmap], x_label="phys GB",
            y_unit_divisor=1e6, y_suffix="ms",
        ),
    )
    assert struct_page.growth_factor() >= 60  # linear in frames
    assert extent_bitmap.is_roughly_constant(0.01)
    # At 64 GB the gap is astronomical — the paper's point.
    assert struct_page.y_at(64) > 1_000_000 * extent_bitmap.y_at(64)
