"""E1b — Figure 1b/6b: touch one byte per page, demand vs pre-populated.

Paper: "the cost of demand faulting in the file (MAP_PRIVATE) for large
files is more than 50x that of pre-populating page tables", and the
student figures add that populated reads are near zero up to 128 KB.
Files are read after being written (warm LLC), per the report's method.
"""

from conftest import make_kernel, run_once, spawn_bench

from repro.analysis import Series, format_ratio, format_series_table
from repro.units import KIB, USEC
from repro.vm.vma import MapFlags

SIZES_KB = [4, 16, 64, 256, 1024]


def read_cost(size_kb: int, populate: bool):
    kernel = make_kernel()
    process, sys = spawn_bench(kernel)
    size = size_kb * KIB
    fd = sys.open(kernel.tmpfs, "/file", create=True, size=size)
    kernel.warm_file(process.fd(fd).inode)
    flags = MapFlags.PRIVATE | (MapFlags.POPULATE if populate else MapFlags.NONE)
    va = sys.mmap(size, fd=fd, flags=flags)
    with kernel.measure() as m:
        kernel.access_range(process, va, size)  # one byte per page
    return m.elapsed_ns, m.counter_delta


def run_experiment():
    demand = Series("demand read")
    populated = Series("populate read")
    for size_kb in SIZES_KB:
        ns, meta = read_cost(size_kb, populate=False)
        demand.add(size_kb, ns, meta)
        ns, meta = read_cost(size_kb, populate=True)
        populated.add(size_kb, ns, meta)
    return demand, populated


def test_fig1b_demand_vs_populated_read(benchmark, record_result):
    demand, populated = run_once(benchmark, run_experiment)
    table = format_series_table([demand, populated], x_label="file KB")
    ratio = format_ratio(demand.y_at(1024), populated.y_at(1024))
    record_result(
        "fig1b_access_cost", table + f"\nratio at 1024 KB: {ratio}"
    )
    assert demand.is_increasing() and demand.growth_factor() > 100
    # The paper's >50x claim at large sizes.
    assert demand.y_at(1024) > 50 * populated.y_at(1024)
    # Student figure: populated reads up to 128 KB are ~zero.
    assert populated.y_at(64) < 2 * USEC
    # Mechanism: demand faults once per page, populated never.
    assert demand.meta[-1].get("fault_minor") == 256
    assert populated.meta[-1].get("fault_minor") is None
