"""E1a — Figure 1a/6a: mmap() on tmpfs, demand vs MAP_POPULATE.

Paper: demand (MAP_PRIVATE) mmap is constant (~8 us on tmpfs); populating
page tables grows linearly with file size (~250 us at 1024 KB).
"""

from conftest import make_kernel, run_once, spawn_bench

from repro.analysis import Series, format_series_table
from repro.units import KIB, USEC
from repro.vm.vma import MapFlags

SIZES_KB = [4, 16, 64, 256, 1024]


def mmap_cost(size_kb: int, populate: bool) -> int:
    kernel = make_kernel()
    process, sys = spawn_bench(kernel)
    size = size_kb * KIB
    fd = sys.open(kernel.tmpfs, "/file", create=True, size=size)
    flags = MapFlags.PRIVATE | (MapFlags.POPULATE if populate else MapFlags.NONE)
    with kernel.measure() as m:
        sys.mmap(size, fd=fd, flags=flags)
    return m.elapsed_ns


def run_experiment():
    demand = Series("mmap demand")
    populate = Series("mmap populate")
    for size_kb in SIZES_KB:
        demand.add(size_kb, mmap_cost(size_kb, populate=False))
        populate.add(size_kb, mmap_cost(size_kb, populate=True))
    return demand, populate


def test_fig1a_mmap_demand_vs_populate(benchmark, record_result):
    demand, populate = run_once(benchmark, run_experiment)
    record_result(
        "fig1a_mmap_cost",
        format_series_table([demand, populate], x_label="file KB"),
    )
    # Shape assertions (the paper's claims).
    assert demand.is_roughly_constant(tolerance=0.05)
    assert 6 * USEC <= demand.y_at(4) <= 10 * USEC  # ~8 us anchor
    assert populate.is_increasing()
    assert populate.growth_factor() > 20  # linear in pages
    assert 150 * USEC <= populate.y_at(1024) <= 350 * USEC  # ~250 us anchor
