"""Ablation — PBM with and without extent alignment.

Shared subtrees need 2 MiB-aligned extents ("the natural granularities of
page table structures"); without alignment PBM degrades to private
per-page mapping.  Measured: second-process mapping cost under aligned vs
unaligned allocators — quantifying what the alignment policy buys.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.pbm import PbmManager
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB

FILE_MIB = 8


def second_map_cost(aligned: bool):
    kernel = Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512 if aligned else 1,
        )
    )
    if not aligned:
        kernel.nvm_allocator.alloc_extent(3)  # guarantee misalignment
    pbm = PbmManager(kernel)
    inode = kernel.pmfs.create("/f", size=FILE_MIB * MIB)
    pbm.map_file(kernel.spawn("first"), inode)
    second = kernel.spawn("second")
    with kernel.measure() as m:
        mapping = pbm.map_file(second, inode)
    return m.elapsed_ns, m.counter_delta.get("pte_write", 0), mapping


def run_experiment():
    aligned_ns, aligned_ptes, aligned_map = second_map_cost(aligned=True)
    unaligned_ns, unaligned_ptes, unaligned_map = second_map_cost(aligned=False)
    return [
        ("2 MiB-aligned extents", aligned_ns, aligned_ptes,
         aligned_map.shared_window_count),
        ("unaligned extents", unaligned_ns, unaligned_ptes,
         unaligned_map.shared_window_count),
    ]


def test_ablation_pbm_alignment(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "ablation_pbm_alignment",
        format_table(
            ["allocator", "2nd map us", "pte writes", "shared windows"],
            [(n, f"{ns / 1000:.2f}", p, w) for n, ns, p, w in rows],
        ),
    )
    aligned, unaligned = rows
    assert aligned[2] == FILE_MIB // 2  # link writes only
    assert unaligned[2] == FILE_MIB * 256  # per-page fallback
    assert aligned[1] < unaligned[1] / 3
    assert aligned[3] > 0 and unaligned[3] == 0
