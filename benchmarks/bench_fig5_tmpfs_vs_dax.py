"""E5 — student Figures 4/5: TMPFS vs DAX mmap and read costs.

The report measures mmap(MAP_PRIVATE) at ~8 us on TMPFS and ~15 us on
DAX (extra direct-mapping setup), with the same demand-vs-populate read
behaviour on both file systems.
"""

from conftest import make_kernel, run_once, spawn_bench

from repro.analysis import Series, format_series_table
from repro.units import KIB, USEC
from repro.vm.vma import MapFlags

SIZES_KB = [4, 64, 256, 1024]


def costs_for(size_kb: int, use_dax: bool, populate: bool):
    kernel = make_kernel(nvm_gib=2)
    fs = kernel.pmfs if use_dax else kernel.tmpfs
    process, sys = spawn_bench(kernel)
    size = size_kb * KIB
    fd = sys.open(fs, "/file", create=True, size=size)
    kernel.warm_file(process.fd(fd).inode)
    flags = MapFlags.PRIVATE | (MapFlags.POPULATE if populate else MapFlags.NONE)
    with kernel.measure() as mmap_m:
        va = sys.mmap(size, fd=fd, flags=flags)
    with kernel.measure() as read_m:
        kernel.access_range(process, va, size)
    return mmap_m.elapsed_ns, read_m.elapsed_ns


def run_experiment():
    series = {}
    for fs_name, use_dax in (("tmpfs", False), ("dax", True)):
        mmap_series = Series(f"{fs_name} mmap private")
        demand_read = Series(f"{fs_name} demand read")
        populate_read = Series(f"{fs_name} populate read")
        for size_kb in SIZES_KB:
            mmap_ns, read_ns = costs_for(size_kb, use_dax, populate=False)
            mmap_series.add(size_kb, mmap_ns)
            demand_read.add(size_kb, read_ns)
            _, populated_ns = costs_for(size_kb, use_dax, populate=True)
            populate_read.add(size_kb, populated_ns)
        series[fs_name] = (mmap_series, demand_read, populate_read)
    return series


def test_fig5_tmpfs_vs_dax(benchmark, record_result):
    series = run_once(benchmark, run_experiment)
    tmpfs_mmap, tmpfs_demand, tmpfs_pop = series["tmpfs"]
    dax_mmap, dax_demand, dax_pop = series["dax"]
    record_result(
        "fig5_tmpfs_vs_dax",
        format_series_table(
            [tmpfs_mmap, dax_mmap, tmpfs_demand, dax_demand, tmpfs_pop, dax_pop],
            x_label="file KB",
        ),
    )
    # Student-report anchors: ~8 us tmpfs, ~15 us DAX, both constant.
    assert tmpfs_mmap.is_roughly_constant(0.05)
    assert dax_mmap.is_roughly_constant(0.05)
    assert 6 * USEC <= tmpfs_mmap.y_at(4) <= 10 * USEC
    assert 12 * USEC <= dax_mmap.y_at(4) <= 18 * USEC
    # Reads: demand linear and far above populated on both file systems.
    for demand, populated in ((tmpfs_demand, tmpfs_pop), (dax_demand, dax_pop)):
        assert demand.is_increasing()
        assert demand.y_at(1024) > 20 * populated.y_at(1024)
