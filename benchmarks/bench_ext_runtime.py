"""E14 — conclusion: O(1) principles in the language runtime.

"...and up to language runtimes and applications."  Two runtime designs
over file-only memory, measured against the per-object baseline:

* region heap: releasing N objects' memory = one file release, vs an
  eager allocator (glibc above MMAP_THRESHOLD) that munmaps per object;
* log-structured store: segment reclamation by file deletion, with the
  cleaner's copy cost as the explicit space-for-time bill.
"""

from conftest import run_once

from repro.analysis import Series, format_series_table, format_table
from repro.core.fom import FileOnlyMemory, FomHeap
from repro.core.o1.policy import ExtentPolicy
from repro.kernel import Kernel, MachineConfig
from repro.runtime import LogStructuredStore, ObjectHeap
from repro.units import GIB, KIB, MIB, PAGE_SIZE

OBJECT_COUNTS = [64, 256, 1024]
OBJECT_BYTES = 8 * KIB  # above glibc's MMAP_THRESHOLD analogue


def make_kernel():
    return Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=4 * GIB,
            pmfs_extent_align_frames=512,
        )
    )


def per_object_free_cost(count):
    """Eager allocator: each large object is its own anon mapping that is
    munmapped (returned to the OS) on free — per-object kernel work."""
    kernel = make_kernel()
    process = kernel.spawn("p")
    sys = kernel.syscalls(process)
    from repro.vm.vma import MapFlags

    addrs = [
        sys.mmap(OBJECT_BYTES, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
        for _ in range(count)
    ]
    with kernel.measure() as m:
        for addr in addrs:
            sys.munmap(addr, OBJECT_BYTES)
    return m.elapsed_ns


def region_free_cost(count):
    kernel = make_kernel()
    fom = FileOnlyMemory(kernel)
    objheap = ObjectHeap(
        fom, kernel.spawn("p"), region_bytes=max(16 * MIB, count * 16 * KIB)
    )
    region = objheap.create_region()
    for _ in range(count):
        objheap.new(OBJECT_BYTES, region=region)
    with kernel.measure() as m:
        objheap.free_region(region)
    return m.elapsed_ns


def log_cleaning_stats():
    kernel = make_kernel()
    policy = ExtentPolicy(
        min_extent_bytes=PAGE_SIZE, align_to_page_structures=False
    )
    fom = FileOnlyMemory(kernel, policy=policy)
    log = LogStructuredStore(
        fom, kernel.spawn("p"), segment_bytes=256 * KIB
    )
    for key in range(400):
        log.put(key, bytes([key % 251]) * 2000)
    for key in range(0, 400, 3):
        log.delete(key)
    for key in range(1, 400, 3):
        log.delete(key)
    before = log.stats()
    with kernel.measure() as m:
        freed = log.clean(max_segments=16)
    after = log.stats()
    return before, after, freed, m.elapsed_ns


def run_experiment():
    per_object = Series("per-object free")
    region = Series("region free")
    for count in OBJECT_COUNTS:
        per_object.add(count, per_object_free_cost(count))
        region.add(count, region_free_cost(count))
    log_before, log_after, freed, clean_ns = log_cleaning_stats()
    return per_object, region, (log_before, log_after, freed, clean_ns)


def test_runtime_o1(benchmark, record_result):
    per_object, region, log_result = run_once(benchmark, run_experiment)
    log_before, log_after, freed, clean_ns = log_result
    log_rows = format_table(
        ["metric", "before clean", "after clean"],
        [
            ("segments", log_before["segments"], log_after["segments"]),
            ("dead KiB", log_before["dead_bytes"] // KIB,
             log_after["dead_bytes"] // KIB),
            ("utilization", f"{log_before['utilization']:.2f}",
             f"{log_after['utilization']:.2f}"),
        ],
    )
    record_result(
        "ext_runtime",
        format_series_table([per_object, region], x_label="objects")
        + f"\n\nlog cleaner: freed {freed} segments in {clean_ns / 1000:.1f} us\n"
        + log_rows,
    )
    # Region death is constant; eager per-object release is linear.
    assert region.is_roughly_constant(0.10)
    assert per_object.growth_factor() > 10
    assert region.y_at(1024) < per_object.y_at(1024) / 100
    # The cleaner reclaimed real segments and reduced dead space.
    assert freed > 0
    assert log_after["dead_bytes"] < log_before["dead_bytes"]
