"""Ablation — zero-pool sizing: reserve frames vs foreground stalls.

The pre-zeroed pool is only O(1) while stocked.  Sweep the pool target
against a bursty allocation pattern and report foreground zeroing stalls
and the reserved-memory bill — the sizing curve an operator would tune.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion
from repro.mem.zeropool import ZeroPool
from repro.units import GIB, KIB, MIB, PAGE_SIZE

POOL_TARGETS = [0, 64, 512, 4096]
BURSTS = 32
BURST_FRAMES = 128  # 512 KiB per burst


def run_pool(target: int):
    clock = SimClock()
    counters = EventCounters()
    costs = CostModel()
    region = MemoryRegion(start=0, size=1 * GIB, tech=MemoryTechnology.DRAM)
    buddy = BuddyAllocator(region, max_order=18)
    pool = ZeroPool(buddy, target, clock=clock, costs=costs, counters=counters)
    pool.refill()
    for _ in range(BURSTS):
        frames = [pool.take() for _ in range(BURST_FRAMES)]
        for pfn in frames:
            pool.give_back(pfn)
        pool.refill()  # background zeroer runs between bursts
    ledger = pool.ledger()
    return (
        ledger["foreground_zero_ns"],
        ledger["background_zero_ns"],
        counters.get("zeropool_miss"),
        target * PAGE_SIZE // KIB,
    )


def run_experiment():
    rows = []
    for target in POOL_TARGETS:
        fg, bg, misses, reserved_kib = run_pool(target)
        rows.append((target, fg / 1000, bg / 1000, misses, reserved_kib))
    return rows


def test_ablation_zeropool_sizing(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "ablation_zeropool",
        format_table(
            ["pool frames", "foreground us", "background us", "misses", "reserved KiB"],
            [
                (t, f"{fg:.1f}", f"{bg:.1f}", misses, kib)
                for t, fg, bg, misses, kib in rows
            ],
        ),
    )
    foregrounds = [fg for _, fg, _, _, _ in rows]
    # Bigger pools strictly reduce foreground stalls; a pool covering the
    # burst eliminates them.
    assert foregrounds == sorted(foregrounds, reverse=True)
    assert foregrounds[-1] == 0.0
    # No pool = everything in the foreground.
    assert rows[0][3] == BURSTS * BURST_FRAMES
