"""Ablation — contiguity under churn: when does O(1) allocation degrade?

§3.1: "O(1) operation is only possible if most memory can be allocated
contiguously."  This ablation runs allocation/free churn at increasing
steady-state utilization and reports how often a request still gets a
single extent, how fragmented files become, and the largest free run —
the empirical boundary of the paper's assumption that ample memory keeps
allocators in their happy regime.
"""

import random

from conftest import run_once

from repro.analysis import format_table
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE

UTILIZATION_TARGETS = [0.25, 0.50, 0.75, 0.90]
CHURN_OPS = 600


def churn_at(target_utilization: float):
    # A deliberately small device: fragmentation only threatens when
    # capacity stops being ample, which is the boundary we're probing.
    kernel = Kernel(MachineConfig(dram_bytes=256 * MIB, nvm_bytes=128 * MIB))
    fs = kernel.pmfs
    alloc = kernel.nvm_allocator
    rng = random.Random(int(target_utilization * 1000))
    total = alloc.total_blocks
    live = []
    counter = 0
    single_extent = 0
    created = 0
    for _ in range(CHURN_OPS):
        used = total - alloc.free_blocks
        if used / total < target_utilization or not live:
            pages = rng.choice([4, 16, 64, 256, 1024])
            name = f"/churn{counter}"
            counter += 1
            inode = fs.create(name, size=pages * PAGE_SIZE)
            live.append(name)
            created += 1
            if fs.extent_count(inode) == 1:
                single_extent += 1
        else:
            victim = live.pop(rng.randrange(len(live)))
            fs.unlink(victim)
    extents_per_file = [
        fs.extent_count(fs.lookup(name)) for name in live
    ]
    avg_extents = (
        sum(extents_per_file) / len(extents_per_file) if extents_per_file else 0
    )
    largest_run_mb = 0
    run = alloc._bitmap.largest_clear_run()
    largest_run_mb = run * PAGE_SIZE / MIB
    return (
        single_extent / created,
        avg_extents,
        largest_run_mb,
        alloc.free_blocks * PAGE_SIZE / MIB,
    )


def run_experiment():
    rows = []
    for target in UTILIZATION_TARGETS:
        single_rate, avg_extents, largest_mb, free_mb = churn_at(target)
        rows.append(
            (
                f"{target:.0%}",
                f"{single_rate:.1%}",
                f"{avg_extents:.2f}",
                f"{largest_mb:.0f}",
                f"{free_mb:.0f}",
            )
        )
    return rows


def test_ablation_fragmentation(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "ablation_fragmentation",
        format_table(
            ["target util", "single-extent allocs", "extents/file",
             "largest free MiB", "free MiB"],
            rows,
        ),
    )
    # At storage-study utilization (<=50%), allocation is effectively
    # always contiguous — the paper's operating point.
    low = float(rows[0][1].rstrip("%"))
    mid = float(rows[1][1].rstrip("%"))
    assert low >= 99.0 and mid >= 95.0
    # Pressure erodes contiguity: the largest free run at 90% is a
    # fraction of the 25% case.
    runs = [float(r[3]) for r in rows]
    assert runs[-1] < runs[0] / 2
