"""E4 — student Figure 3: page faults while accessing mapped pages.

map_private takes one minor fault per page touched; map_populate takes
none.  The counts, not times, are the figure's y-axis.
"""

from conftest import make_kernel, run_once, spawn_bench

from repro.analysis import Series, format_series_table
from repro.units import KIB
from repro.vm.vma import MapFlags

SIZES_KB = [4, 16, 64, 256, 1024]


def fault_count(size_kb: int, populate: bool) -> int:
    kernel = make_kernel()
    process, sys = spawn_bench(kernel)
    size = size_kb * KIB
    fd = sys.open(kernel.tmpfs, "/file", create=True, size=size)
    flags = MapFlags.PRIVATE | (MapFlags.POPULATE if populate else MapFlags.NONE)
    va = sys.mmap(size, fd=fd, flags=flags)
    kernel.access_range(process, va, size)
    return process.space.fault_stats_total()


def run_experiment():
    demand = Series("map_private faults")
    populated = Series("map_populate faults")
    for size_kb in SIZES_KB:
        demand.add(size_kb, fault_count(size_kb, populate=False))
        populated.add(size_kb, fault_count(size_kb, populate=True))
    return demand, populated


def test_fig4_fault_counts(benchmark, record_result):
    demand, populated = run_once(benchmark, run_experiment)
    record_result(
        "fig4_fault_counts",
        format_series_table(
            [demand, populated], x_label="file KB", y_unit_divisor=1,
            y_suffix="faults",
        ),
    )
    for size_kb in SIZES_KB:
        assert demand.y_at(size_kb) == size_kb * KIB // (4 * KIB)
        assert populated.y_at(size_kb) == 0
