"""E11 — §3.1: pre-created / persistent page tables for O(1) mapping.

"Mapping becomes changing a single pointer in a page table ... pre-created
page tables can be stored persistently, so that even when mapping a file
the first time, an existing page table can be re-used for O(1)
operations."  Measured: populate-map vs premap-attach across file sizes,
attach cost across repeated attachments, and first-map-after-crash with
persistent tables.
"""

from conftest import run_once

from repro.analysis import Series, format_series_table, format_table
from repro.core.fom import FileOnlyMemory, MapStrategy, PersistenceManager
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB
from repro.vm.vma import MapFlags

SIZES_MB = [2, 8, 32, 128]


def make_kernel():
    return Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
        )
    )


def populate_map(size_mb: int) -> int:
    kernel = make_kernel()
    process = kernel.spawn("p")
    sys = kernel.syscalls(process)
    fd = sys.open(kernel.pmfs, "/f", create=True, size=size_mb * MIB)
    with kernel.measure() as m:
        sys.mmap(
            size_mb * MIB, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE
        )
    return m.elapsed_ns


def premap_attach(size_mb: int) -> int:
    kernel = make_kernel()
    fom = FileOnlyMemory(kernel)
    inode = kernel.pmfs.create("/f", size=size_mb * MIB)
    fom.ptcache.premap(inode)  # built once, outside the measured region
    process = kernel.spawn("p")
    with kernel.measure() as m:
        fom.ptcache.attach(process.space, inode)
    return m.elapsed_ns


def crash_recovery_first_map() -> tuple:
    kernel = make_kernel()
    fom = FileOnlyMemory(kernel)
    pm = PersistenceManager(fom)
    process = kernel.spawn("before")
    region = fom.allocate(
        process, 32 * MIB, name="/db", persistent=True,
        strategy=MapStrategy.PREMAP,
    )
    fom.ptcache.persist(region.inode)
    fom.release(region)
    kernel.crash()
    pm.recover()
    inode = kernel.pmfs.lookup("/db")
    survivor = kernel.spawn("after")
    with kernel.measure() as m:
        fom.ptcache.attach(survivor.space, inode)
    return m.elapsed_ns, m.counter_delta.get("premap_build")


def run_experiment():
    populate = Series("populate map")
    attach = Series("premap attach")
    for size_mb in SIZES_MB:
        populate.add(size_mb, populate_map(size_mb))
        attach.add(size_mb, premap_attach(size_mb))
    recover_ns, rebuilds = crash_recovery_first_map()
    return populate, attach, recover_ns, rebuilds


def test_premap_o1_mapping(benchmark, record_result):
    populate, attach, recover_ns, rebuilds = run_once(benchmark, run_experiment)
    table = format_series_table([populate, attach], x_label="file MB")
    record_result(
        "premap",
        table
        + f"\nfirst map after crash (persistent tables): "
        f"{recover_ns / 1000:.2f} us, rebuilds: {rebuilds}",
    )
    assert populate.growth_factor() > 20
    # Attach grows only with 2 MiB windows: 64x size -> 64x links, but
    # link writes are 25 ns — at 128 MiB that's still ~constant next to
    # the mmap cost.
    assert attach.y_at(128) < populate.y_at(128) / 20
    assert attach.y_at(2) < populate.y_at(2)
    # After the crash the persistent tables made the first map cheap:
    # no rebuild happened.
    assert rebuilds is None
    assert recover_ns < attach.y_at(32) * 2
