"""Ablation — mapping granularity: 4 KiB vs 2 MiB vs 1 GiB pages.

"Intel and ARM processors support only a few page sizes, and large pages
have alignment restrictions" (§3).  Sweep the allowed page sizes when
populating a 1 GiB aligned region: PTE count, map time, and TLB-miss
behaviour on a scan.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.fom import FileOnlyMemory
from repro.core.o1.policy import ExtentPolicy
from repro.kernel import Kernel, MachineConfig
from repro.paging.hugepages import choose_page_runs
from repro.units import GIB, HUGE_PAGE_1G, HUGE_PAGE_2M, MIB, PAGE_SIZE

REGION = 1 * GIB

GRANULARITIES = [
    ("4 KiB only", (PAGE_SIZE,)),
    ("up to 2 MiB", (HUGE_PAGE_2M, PAGE_SIZE)),
    ("up to 1 GiB", (HUGE_PAGE_1G, HUGE_PAGE_2M, PAGE_SIZE)),
]


def map_with_granularity(allowed):
    kernel = Kernel(
        MachineConfig(dram_bytes=512 * MIB, nvm_bytes=4 * GIB,
                      pmfs_extent_align_frames=HUGE_PAGE_1G // PAGE_SIZE)
    )
    inode = kernel.pmfs.create("/big", size=REGION)
    process = kernel.spawn("p")
    space = process.space
    backing = kernel.pmfs.backing_for(inode)
    (_, pfn, run), = list(backing.frame_runs(0, REGION // PAGE_SIZE))
    vaddr = space.pick_address(REGION, alignment=HUGE_PAGE_1G)
    with kernel.measure() as map_m:
        for va, pa, size in choose_page_runs(
            vaddr, pfn * PAGE_SIZE, REGION, allowed=allowed
        ):
            space.page_table.map(va, pa // size, page_size=size)
    # TLB behaviour: scan one byte per 2 MiB (beyond 4 KiB TLB reach).
    from repro.vm.vma import MapFlags, Protection

    space.mmap(
        REGION, Protection.rw(), MapFlags.SHARED, backing, addr=None
    )  # VMA for fault-safety; translations already installed at vaddr
    with kernel.measure() as scan_m:
        for offset in range(0, REGION, 2 * MIB):
            kernel.access(process, vaddr + offset)
    return (
        map_m.elapsed_ns,
        map_m.counter_delta.get("pte_write", 0),
        scan_m.counter_delta.get("tlb_miss", 0),
    )


def run_experiment():
    rows = []
    for name, allowed in GRANULARITIES:
        ns, ptes, misses = map_with_granularity(allowed)
        rows.append((name, ns / 1e6, ptes, misses))
    return rows


def test_ablation_hugepage_granularity(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "ablation_hugepage",
        format_table(
            ["granularity", "map ms", "pte writes", "tlb misses (scan)"],
            [(n, f"{ms:.3f}", p, m) for n, ms, p, m in rows],
        ),
    )
    ptes = [p for _, _, p, _ in rows]
    assert ptes == [262144, 512, 1]  # the 512x-per-level collapse
    times = [ms for _, ms, _, _ in rows]
    assert times[2] < times[1] < times[0]
    misses = [m for _, _, _, m in rows]
    assert misses[2] <= misses[1] <= misses[0]
