"""Tier-1 wall-clock microbenchmarks under pytest-benchmark.

One test per registered op in :data:`repro.perf.bench.TIER1_OPS` — the
same registry ``repro-o1 bench`` runs and ``BENCH_tier1.json`` commits.
pytest-benchmark's machinery (``--benchmark-only``,
``--benchmark-json``, ``--benchmark-histogram``) works over exactly the
operations the regression gate tracks; ``--quick`` bounds rounds and
batches the same way ``repro-o1 bench --quick`` does.

Each measured round executes the op's full batch (pytest-benchmark
forbids ``iterations > 1`` alongside a per-round ``setup``), so the
reported figures are wall time **per batch**; divide by the ``batch``
value in ``extra_info`` to compare against the committed trajectory's
per-op ``median_ns``.
"""

from __future__ import annotations

import pytest

from conftest import quick_mode

from repro.perf.bench import FULL_ROUNDS, QUICK_ROUNDS, TIER1_OPS


@pytest.mark.parametrize("op", TIER1_OPS, ids=lambda op: op.name)
def test_tier1_op(benchmark, op):
    quick = quick_mode()
    rounds = QUICK_ROUNDS if quick else FULL_ROUNDS
    batch = op.batch_for(quick)

    def setup():
        # Fresh machine per round; its construction stays off the clock.
        return (op.prepare(),), {}

    def target(fn):
        result = None
        for _ in range(batch):
            result = fn()
        return result

    benchmark.extra_info["note"] = op.note
    benchmark.extra_info["batch"] = batch
    result = benchmark.pedantic(
        target,
        setup=setup,
        rounds=rounds,
        iterations=1,
        warmup_rounds=0,
    )
    # Ops return something (a PA, a region, an inode) — pin that the
    # measured call actually did work rather than short-circuiting.
    assert result is not None
