"""E13 — §3.1 "Memory locking": DMA setup, pinned vs implicit vs PRI.

"Currently letting a device access memory often requires locking the page
in memory; even devices that support page faults through an IOMMU incur
high penalties.  With file-only memory, data is implicitly pinned."

Measured: cost to make a buffer device-visible (and tear it down) as
buffer size grows, for (a) per-page pinning, (b) IOMMU page faults
(first-touch PRI round trips), (c) file-extent implicit pinning.
"""

from conftest import run_once

from repro.analysis import Series, format_series_table
from repro.core.fom import FileOnlyMemory
from repro.hw.iommu import PRI_FAULT_NS, Iommu
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, PAGE_SIZE

SIZES_MB = [1, 4, 16, 64]


def make_env():
    kernel = Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    fom = FileOnlyMemory(kernel)
    process = kernel.spawn("driver")
    iommu = Iommu(kernel.clock, kernel.costs, kernel.counters, kernel.frame_table)
    return kernel, fom, process, iommu


def buffer_runs(kernel, fom, process, size):
    region = fom.allocate(process, size)
    backing = region.inode.fs.backing_for(region.inode)
    return [
        (pfn * PAGE_SIZE, run * PAGE_SIZE)
        for _, pfn, run in backing.frame_runs(0, size // PAGE_SIZE)
    ]


def pinned_cost(size):
    kernel, fom, process, iommu = make_env()
    runs = buffer_runs(kernel, fom, process, size)
    with kernel.measure() as m:
        region = iommu.map_pinned(runs)
        iommu.transfer(region, size)
        iommu.unmap_pinned(region)
    return m.elapsed_ns


def pri_cost(size):
    kernel, fom, process, iommu = make_env()
    buffer_runs(kernel, fom, process, size)
    with kernel.measure() as m:
        # No pinning: the device faults on each page it touches (streaming
        # transfer touches them all once).
        for _ in range(size // PAGE_SIZE):
            iommu.device_fault()
    return m.elapsed_ns


def implicit_cost(size):
    kernel, fom, process, iommu = make_env()
    runs = buffer_runs(kernel, fom, process, size)
    with kernel.measure() as m:
        region = iommu.map_implicit(runs)
        iommu.transfer(region, size)
        iommu.unmap_implicit(region)
    return m.elapsed_ns


def run_experiment():
    pinned = Series("pin/unpin")
    pri = Series("IOMMU faults")
    implicit = Series("implicit (FOM)")
    for size_mb in SIZES_MB:
        size = size_mb * MIB
        pinned.add(size_mb, pinned_cost(size))
        pri.add(size_mb, pri_cost(size))
        implicit.add(size_mb, implicit_cost(size))
    return pinned, pri, implicit


def test_dma_pinning(benchmark, record_result):
    pinned, pri, implicit = run_once(benchmark, run_experiment)
    record_result(
        "ext_dma_pinning",
        format_series_table([pinned, pri, implicit], x_label="buffer MB"),
    )
    assert pinned.growth_factor() > 30  # linear in pages, both directions
    assert pri.growth_factor() > 30  # a PRI trip per touched page
    assert implicit.is_roughly_constant(0.05)  # one extent, any size
    # The paper's ordering at every size: implicit << pinned << faulting.
    for size_mb in SIZES_MB:
        assert implicit.y_at(size_mb) < pinned.y_at(size_mb) / 50
        assert pinned.y_at(size_mb) < pri.y_at(size_mb)
