"""Shared helpers for the benchmark harness.

Every bench:

* rebuilds the paper experiment on the simulator and prints the same
  rows/series the paper's figure plots (simulated microseconds);
* writes that table to ``benchmarks/results/<name>.txt`` so
  EXPERIMENTS.md can quote real output, plus a machine-readable
  ``<name>.json`` sibling (parsed rows) so the perf trajectory can be
  tracked across PRs;
* asserts the figure's qualitative shape (so ``pytest benchmarks/`` is
  itself a regression gate);
* wraps the experiment in pytest-benchmark (wall-clock of the harness).

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.tables import parse_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Write a named result table under benchmarks/results/.

    Emits both ``<name>.txt`` (the human table) and ``<name>.json``
    (``{"name": ..., "rows": [...]}`` with the same cells parsed back
    into numbers) so tooling can diff results across PRs.
    """

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        document = {"name": name, "rows": parse_table(text)}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(document, indent=1) + "\n"
        )
        print(f"\n=== {name} ===\n{text}")

    return _record


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single round (experiments are deterministic;
    simulated time, not wall time, is the result of record)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
