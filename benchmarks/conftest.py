"""Shared helpers for the benchmark harness.

Every bench:

* rebuilds the paper experiment on the simulator and prints the same
  rows/series the paper's figure plots (simulated microseconds);
* writes that table to ``benchmarks/results/<name>.txt`` so
  EXPERIMENTS.md can quote real output, plus a machine-readable
  ``<name>.json`` sibling (parsed rows) so the perf trajectory can be
  tracked across PRs;
* asserts the figure's qualitative shape (so ``pytest benchmarks/`` is
  itself a regression gate);
* wraps the experiment in pytest-benchmark (wall-clock of the harness).

Run with ``pytest benchmarks/ --benchmark-only``.  Two options bound the
wall-clock spend for every bench file — no per-file timing loops:

* ``--quick`` — one round everywhere, tier-1 microbenchmarks at their
  bounded quick batches (the CI mode);
* ``--bench-rounds N`` — N pytest-benchmark rounds per experiment for
  tighter wall-clock medians (simulated results are deterministic, so
  extra rounds only help the *wall* figures).

Machine construction is deduped here too: :func:`make_kernel` and
:func:`spawn_bench` replace the per-file ``Kernel(MachineConfig(...))``
boilerplate.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.tables import parse_table
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Rounds for run_once(); pytest_configure overwrites from the options.
_ROUNDS = 1
_QUICK = False


def pytest_addoption(parser):
    group = parser.getgroup("repro benchmarks")
    group.addoption(
        "--quick", action="store_true", default=False,
        help="bounded rounds for every bench (the CI bench-job mode)",
    )
    group.addoption(
        "--bench-rounds", type=int, default=None, metavar="N",
        help="pytest-benchmark rounds per experiment (default 1; "
             "ignored under --quick)",
    )


def pytest_configure(config):
    global _ROUNDS, _QUICK
    _QUICK = bool(config.getoption("--quick"))
    rounds = config.getoption("--bench-rounds")
    _ROUNDS = 1 if _QUICK else max(1, rounds or 1)


def bench_rounds() -> int:
    """Rounds run_once() uses (1 unless --bench-rounds raised it)."""
    return _ROUNDS


def quick_mode() -> bool:
    """True under --quick: every bench stays at its bounded budget."""
    return _QUICK


# ----------------------------------------------------------------------
# Shared machine construction (deduped from the per-file boilerplate)
# ----------------------------------------------------------------------
def make_kernel(dram_mib: int = 512, nvm_gib: int = 0, **overrides) -> Kernel:
    """The benches' standard machine: DRAM in MiB, NVM in GiB."""
    return Kernel(
        MachineConfig(
            dram_bytes=dram_mib * MIB, nvm_bytes=nvm_gib * GIB, **overrides
        )
    )


def spawn_bench(kernel: Kernel, name: str = "bench"):
    """(process, syscalls) pair for a fresh benchmark process."""
    process = kernel.spawn(name)
    return process, kernel.syscalls(process)


@pytest.fixture
def record_result():
    """Write a named result table under benchmarks/results/.

    Emits both ``<name>.txt`` (the human table) and ``<name>.json``
    (``{"name": ..., "rows": [...]}`` with the same cells parsed back
    into numbers) so tooling can diff results across PRs.
    """

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        document = {"name": name, "rows": parse_table(text)}
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(document, indent=1) + "\n"
        )
        print(f"\n=== {name} ===\n{text}")

    return _record


def run_once(benchmark, fn):
    """Benchmark ``fn`` under the harness's round budget.

    The simulated result of record is deterministic, so one round
    suffices for the figures; ``--bench-rounds N`` re-runs the
    experiment for tighter *wall-clock* medians (``--quick`` pins one
    round).  The first round's return value is what callers assert on.
    """
    return benchmark.pedantic(
        fn, rounds=bench_rounds(), iterations=1, warmup_rounds=0
    )
