"""Ablation — extent-size policy: the space-for-time dial.

DESIGN.md calls out extent sizing as the core trade.  Sweep the minimum
extent size (4 KiB = no rounding ... 2 MiB = paper's choice) and report
both sides of the bargain: mapping cost (PTEs per region) and wasted
bytes, over a realistic mixed-size allocation trace.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.fom import FileOnlyMemory
from repro.core.o1.policy import ExtentPolicy
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.workloads import AllocTrace, TraceOp

MIN_EXTENTS = [4 * KIB, 64 * KIB, 512 * KIB, 2 * MIB]
OPERATIONS = 300


def run_policy(min_extent: int):
    kernel = Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=4 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    align = min_extent >= 2 * MIB
    policy = ExtentPolicy(
        min_extent_bytes=min_extent, align_to_page_structures=align
    )
    fom = FileOnlyMemory(kernel, policy=policy)
    process = kernel.spawn("p")
    trace = AllocTrace(seed=13, large_bytes_max=8 * MIB).generate(
        OPERATIONS, live_target=48
    )
    live = {}
    with kernel.measure() as m:
        for event in trace:
            if event.op is TraceOp.MALLOC:
                live[event.tag] = fom.allocate(process, max(event.size, 1))
            else:
                fom.release(live.pop(event.tag))
    return (
        m.elapsed_ns,
        m.counter_delta.get("pte_write", 0),
        policy.ledger.wasted_bytes,
        policy.ledger.overhead_ratio,
    )


def run_experiment():
    rows = []
    for min_extent in MIN_EXTENTS:
        ns, ptes, waste, ratio = run_policy(min_extent)
        rows.append(
            (
                f"{min_extent // KIB} KiB",
                ns / 1e6,
                ptes,
                waste // MIB,
                f"{ratio:.1f}x",
            )
        )
    return rows


def test_ablation_extent_policy(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "ablation_extent_policy",
        format_table(
            ["min extent", "time ms", "pte writes", "waste MiB", "overhead"],
            [(n, f"{ms:.2f}", p, w, o) for n, ms, p, w, o in rows],
        ),
    )
    # Time and PTE counts fall as extents grow; waste rises.
    times = [ms for _, ms, _, _, _ in rows]
    ptes = [p for _, _, p, _, _ in rows]
    wastes = [w for _, _, _, w, _ in rows]
    assert times[-1] < times[0]
    assert ptes[-1] < ptes[0] / 5
    assert wastes[-1] > wastes[0]
