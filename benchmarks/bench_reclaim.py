"""E10 — §3.1/§4.1: file-granularity reclamation vs page scanning.

Baseline: clock (and 2Q) reclaim scans per-page metadata to free memory
under pressure.  File-only memory deletes cold discardable files instead.
Measured: simulated time and pages/metadata touched to reclaim the same
number of bytes from the same resident footprint.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.fom import FileOnlyMemory, FileReclaimer
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB
from repro.vm.reclaimd import ClockReclaimer, TwoQueueReclaimer

RESIDENT_MIB = 64
RECLAIM_MIB = 16
FILE_COUNT = 8


def scan_case(reclaimer_cls):
    kernel = Kernel(
        MachineConfig(dram_bytes=512 * MIB, nvm_bytes=0, swap_pages=65536)
    )
    process = kernel.spawn("baseline", track_lru=True)
    sys = kernel.syscalls(process)
    va = sys.mmap(RESIDENT_MIB * MIB)
    kernel.access_range(process, va, RESIDENT_MIB * MIB)
    reclaimer = reclaimer_cls(kernel.lru, kernel.frame_table, kernel.counters)
    with kernel.measure() as m:
        reclaimed = reclaimer.reclaim(RECLAIM_MIB * MIB // 4096)
    return m.elapsed_ns, m.counter_delta.get("reclaim_scanned", 0), reclaimed


def file_case():
    kernel = Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    fom = FileOnlyMemory(kernel)
    reclaimer = FileReclaimer(fom)
    process = kernel.spawn("fom")
    per_file = RESIDENT_MIB // FILE_COUNT
    for index in range(FILE_COUNT):
        region = fom.allocate(
            process, per_file * MIB, name=f"/cache{index}", discardable=True
        )
        reclaimer.register(region)
        kernel.clock.advance(100)
    with kernel.measure() as m:
        freed, deleted = reclaimer.reclaim_bytes(RECLAIM_MIB * MIB)
    return m.elapsed_ns, deleted, freed


def run_experiment():
    clock_ns, clock_scanned, clock_pages = scan_case(ClockReclaimer)
    twoq_ns, twoq_scanned, twoq_pages = scan_case(TwoQueueReclaimer)
    file_ns, files_deleted, file_bytes = file_case()
    return [
        ("clock scan", clock_ns, clock_scanned, clock_pages * 4096 // MIB),
        ("2Q scan", twoq_ns, twoq_scanned, twoq_pages * 4096 // MIB),
        ("file delete", file_ns, files_deleted, file_bytes // MIB),
    ]


def test_reclaim_file_vs_scan(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "reclaim",
        format_table(
            ["strategy", "time us", "items scanned", "MiB freed"],
            [(n, f"{ns / 1000:.1f}", scanned, mib) for n, ns, scanned, mib in rows],
        ),
    )
    clock_ns = rows[0][1]
    file_ns = rows[2][1]
    # All strategies freed the target amount.
    assert all(mib >= RECLAIM_MIB for _, _, _, mib in rows)
    # File reclamation is orders of magnitude cheaper than either scan.
    assert file_ns < clock_ns / 50
    # And it touched files, not thousands of pages.
    assert rows[2][2] <= FILE_COUNT
    assert rows[0][2] >= RECLAIM_MIB * MIB // 4096
