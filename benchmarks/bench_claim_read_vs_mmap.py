"""E7 — §3.2/§4.3 claim: read() of 16 KB vs cold mapped access.

"In our experiments we observed that it was faster to make a read()
system call to read 16KB than to access data already mapped into a
process if it would cause TLB misses."  The effect needs expensive TLB
misses; the sweep shows the crossover as walks get dearer (bare 4-level
-> 5-level -> virtualized 2-D walks), with caches and TLB cold.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.kernel import Kernel, MachineConfig
from repro.units import KIB, MIB
from repro.vm.vma import MapFlags

SIZE = 16 * KIB

CONFIGS = [
    ("4-level native", dict(page_table_levels=4, virtualized=False)),
    ("5-level native", dict(page_table_levels=5, virtualized=False)),
    ("4-level virtualized", dict(page_table_levels=4, virtualized=True)),
    ("5-level virtualized", dict(page_table_levels=5, virtualized=True)),
]


def one_config(walk_config):
    kernel = Kernel(
        MachineConfig(dram_bytes=512 * MIB, nvm_bytes=0, **walk_config)
    )
    process = kernel.spawn("bench")
    sys = kernel.syscalls(process)
    fd = sys.open(kernel.tmpfs, "/data", create=True, size=SIZE)
    va = sys.mmap(SIZE, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE)
    # Cold TLB and caches: the scenario of the claim.
    kernel.cache.flush()
    kernel.tlb.flush_all()
    with kernel.measure() as mapped:
        kernel.access_range(process, va, SIZE, stride=64)
    kernel.cache.flush()
    with kernel.measure() as read_call:
        sys.pread(fd, 0, SIZE)
    return mapped.elapsed_ns, read_call.elapsed_ns


def run_experiment():
    rows = []
    for name, walk_config in CONFIGS:
        mapped_ns, read_ns = one_config(walk_config)
        rows.append((name, mapped_ns / 1000, read_ns / 1000, read_ns < mapped_ns))
    return rows


def test_claim_read_vs_cold_mmap(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "claim_read_vs_mmap",
        format_table(
            ["translation", "mapped access us", "read() us", "read wins"],
            [(n, f"{m:.2f}", f"{r:.2f}", w) for n, m, r, w in rows],
        ),
    )
    # read() pays no TLB misses, so its cost is identical in all configs...
    read_costs = {f"{r:.2f}" for _, _, r, _ in rows}
    assert len(read_costs) == 1
    # ...while mapped access grows with walk cost, and the paper's claim
    # holds at least under nested translation.
    mapped = [m for _, m, _, _ in rows]
    assert mapped == sorted(mapped)
    assert rows[-1][3]  # 5-level virtualized: read() wins
