"""Ablation — TLB shootdowns vs core count: batched unmaps win at scale.

Every invalidation broadcast pays one IPI per remote core, so per-page
teardown loops scale with cores x pages while whole-file (range) unmaps
broadcast once.  This quantifies the SMP tax on the baseline that the
O(1) designs sidestep.
"""

from conftest import run_once

from repro.analysis import Series, format_series_table
from repro.core.rangetrans import RangeMemory
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB
from repro.vm.vma import MapFlags

CPU_COUNTS = [1, 4, 16, 64]
REGION = 16 * MIB


def paged_unmap_cost(cpus: int) -> int:
    kernel = Kernel(
        MachineConfig(dram_bytes=512 * MIB, nvm_bytes=0, cpus=cpus)
    )
    process = kernel.spawn("p", track_lru=True)
    sys = kernel.syscalls(process)
    va = sys.mmap(REGION, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
    kernel.access_range(process, va, REGION)
    # The storm case: reclaim-style per-page eviction of a quarter of it.
    with kernel.measure() as m:
        for page in range(0, 1024):
            process.space.evict_page(va + page * 4096)
    return m.elapsed_ns


def range_unmap_cost(cpus: int) -> int:
    kernel = Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=1 * GIB,
            range_hardware=True, cpus=cpus,
        )
    )
    rm = RangeMemory(kernel)
    inode = kernel.pmfs.create("/f", size=REGION)
    process = kernel.spawn("p")
    mapping = rm.map_file(process, inode)
    kernel.access(process, mapping.vaddr)
    with kernel.measure() as m:
        rm.unmap(mapping)
    return m.elapsed_ns


def run_experiment():
    paged = Series("per-page eviction (4 MiB)")
    ranged = Series("range unmap (16 MiB)")
    for cpus in CPU_COUNTS:
        paged.add(cpus, paged_unmap_cost(cpus))
        ranged.add(cpus, range_unmap_cost(cpus))
    return paged, ranged


def test_ablation_smp_shootdown(benchmark, record_result):
    paged, ranged = run_once(benchmark, run_experiment)
    record_result(
        "ablation_smp_shootdown",
        format_series_table([paged, ranged], x_label="cpus", y_unit_divisor=1e6, y_suffix="ms"),
    )
    # Per-page storms scale with core count...
    assert paged.y_at(64) > 10 * paged.y_at(1)
    # ...while the single-broadcast range unmap barely moves.
    assert ranged.y_at(64) < ranged.y_at(1) + 64 * 4100
    assert ranged.y_at(64) < paged.y_at(64) / 1000
