"""E6 — Figures 4/5/9: range translations vs page-based mapping.

One RTE maps an arbitrarily large extent; unmap is one table write plus a
range-TLB shootdown.  Measured against the page-table path for the same
file sizes: map cost, sparse-access cost, unmap cost.
"""

from conftest import make_kernel, run_once, spawn_bench

from repro.analysis import Series, format_series_table
from repro.core.rangetrans import RangeMemory
from repro.units import MIB
from repro.vm.vma import MapFlags

SIZES_MB = [1, 16, 128, 512]
SPARSE_STRIDE = MIB  # touch one byte per MiB — "sparse access to large data"


def paging_case(size_mb: int):
    # The figure's baseline is the per-PTE teardown; pin it now that the
    # extent munmap policy is the kernel default.
    kernel = make_kernel(nvm_gib=2, munmap_policy="page")
    process, sys = spawn_bench(kernel, "pt")
    size = size_mb * MIB
    fd = sys.open(kernel.pmfs, "/f", create=True, size=size)
    with kernel.measure() as map_m:
        va = sys.mmap(size, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE)
    with kernel.measure() as access_m:
        kernel.access_range(process, va, size, stride=SPARSE_STRIDE)
    with kernel.measure() as unmap_m:
        sys.munmap(va, size)
    return map_m.elapsed_ns, access_m.elapsed_ns, unmap_m.elapsed_ns


def range_case(size_mb: int):
    kernel = make_kernel(nvm_gib=2, range_hardware=True)
    rm = RangeMemory(kernel)
    inode = kernel.pmfs.create("/f", size=size_mb * MIB)
    process, _ = spawn_bench(kernel, "rt")
    with kernel.measure() as map_m:
        mapping = rm.map_file(process, inode)
    with kernel.measure() as access_m:
        kernel.access_range(
            process, mapping.vaddr, size_mb * MIB, stride=SPARSE_STRIDE
        )
    with kernel.measure() as unmap_m:
        rm.unmap(mapping)
    return map_m.elapsed_ns, access_m.elapsed_ns, unmap_m.elapsed_ns


def run_experiment():
    names = ["page map", "range map", "page sparse", "range sparse",
             "page unmap", "range unmap"]
    series = {name: Series(name) for name in names}
    for size_mb in SIZES_MB:
        p_map, p_access, p_unmap = paging_case(size_mb)
        r_map, r_access, r_unmap = range_case(size_mb)
        series["page map"].add(size_mb, p_map)
        series["range map"].add(size_mb, r_map)
        series["page sparse"].add(size_mb, p_access)
        series["range sparse"].add(size_mb, r_access)
        series["page unmap"].add(size_mb, p_unmap)
        series["range unmap"].add(size_mb, r_unmap)
    return series


def test_fig9_range_translations(benchmark, record_result):
    series = run_once(benchmark, run_experiment)
    record_result(
        "fig9_range_translation",
        format_series_table(list(series.values()), x_label="file MB"),
    )
    # Mapping: paging grows linearly; ranges are constant.
    assert series["page map"].growth_factor() > 100
    assert series["range map"].is_roughly_constant(0.05)
    # Unmapping likewise.
    assert series["page unmap"].growth_factor() > 50
    assert series["range unmap"].is_roughly_constant(0.05)
    # Sparse access: ranges beat paging at every size.
    for size_mb in SIZES_MB:
        assert (
            series["range sparse"].y_at(size_mb)
            < series["page sparse"].y_at(size_mb)
        )
