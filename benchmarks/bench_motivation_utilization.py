"""E8b — §2 "memory as storage": fleet utilization and excess capacity.

The Agrawal-study shape: mean/median fleet utilization below ~50%, so a
6 TB-NVM fleet leaves terabytes of provisioned-but-unused capacity — the
budget O(1) memory spends on space-for-time trades.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.fs.utilization import UtilizationModel
from repro.units import GIB, TIB

FLEET_SIZES = [50, 200, 1000]


def run_experiment():
    rows = []
    for machines in FLEET_SIZES:
        stats = UtilizationModel(seed=2017).fleet_stats(
            machines, capacity_bytes=6 * 1024 * GIB
        )
        rows.append(
            (
                machines,
                f"{stats.mean_utilization:.1%}",
                f"{stats.median_utilization:.1%}",
                f"{stats.excess_capacity_bytes / TIB:.0f}",
            )
        )
        rows_stats = stats
    return rows


def test_fleet_utilization(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "motivation_utilization",
        format_table(
            ["machines", "mean util", "median util", "excess TiB"], rows
        ),
    )
    # The study's band: both statistics below ~55%, excess in the
    # terabytes per fleet.
    for _, mean, median, excess in rows:
        assert float(mean.rstrip("%")) < 55
        assert float(median.rstrip("%")) < 60
        assert float(excess) > 100
