"""E2 — Figure 2/7: allocating anonymous memory vs a PMFS file.

Paper: "across a range of sizes, using the file system to allocate memory
has little extra cost" — the student report quantifies the gap at ~6% for
12K pages.  The workload is write-then-per-page-access (their "W SB"),
i.e. demand-allocate every page.
"""

from conftest import run_once

from repro.analysis import Series, format_series_table
from repro.hw.costmodel import CostModel
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags

PAGE_COUNTS = [1, 16, 256, 1024, 4096, 12288]

#: The original experiment ran PMFS on *DRAM-emulated* persistent memory
#: (as Dulloor et al. did); mirror that so the comparison isolates the
#: software path, not the media.
EMULATED_PM = CostModel().with_overrides(nvm_read_ns=80, nvm_write_ns=80)


def alloc_cost(npages: int, use_pmfs: bool) -> int:
    kernel = Kernel(
        MachineConfig(dram_bytes=512 * MIB, nvm_bytes=2 * GIB),
        costs=EMULATED_PM,
    )
    process = kernel.spawn("worker")
    sys = kernel.syscalls(process)
    size = npages * PAGE_SIZE
    with kernel.measure() as m:
        if use_pmfs:
            fd = sys.open(kernel.pmfs, "/alloc", create=True, size=size)
            va = sys.mmap(size, fd=fd, flags=MapFlags.SHARED)
        else:
            va = sys.mmap(size)  # MAP_ANONYMOUS
        kernel.access_range(process, va, size, write=True)
    return m.elapsed_ns


def run_experiment():
    malloc_series = Series("malloc (anon)")
    pmfs_series = Series("pmfs file")
    for npages in PAGE_COUNTS:
        malloc_series.add(npages, alloc_cost(npages, use_pmfs=False))
        pmfs_series.add(npages, alloc_cost(npages, use_pmfs=True))
    return malloc_series, pmfs_series


def test_fig2_malloc_vs_pmfs(benchmark, record_result):
    malloc_series, pmfs_series = run_once(benchmark, run_experiment)
    rows = format_series_table(
        [malloc_series, pmfs_series], x_label="pages", y_unit_divisor=1e6,
        y_suffix="ms",
    )
    gaps = [
        f"{npages}: {100 * (p - m) / m:+.1f}%"
        for npages, m, p in zip(
            PAGE_COUNTS, malloc_series.ys, pmfs_series.ys
        )
    ]
    record_result("fig2_malloc_vs_pmfs", rows + "\ngap: " + "  ".join(gaps))
    # Little extra cost: within 35% everywhere, within 15% at 12K pages
    # (paper: ~6%).
    for m, p in zip(malloc_series.ys[1:], pmfs_series.ys[1:]):
        assert abs(p - m) / m < 0.35
    m12k = malloc_series.y_at(12288)
    p12k = pmfs_series.y_at(12288)
    assert abs(p12k - m12k) / m12k < 0.15
