"""E12 — §2: deeper page tables make TLB misses dearer.

"Intel recently introduced 5-level address translation, which can address
4PB of physical memory but requires up to 35 memory references in
virtualized systems."  Measured: TLB-miss-heavy random access under
4/5-level native and virtualized walks, plus the per-walk reference
counts themselves.
"""

from conftest import run_once

from repro.analysis import Series, format_table
from repro.kernel import Kernel, MachineConfig
from repro.units import KIB, MIB
from repro.vm.vma import MapFlags
from repro.workloads import random_pages

WORKING_SET = 64 * MIB  # far beyond TLB reach
TOUCHES = 4096

CONFIGS = [
    ("4-level native", 4, False),
    ("5-level native", 5, False),
    ("4-level virtualized", 4, True),
    ("5-level virtualized", 5, True),
]


def miss_heavy_cost(levels: int, virtualized: bool):
    kernel = Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=0,
            page_table_levels=levels, virtualized=virtualized,
        )
    )
    process = kernel.spawn("p")
    sys = kernel.syscalls(process)
    va = sys.mmap(WORKING_SET, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
    kernel.tlb.flush_all()
    addrs = random_pages(va, WORKING_SET, TOUCHES, seed=7)
    with kernel.measure() as m:
        for addr in addrs:
            kernel.access(process, addr)
    walks = m.counter_delta.get("walk_start", 0)
    refs = m.counter_delta.get("walk_ref", 0) + m.counter_delta.get(
        "nested_walk_ref", 0
    )
    return m.elapsed_ns, walks, refs, kernel.walker.references_per_walk(levels)


def run_experiment():
    rows = []
    for name, levels, virtualized in CONFIGS:
        ns, walks, refs, worst = miss_heavy_cost(levels, virtualized)
        rows.append((name, ns / 1000, walks, refs / max(1, walks), worst))
    return rows


def test_paging_levels(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "paging_levels",
        format_table(
            ["translation", "time us", "walks", "refs/walk", "worst-case refs"],
            [
                (name, f"{us:.1f}", walks, f"{rpw:.1f}", worst)
                for name, us, walks, rpw, worst in rows
            ],
        ),
    )
    times = [us for _, us, _, _, _ in rows]
    assert times == sorted(times)  # deeper/virtualized is monotonically worse
    # The paper's 35-reference worst case for 5-level virtualized.
    assert rows[3][4] == 35
    assert rows[0][4] == 4
    # Virtualization at least doubles the miss-heavy access time.
    assert rows[2][1] > 1.5 * rows[0][1]
