"""E3 — Figures 3 & 8: shared mappings / physically based mappings.

The design figures promise that processes mapping the same file can share
page-table subtrees.  Measured: PTE writes and simulated time for the
first process (builds) vs each subsequent process (links), and the
identical-VA guarantee of PBM.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core.pbm import PbmManager
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB

FILE_MIB = 8
PROCESSES = 6


def run_experiment():
    kernel = Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    pbm = PbmManager(kernel)
    inode = kernel.pmfs.create("/shared", size=FILE_MIB * MIB)
    rows = []
    vaddrs = set()
    for index in range(PROCESSES):
        process = kernel.spawn(f"p{index}")
        with kernel.measure() as m:
            mapping = pbm.map_file(process, inode)
        vaddrs.add(mapping.vaddr)
        rows.append(
            (
                index + 1,
                m.elapsed_ns / 1000,
                m.counter_delta.get("pte_write", 0),
                mapping.shared_window_count,
            )
        )
    return rows, vaddrs


def test_fig3_pbm_shared_mappings(benchmark, record_result):
    rows, vaddrs = run_once(benchmark, run_experiment)
    record_result(
        "fig3_shared_mappings",
        format_table(
            ["process", "map us", "pte writes", "shared windows"],
            [(n, f"{us:.2f}", pte, win) for n, us, pte, win in rows],
        ),
    )
    # PBM guarantee: identical virtual address everywhere.
    assert len(vaddrs) == 1
    first_pte = rows[0][2]
    assert first_pte >= FILE_MIB * 256  # built every leaf PTE once
    for _, us, pte, windows in rows[1:]:
        assert pte == FILE_MIB // 2  # one link per 2 MiB window
        assert windows == FILE_MIB // 2
    # Followers map at least 5x faster than the builder.
    assert rows[1][1] < rows[0][1] / 5
