"""E9 — §3.1: erasing memory before reuse, linear vs O(1) strategies.

"For security purposes memory must be zeroed out before being reused ...
This is currently a linear-time operation and suggests the need for new
techniques to efficiently erase memory in constant time."  Sweep: eager
inline zeroing (baseline) vs a pre-zeroed pool vs crypto erase, foreground
cost per allocation size, plus each strategy's off-critical-path bill.
"""

from conftest import run_once

from repro.analysis import Series, format_series_table
from repro.core.o1.zeroing import CryptoErase, EagerZeroing, PooledZeroing
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion
from repro.mem.zeropool import ZeroPool
from repro.units import GIB, KIB, MIB, PAGE_SIZE

SIZES_KB = [4, 64, 1024, 16 * 1024, 256 * 1024]  # up to 256 MiB


def make_buddy():
    region = MemoryRegion(start=0, size=1 * GIB, tech=MemoryTechnology.DRAM)
    return BuddyAllocator(region, max_order=18)


def foreground_cost(strategy_name: str, size_kb: int):
    clock = SimClock()
    counters = EventCounters()
    costs = CostModel()
    buddy = make_buddy()
    if strategy_name == "eager":
        strategy = EagerZeroing(buddy, clock, costs, counters)
    elif strategy_name == "pooled":
        pool = ZeroPool(
            buddy, target_size=262_144, clock=clock, costs=costs,
            counters=counters,
        )
        strategy = PooledZeroing(pool)
        strategy.replenish()
    else:
        strategy = CryptoErase(buddy, clock, costs, counters)
    frames = size_kb * KIB // PAGE_SIZE
    start = clock.now
    strategy.take_frames(frames)
    return clock.now - start, strategy.background_ns()


def run_experiment():
    series = {name: Series(name) for name in ("eager", "pooled", "crypto")}
    background = {}
    for name in series:
        for size_kb in SIZES_KB:
            fg, bg = foreground_cost(name, size_kb)
            series[name].add(size_kb, fg)
            background[name] = bg
    return series, background


def test_o1_erase_strategies(benchmark, record_result):
    series, background = run_once(benchmark, run_experiment)
    table = format_series_table(list(series.values()), x_label="alloc KB")
    bg = "  ".join(f"{k}: {v / 1e6:.2f}ms" for k, v in background.items())
    record_result("o1_erase", table + f"\nbackground work: {bg}")
    # Baseline is linear: 64K x the size -> ~64K x the cost.
    assert series["eager"].growth_factor() > 10_000
    # Pooled foreground is zero while the pool holds.
    assert max(series["pooled"].ys) == 0
    # Crypto erase is constant regardless of size.
    assert series["crypto"].is_roughly_constant(0.01)
    # The pool's zeroing didn't vanish — it moved off the critical path.
    assert background["pooled"] > 0
    assert background["crypto"] == 0  # truly O(1) total work
