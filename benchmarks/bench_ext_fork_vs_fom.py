"""E15 — process creation: fork (per-resident-page) vs FOM launch.

§3.1: "When launching a process, code segments, heap segments, and stack
segments can all be represented as separate files, so there is no need to
allocate each individual page."  The baseline's fork pays per resident
page (PTE copy + COW downgrade); a file-only launch pays per *segment
file*.  Sweep the parent's resident footprint.
"""

from conftest import run_once

from repro.analysis import Series, format_series_table
from repro.core.fom import FileOnlyMemory, MapStrategy, launch_fom_process
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB

FOOTPRINTS_MB = [1, 4, 16, 64]


def make_kernel():
    # This experiment measures the paper's motivating baseline: the
    # eager per-resident-PTE fork, pinned now that COW subtree sharing
    # is the kernel default.
    return Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
            fork_policy="eager",
        )
    )


def fork_cost(footprint_mb: int):
    kernel = make_kernel()
    parent = kernel.spawn("parent")
    sys = kernel.syscalls(parent)
    size = footprint_mb * MIB
    va = sys.mmap(size)
    kernel.access_range(parent, va, size, write=True)
    with kernel.measure() as m:
        sys.fork()
    return m.elapsed_ns


def fom_launch_cost(footprint_mb: int):
    kernel = make_kernel()
    fom = FileOnlyMemory(kernel)
    # Program text exists already (shared persistent file).
    launch_fom_process(
        fom, "warm", code_bytes=1 * MIB, heap_bytes=1 * MIB,
        stack_bytes=1 * MIB, code_path="/bin/app",
    ).exit()
    with kernel.measure() as m:
        launch_fom_process(
            fom,
            "app",
            code_bytes=1 * MIB,
            heap_bytes=footprint_mb * MIB,
            stack_bytes=1 * MIB,
            code_path="/bin/app",
        )
    return m.elapsed_ns


def run_experiment():
    fork_series = Series("fork (COW)")
    fom_series = Series("FOM launch")
    for footprint_mb in FOOTPRINTS_MB:
        fork_series.add(footprint_mb, fork_cost(footprint_mb))
        fom_series.add(footprint_mb, fom_launch_cost(footprint_mb))
    return fork_series, fom_series


def test_fork_vs_fom_launch(benchmark, record_result):
    fork_series, fom_series = run_once(benchmark, run_experiment)
    record_result(
        "ext_fork_vs_fom",
        format_series_table(
            [fork_series, fom_series], x_label="resident MB"
        ),
    )
    # fork is linear in resident pages; FOM launch grows only with
    # segment count (constant here) and 2 MiB PTEs.
    assert fork_series.growth_factor() > 20
    assert fom_series.growth_factor() < 2.0
    assert fom_series.y_at(64) < fork_series.y_at(64) / 20
