"""Ablation — NVM latency sensitivity: which results depend on the media?

The paper's projections span technologies (PCM, STT-MRAM, 3D XPoint) with
very different latencies.  Sweep NVM read/write latency from DRAM-equal
(emulated PM) to 8x and report the two numbers that could move: the
malloc-vs-PMFS allocation gap (E2) and the per-byte penalty of running
from NVM.  The O(1) *structure* results (PTE counts, RTE counts) cannot
move — they are latency-independent by construction.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.hw.costmodel import CostModel
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags

LATENCY_MULTIPLIERS = [1, 2, 4, 8]
PAGES = 4096


def alloc_gap(costs: CostModel) -> float:
    def run(use_pmfs: bool) -> int:
        kernel = Kernel(
            MachineConfig(dram_bytes=512 * MIB, nvm_bytes=2 * GIB),
            costs=costs,
        )
        process = kernel.spawn("w")
        sys = kernel.syscalls(process)
        size = PAGES * PAGE_SIZE
        with kernel.measure() as m:
            if use_pmfs:
                fd = sys.open(kernel.pmfs, "/a", create=True, size=size)
                va = sys.mmap(size, fd=fd, flags=MapFlags.SHARED)
            else:
                va = sys.mmap(size)
            kernel.access_range(process, va, size, write=True)
        return m.elapsed_ns

    malloc_ns = run(False)
    pmfs_ns = run(True)
    return (pmfs_ns - malloc_ns) / malloc_ns


def run_experiment():
    rows = []
    for multiplier in LATENCY_MULTIPLIERS:
        costs = CostModel().with_overrides(
            nvm_read_ns=80 * multiplier, nvm_write_ns=80 * multiplier * 2
        )
        gap = alloc_gap(costs)
        rows.append(
            (
                f"{multiplier}x DRAM",
                f"{80 * multiplier} / {160 * multiplier}",
                f"{gap:+.1%}",
            )
        )
    return rows


def test_ablation_nvm_latency(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    record_result(
        "ablation_nvm_latency",
        format_table(["nvm latency", "read/write ns", "pmfs vs malloc"], rows),
    )
    gaps = [float(r[2].rstrip("%")) for r in rows]
    # At DRAM-equal latency PMFS is slightly *cheaper* (paper's ~6%)...
    assert gaps[0] < 0
    # ...and the gap worsens monotonically as the media slows.
    assert gaps == sorted(gaps)
    # Even at 8x the gap stays bounded — the software path, not the
    # media, dominates demand allocation.
    assert gaps[-1] < 60
