"""Crash-at-any-point exploration.

:func:`explore` runs a workload once under a counting :class:`FaultPlan`
to map every fault-site hit (the *census*), then replays the workload
once per hit with :meth:`FaultPlan.crash_at` armed at that global index.
After each injected power failure the machine is recovered
(:func:`recover_machine`) and every recovery oracle from
:mod:`repro.chaos.oracles` must hold.  One broken crash point is one
:class:`CrashOutcome` with its problems attached — and because plans are
deterministic, ``FaultPlan.crash_at(k)`` on the same workload is a
complete reproduction recipe.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.chaos.oracles import DEFAULT_ORACLES, Oracle, run_oracles
from repro.chaos.plan import FaultPlan
from repro.errors import SimulatedCrashError

if False:  # pragma: no cover - typing only, avoids kernel import at load
    from repro.kernel.kernel import Kernel


@dataclass
class CrashOutcome:
    """Result of crashing at one global fault-site hit."""

    index: int
    site: str
    #: The injected crash actually fired (False = workload finished
    #: without reaching the hit, which the census says cannot happen).
    crashed: bool
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.crashed and not self.problems


@dataclass
class ExploreReport:
    """Everything one exploration run learned."""

    #: site -> hit count from the fault-free census pass.
    census: Counter
    #: Site of each global hit, in order.
    history: List[str]
    outcomes: List[CrashOutcome]
    #: Problems from the census pass itself (oracles on the un-crashed
    #: machine; non-empty means the workload is broken, not recovery).
    baseline_problems: List[str] = field(default_factory=list)

    @property
    def crash_points(self) -> int:
        return len(self.history)

    @property
    def sites_visited(self) -> int:
        return len(self.census)

    @property
    def failures(self) -> List[CrashOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def ok(self) -> bool:
        return not self.baseline_problems and not self.failures

    def summary(self) -> str:
        lines = [
            f"fault sites visited : {self.sites_visited}",
            f"crash points        : {self.crash_points}",
            f"clean recoveries    : "
            f"{len(self.outcomes) - len(self.failures)}/{len(self.outcomes)}",
        ]
        for site, count in sorted(self.census.items()):
            lines.append(f"  {site:<28} x{count}")
        for outcome in self.failures:
            lines.append(
                f"FAIL hit {outcome.index} at {outcome.site}: "
                + ("; ".join(outcome.problems) or "crash never fired")
            )
        if self.baseline_problems:
            lines.append(
                "BASELINE BROKEN: " + "; ".join(self.baseline_problems)
            )
        return "\n".join(lines)


def recover_machine(kernel: "Kernel") -> None:
    """Post-power-failure recovery: reboot the machine, sweep FOM state.

    Mirrors what a restart does: volatile state is dropped and PMFS
    replays its journal (``kernel.crash()``), then the file-only-memory
    persistence sweep erases dead volatile files.
    """
    from repro.core.fom import FileOnlyMemory
    from repro.core.fom.persistence import PersistenceManager

    kernel.crash()
    PersistenceManager(FileOnlyMemory(kernel)).recover()


def explore(
    build: Callable[[], Tuple["Kernel", Callable[[], None]]],
    oracles: Sequence[Oracle] = DEFAULT_ORACLES,
    progress: Optional[Callable[[str], None]] = None,
) -> ExploreReport:
    """Crash a workload at every fault-site hit and check recovery.

    ``build()`` must return a fresh ``(kernel, run)`` pair each call;
    ``run()`` must be deterministic.
    """

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    # ---- pass 1: census (no faults; the workload must complete) ------
    kernel, run = build()
    census_plan = FaultPlan.counting()
    kernel.arm_chaos(census_plan)
    run()
    kernel.disarm_chaos()
    history = list(census_plan.history)
    census = Counter(census_plan.hits)
    say(
        f"census: {len(history)} hits across {len(census)} sites; "
        f"exploring every crash point"
    )
    recover_machine(kernel)
    baseline_problems = run_oracles(kernel, oracles)

    # ---- pass 2..N+1: crash at each global hit -----------------------
    outcomes: List[CrashOutcome] = []
    for index, site in enumerate(history):
        kernel, run = build()
        plan = FaultPlan.crash_at(index)
        kernel.arm_chaos(plan)
        crashed = False
        try:
            run()
        except SimulatedCrashError:
            crashed = True
        finally:
            kernel.disarm_chaos()
        recover_machine(kernel)
        problems = run_oracles(kernel, oracles)
        if not crashed:
            problems = [
                f"crash scheduled at hit {index} ({site}) never fired"
            ] + problems
        outcome = CrashOutcome(
            index=index, site=site, crashed=crashed, problems=problems
        )
        outcomes.append(outcome)
        if not outcome.ok:
            say(f"hit {index} @ {site}: " + "; ".join(outcome.problems))

    return ExploreReport(
        census=census,
        history=history,
        outcomes=outcomes,
        baseline_problems=baseline_problems,
    )
