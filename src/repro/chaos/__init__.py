"""Deterministic fault injection (`repro.chaos`).

The chaos engine generalizes PMFS's private crash ticks into named,
kernel-wide fault sites.  A :class:`FaultPlan` — explicit schedule or
seeded RNG — is armed on a machine with ``kernel.arm_chaos(plan)``; the
instrumented hot paths consult it through ``counters.chaos`` so unarmed
machines pay nothing.  :func:`~repro.chaos.explore.explore` turns the
plan's hit census into exhaustive crash-at-any-point coverage with
recovery oracles.

Import layout: :class:`FaultPlan`/:class:`FaultSpec` and the site
registry are import-light and exported eagerly; ``explore``, ``oracles``
and ``workloads`` pull in the kernel, so they load lazily (PEP 562) to
keep hot-path modules free of import cycles.
"""

from __future__ import annotations

from repro.chaos.plan import FaultPlan, FaultSpec, Injection
from repro.chaos.sites import ACTIONS, FAULT_SITES, SITE_ACTIONS, actions_for, is_site

__all__ = [
    "ACTIONS",
    "FAULT_SITES",
    "SITE_ACTIONS",
    "FaultPlan",
    "FaultSpec",
    "Injection",
    "actions_for",
    "is_site",
    # lazy:
    "explore",
    "ExploreReport",
    "CrashOutcome",
    "recover_machine",
    "DEFAULT_ORACLES",
    "run_oracles",
    "fig2_workload",
    "make_builder",
]

_LAZY = {
    "explore": ("repro.chaos.explore", "explore"),
    "ExploreReport": ("repro.chaos.explore", "ExploreReport"),
    "CrashOutcome": ("repro.chaos.explore", "CrashOutcome"),
    "recover_machine": ("repro.chaos.explore", "recover_machine"),
    "DEFAULT_ORACLES": ("repro.chaos.oracles", "DEFAULT_ORACLES"),
    "run_oracles": ("repro.chaos.oracles", "run_oracles"),
    "fig2_workload": ("repro.chaos.workloads", "fig2_workload"),
    "make_builder": ("repro.chaos.workloads", "make_builder"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    # Rebind explicitly: importing a submodule sets the same-named package
    # attribute to the *module* (shadowing e.g. ``explore`` the function),
    # so cache the resolved object over it.
    globals()[name] = value
    return value
