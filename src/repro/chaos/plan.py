"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is armed on a machine (:meth:`Kernel.arm_chaos
<repro.kernel.kernel.Kernel.arm_chaos>`) and consulted by every
instrumented hot path through one call::

    chaos = getattr(self._counters, "chaos", None)
    if chaos is not None and chaos.hit("buddy.alloc") == "error":
        raise OutOfMemoryError("chaos: injected exhaustion")

``hit`` always *counts* the visit (so an unarmed plan doubles as the
census pass of the crash-at-any-point explorer) and then decides whether
a fault fires there:

* explicit :class:`FaultSpec` schedules — "crash at the 3rd hit of
  ``pmfs.journal.commit.pre``" or "crash at global hit 17" — which is
  what :func:`repro.chaos.explore.explore` replays exhaustively;
* a seeded RNG mode (:meth:`FaultPlan.seeded`) that injects up to
  ``max_faults`` faults at rate ``rate``, fully reproducible from the
  seed alone.

``crash`` actions raise :class:`~repro.errors.SimulatedCrashError` from
inside ``hit``; other actions (``error``/``torn``/``corrupt``) are
returned to the call site, which implements the site-specific damage and
— for torn/corrupt — finishes with :meth:`FaultPlan.power_cut`.

Everything is deterministic: the same plan against the same workload
produces the same hit sequence and the same injections, which is what
makes a printed seed a complete reproduction recipe.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.sites import ACTIONS, SITE_ACTIONS, actions_for, is_site
from repro.errors import SimulatedCrashError
from repro.lint.decorators import o1


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Exactly one of ``nth`` (per-site hit index) or ``at_hit`` (global hit
    index across all sites) selects the firing point; each spec fires at
    most once.
    """

    site: Optional[str] = None
    action: str = "crash"
    #: Fire on the nth hit of ``site`` (0-based).
    nth: Optional[int] = None
    #: Fire on the nth hit overall, regardless of site (0-based).
    at_hit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r}; valid: {sorted(ACTIONS)}"
            )
        if (self.nth is None) == (self.at_hit is None):
            raise ValueError("exactly one of nth/at_hit must be set")
        if self.nth is not None:
            if self.site is None:
                raise ValueError("per-site specs need a site name")
            if not is_site(self.site):
                raise ValueError(
                    f"unknown fault site {self.site!r}; "
                    f"valid sites: {sorted(SITE_ACTIONS)}"
                )
            if self.action not in actions_for(self.site):
                raise ValueError(
                    f"site {self.site!r} does not support action "
                    f"{self.action!r} (valid: {sorted(actions_for(self.site))})"
                )
        if self.at_hit is not None and self.site is not None:
            raise ValueError("at_hit specs fire at any site; leave site unset")


@dataclass
class Injection:
    """Record of one fault that actually fired."""

    index: int
    site: str
    action: str


class FaultPlan:
    """Counts fault-site hits and injects scheduled/seeded faults."""

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        seed: Optional[int] = None,
        rate: float = 0.0,
        max_faults: int = 1,
        sites: Optional[Sequence[str]] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if sites is not None:
            for site in sites:
                if not is_site(site):
                    raise ValueError(f"unknown fault site {site!r}")
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.rate = rate
        self.max_faults = max_faults
        self._random_sites = frozenset(sites) if sites is not None else None
        self._rng = random.Random(seed) if seed is not None else None
        #: site -> times visited.
        self.hits: Counter = Counter()
        #: Site of every hit, in order (the explorer's crash-point map).
        self.history: List[str] = []
        self.total_hits = 0
        #: Faults that fired, in order.
        self.injections: List[Injection] = []
        self._fired_specs: set = set()
        self._counters = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def counting(cls) -> "FaultPlan":
        """A plan that never fires — the explorer's census pass."""
        return cls()

    @classmethod
    def crash_at(cls, index: int) -> "FaultPlan":
        """Crash at global hit ``index`` (crash-at-any-point replay)."""
        return cls(specs=[FaultSpec(at_hit=index)])

    @classmethod
    def crash_at_site(cls, site: str, nth: int = 0) -> "FaultPlan":
        """Crash at the ``nth`` hit of ``site``."""
        return cls(specs=[FaultSpec(site=site, nth=nth)])

    @classmethod
    def fault_at_site(cls, site: str, action: str, nth: int = 0) -> "FaultPlan":
        """Inject ``action`` at the ``nth`` hit of ``site``."""
        return cls(specs=[FaultSpec(site=site, action=action, nth=nth)])

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float = 0.02,
        max_faults: int = 1,
        sites: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        """Random faults, reproducible from ``seed`` alone."""
        return cls(seed=seed, rate=rate, max_faults=max_faults, sites=sites)

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def bind(self, counters) -> None:
        """Attach the machine's counter registry (for obs events)."""
        self._counters = counters

    # ------------------------------------------------------------------
    # Hot-path API
    # ------------------------------------------------------------------
    @o1(note="per-visit fault check; spec list is a test-config constant")
    def hit(self, site: str) -> Optional[str]:
        """Record a visit to ``site`` and maybe inject a fault.

        Returns ``None`` (no fault), or the action string the call site
        must implement (``"error"``/``"torn"``/``"corrupt"``).  ``crash``
        actions raise :class:`SimulatedCrashError` directly.
        """
        index = self.total_hits
        site_count = self.hits[site]
        self.hits[site] += 1
        self.total_hits += 1
        self.history.append(site)
        if self._counters is not None:
            self._counters.bump("chaos_site_hit")
        action = self._decide(site, index, site_count)
        if action is None:
            return None
        self.injections.append(Injection(index=index, site=site, action=action))
        if self._counters is not None:
            self._counters.bump("chaos_fault_injected")
            tracer = getattr(self._counters, "tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.instant(
                    "chaos_fault",
                    "kernel",
                    args={"site": site, "action": action, "hit": index},
                )
        if action == "crash":
            raise SimulatedCrashError(
                f"chaos: injected power failure at {site} (hit {index})"
            )
        return action

    def power_cut(self, site: str) -> None:
        """Finish a torn/corrupt injection with the power failure."""
        raise SimulatedCrashError(
            f"chaos: power failed mid-write at {site} "
            f"(hit {self.total_hits - 1})"
        )

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    @o1(note="scan of the registered fault specs, a test-config constant")
    def _decide(self, site: str, index: int, site_count: int) -> Optional[str]:
        # o1: allow(o1-size-loop) -- specs is the configured fault list, not operand-sized
        for spec_index, spec in enumerate(self.specs):
            if spec_index in self._fired_specs:
                continue
            if spec.at_hit is not None and spec.at_hit == index:
                self._fired_specs.add(spec_index)
                return spec.action
            if spec.nth is not None and spec.site == site and spec.nth == site_count:
                self._fired_specs.add(spec_index)
                return spec.action
        if (
            self._rng is not None
            and self.rate > 0.0
            and len(self.injections) < self.max_faults
            and (self._random_sites is None or site in self._random_sites)
            and self._rng.random() < self.rate
        ):
            return self._rng.choice(sorted(actions_for(site)))
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def census(self) -> Dict[str, int]:
        """site -> hit count, for every site visited so far."""
        return dict(self.hits)

    def describe(self) -> str:
        """One-line reproduction recipe for this plan."""
        if self._rng is not None:
            return (
                f"FaultPlan.seeded(seed={self.seed}, rate={self.rate}, "
                f"max_faults={self.max_faults})"
            )
        if not self.specs:
            return "FaultPlan.counting()"
        parts = []
        for spec in self.specs:
            if spec.at_hit is not None:
                parts.append(f"{spec.action}@hit{spec.at_hit}")
            else:
                parts.append(f"{spec.action}@{spec.site}#{spec.nth}")
        return f"FaultPlan({', '.join(parts)})"

    def __repr__(self) -> str:
        return (
            f"<{self.describe()} hits={self.total_hits} "
            f"injected={len(self.injections)}>"
        )
