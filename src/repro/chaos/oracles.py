"""Recovery oracles: what must hold after any crash + recovery.

Each oracle inspects a recovered machine and returns a list of
human-readable problems (empty = holds).  The explorer asserts all of
them at every crash point; tests and the CLI reuse them directly.

* :func:`fsck_clean` — PMFS journal replay left no leaked, doubly-owned
  or orphaned blocks;
* :func:`nvm_block_conservation` — extent trees and the block bitmap
  agree exactly on what is allocated;
* :func:`dram_frame_conservation` — the buddy allocator's free lists and
  live allocations tile the region with no overlap and no loss;
* :func:`translation_coherence` — a fresh mapping after recovery resolves
  every page to the frame its file backing says it should;
* :func:`fom_recover_idempotent` — running the FOM persistence sweep
  again erases nothing new and reports the same survivors.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TYPE_CHECKING

from repro.units import PAGE_SIZE
from repro.vm.vma import MapFlags

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.mem.buddy import BuddyAllocator

#: An oracle takes a recovered machine, returns problems (empty = clean).
Oracle = Callable[["Kernel"], List[str]]


def fsck_clean(kernel: "Kernel") -> List[str]:
    """The persistent file system's own consistency check passes."""
    if kernel.pmfs is None:
        return []
    return [f"fsck: {problem}" for problem in kernel.pmfs.fsck()]


def nvm_block_conservation(kernel: "Kernel") -> List[str]:
    """Every bitmap-allocated NVM block is owned by exactly one extent."""
    fs = kernel.pmfs
    if fs is None:
        return []
    tree_blocks = sum(tree.block_count for tree in fs._trees.values())
    used = fs.allocator.total_blocks - fs.allocator.free_blocks
    if tree_blocks != used:
        return [
            f"nvm accounting: extent trees hold {tree_blocks} blocks "
            f"but the bitmap says {used} are allocated"
        ]
    return []


def audit_buddy(buddy: "BuddyAllocator") -> List[str]:
    """Free lists + live allocations must exactly tile the region."""
    problems: List[str] = []
    intervals = []  # (start_pfn, frames, kind)
    for order, blocks in enumerate(buddy._free_lists):
        for pfn in blocks:
            intervals.append((pfn, 1 << order, "free"))
    for pfn, order in buddy._allocated.items():
        intervals.append((pfn, 1 << order, "allocated"))
    intervals.sort()
    region = buddy.region
    cursor = region.first_pfn
    free_total = 0
    for start, frames, kind in intervals:
        if start < cursor:
            problems.append(
                f"buddy: {kind} block at pfn {start} overlaps previous block"
            )
        elif start > cursor:
            problems.append(
                f"buddy: frames [{cursor}, {start}) owned by nothing"
            )
        cursor = max(cursor, start + frames)
        if kind == "free":
            free_total += frames
    expected_end = region.first_pfn + region.frame_count
    if cursor != expected_end:
        problems.append(
            f"buddy: region ends at pfn {expected_end} but blocks "
            f"cover up to {cursor}"
        )
    if free_total != buddy.free_frames:
        problems.append(
            f"buddy: free lists hold {free_total} frames but the "
            f"counter says {buddy.free_frames}"
        )
    return problems


def dram_frame_conservation(kernel: "Kernel") -> List[str]:
    """The DRAM buddy allocator survived the crash with consistent books."""
    return audit_buddy(kernel.dram_buddy)


def translation_coherence(kernel: "Kernel") -> List[str]:
    """A post-recovery mapping resolves every page to its backing frame."""
    fs = kernel.pmfs if kernel.pmfs is not None else kernel.tmpfs
    problems: List[str] = []
    process = kernel.spawn("oracle")
    sys_calls = kernel.syscalls(process)
    size = 16 * PAGE_SIZE
    path = "/.oracle-tc"
    fd = sys_calls.open(fs, path, create=True, size=size)
    va = sys_calls.mmap(size, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE)
    inode = process.fd(fd).inode
    for page in range(size // PAGE_SIZE):
        pte = process.space.page_table.lookup(va + page * PAGE_SIZE)
        if pte is None:
            problems.append(
                f"translation: page {page} of {path} not resident "
                f"after POPULATE"
            )
            continue
        expected = fs.charge_block_lookup(inode, page)
        if pte.pfn != expected:
            problems.append(
                f"translation: page {page} maps pfn {pte.pfn}, "
                f"backing says {expected}"
            )
    sys_calls.munmap(va, size)
    sys_calls.close(fd)
    sys_calls.unlink(fs, path)
    process.exit()
    return problems


def fom_recover_idempotent(kernel: "Kernel") -> List[str]:
    """Re-running the persistence recovery sweep is a no-op."""
    from repro.core.fom import FileOnlyMemory
    from repro.core.fom.persistence import PersistenceManager

    fom = FileOnlyMemory(kernel)
    manager = PersistenceManager(fom)
    first = manager.recover()
    second = manager.recover()
    problems: List[str] = []
    if second.erased:
        problems.append(
            f"recover not idempotent: second sweep erased {second.erased}"
        )
    if first.survivors != second.survivors:
        problems.append(
            f"recover not stable: survivors changed from "
            f"{first.survivors} to {second.survivors}"
        )
    return problems


#: The oracles the explorer asserts at every crash point, in order.
DEFAULT_ORACLES: Sequence[Oracle] = (
    fsck_clean,
    nvm_block_conservation,
    dram_frame_conservation,
    translation_coherence,
    fom_recover_idempotent,
)


def run_oracles(
    kernel: "Kernel", oracles: Sequence[Oracle] = DEFAULT_ORACLES
) -> List[str]:
    """Run every oracle; returns the concatenated problem list."""
    problems: List[str] = []
    for oracle in oracles:
        problems.extend(oracle(kernel))
    return problems
