"""Canonical fault-injection sites and the actions each supports.

Every :meth:`~repro.chaos.plan.FaultPlan.hit` call in the simulator names
a site from :data:`SITE_ACTIONS`; the plan rejects specs naming anything
else, so this table is the single place a new injection point is declared
(mirroring how :mod:`repro.obs.names` declares counters).

Actions
-------

``crash``
    Power failure at the site: :class:`~repro.errors.SimulatedCrashError`
    is raised before the site's effect becomes durable.  Allowed at
    *every* site — a power cut can land anywhere — so it is implied and
    not listed per site.
``error``
    The site's domain error is injected (``OutOfMemoryError`` from the
    allocators, ``NoSpaceError`` from the extent allocator), exercising
    the caller's fallback/retry path.
``torn``
    A durable write is cut mid-stream: a prefix of the payload lands,
    then the power fails.
``corrupt``
    A durable journal record is torn while being committed: the record
    is marked unreadable, then the power fails.  Recovery must not trust
    its contents.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: Action names an armed plan may inject.
ACTIONS: FrozenSet[str] = frozenset({"crash", "error", "torn", "corrupt"})

#: site -> extra (non-crash) actions it supports.  ``crash`` is valid at
#: every site and therefore implied.
SITE_ACTIONS: Dict[str, FrozenSet[str]] = {
    # PMFS durable metadata steps (journal undo/redo protocol)
    "pmfs.journal.begin": frozenset(),
    "pmfs.extent.alloc": frozenset({"error"}),
    "pmfs.journal.commit.pre": frozenset({"corrupt"}),
    "pmfs.journal.commit.post": frozenset(),
    # VFS data path
    "fs.write.torn": frozenset({"torn"}),
    # FOM persistence recovery sweep (one hit per file examined)
    "fom.recover.file": frozenset(),
    # Constant-time-erase strategies
    "zeroing.take": frozenset(),
    # Physical allocators
    "buddy.alloc": frozenset({"error"}),
    "slab.grow": frozenset({"error"}),
    # SMP TLB-shootdown broadcast (one hit per broadcast attempt)
    "cpu.shootdown": frozenset({"error"}),
    # Pre-created page-table subtree build
    "premap.attach": frozenset({"error"}),
    # COW break of a fork-shared page-table window (after the window is
    # privatized, before leaf downgrades / write-protect clearing)
    "vm.cow_break": frozenset(),
    # RAS: patrol scrubbing, frame retirement, badblock persistence,
    # live-extent migration (crash-at-any-point covers the journaled
    # retirement/migration protocol)
    "ras.scrub.batch": frozenset(),
    "ras.retire.frame": frozenset(),
    "ras.badblock.persist": frozenset(),
    "ras.migrate.extent": frozenset(),
    # QoS: direct-reclaim batches (error = transient reclaim failure,
    # the throttle absorbs it) and the OOM kill decision point
    "qos.reclaim": frozenset({"error"}),
    "qos.oom_kill": frozenset(),
}

#: Every declared fault site.
FAULT_SITES: FrozenSet[str] = frozenset(SITE_ACTIONS)


def is_site(name: str) -> bool:
    """True if ``name`` is a declared fault site."""
    return name in SITE_ACTIONS


def actions_for(site: str) -> FrozenSet[str]:
    """All actions valid at ``site`` (``crash`` plus the site's extras)."""
    return frozenset({"crash"}) | SITE_ACTIONS[site]
