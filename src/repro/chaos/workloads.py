"""Workloads for crash-at-any-point exploration.

A chaos workload is a ``build()`` function returning ``(kernel, run)``
where ``run()`` drives the machine through every subsystem carrying a
fault site.  The explorer calls ``build()`` fresh for every crash point,
so ``run`` must be deterministic given the workload seed — no wall-clock
or global RNG.

:func:`fig2_workload` is the acceptance workload from the issue: the
Fig-2 create/write/unlink loop over PMFS, extended with FOM regions
(premap + extent strategies), anonymous mappings (TLB shootdowns on
unmap), slab and zeroing traffic, and an in-workload crash + recovery so
the recovery-path sites (``fom.recover.file``, ``zeroing.take``) are
themselves crash points.
"""

from __future__ import annotations

import random
from typing import Callable, Tuple

from repro.core.fom import FileOnlyMemory, MapStrategy
from repro.core.fom.persistence import PersistenceManager
from repro.core.o1.zeroing import EagerZeroing
from repro.kernel.kernel import Kernel, MachineConfig
from repro.mem.slab import SlabCache
from repro.ras import FaultKind, MediaFaultModel
from repro.units import KIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags

#: ``build()`` -> (machine, deterministic workload body).
WorkloadBuilder = Callable[[], Tuple[Kernel, Callable[[], None]]]


def fig2_workload(seed: int = 0) -> Tuple[Kernel, Callable[[], None]]:
    """Fig-2-style create/write/unlink workload, chaos-instrumented.

    Deterministic for a given ``seed``; touches every fault site in
    :data:`repro.chaos.sites.SITE_ACTIONS`.
    """
    kernel = Kernel(
        MachineConfig(
            dram_bytes=256 * MIB,
            nvm_bytes=1024 * MIB,
            cpus=2,
            pmfs_extent_align_frames=8,
        )
    )

    def run() -> None:
        rng = random.Random(seed)
        fs = kernel.pmfs
        process = kernel.spawn("fig2")
        sys_calls = kernel.syscalls(process)

        # -- create/write a handful of PMFS files (journal + extent
        #    alloc + torn-write sites), touching pages through mmap.
        paths = []
        for i in range(3):
            pages = rng.randrange(2, 8)
            size = pages * PAGE_SIZE
            path = f"/fig2-{i}"
            fd = sys_calls.open(fs, path, create=True, size=size)
            va = sys_calls.mmap(
                size, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE
            )
            kernel.access(process, va + (pages // 2) * PAGE_SIZE, write=True)
            payload = bytes([i + 1]) * rng.randrange(64, 2 * KIB)
            sys_calls.pwrite(fd, rng.randrange(0, PAGE_SIZE), payload)
            sys_calls.munmap(va, size)
            sys_calls.close(fd)
            paths.append(path)

        # -- truncate-grow one file: journaled extent allocation again.
        fs.truncate(fs.lookup(paths[0]), 12 * PAGE_SIZE)

        # -- anonymous private mapping; the unmap broadcasts shootdowns.
        va = sys_calls.mmap(
            8 * PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE
        )
        sys_calls.munmap(va, 8 * PAGE_SIZE)

        # -- COW fork: the parent's first post-fork store breaks the
        #    shared page-table window (vm.cow_break crash point); the
        #    child's exit and the extent unmap then drop whole subtrees.
        cow_va = sys_calls.mmap(
            6 * PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE
        )
        kernel.access(process, cow_va, write=True)
        cow_child = sys_calls.fork()
        kernel.access(process, cow_va + PAGE_SIZE, write=True)
        cow_child.exit()
        sys_calls.munmap(cow_va, 6 * PAGE_SIZE)

        # -- FOM regions: a persistent premapped heap and volatile
        #    extent scratch (premap.attach + recovery inputs).
        fom = FileOnlyMemory(kernel)
        keep = fom.allocate(
            process,
            4 * PAGE_SIZE,
            name="/keep",
            strategy=MapStrategy.PREMAP,
            persistent=True,
        )
        manager = PersistenceManager(fom)
        manager.mark_persistent(keep)
        scratch = fom.allocate(process, 4 * PAGE_SIZE, name="/scratch")
        kernel.access(process, scratch.vaddr, write=True)
        fom.release(scratch)

        # -- slab + zeroing traffic: the kernel does not wire these into
        #    the syscall path, so drive them directly.
        slab = SlabCache(
            "chaos-obj",
            object_size=256,
            buddy=kernel.dram_buddy,
            clock=kernel.clock,
            costs=kernel.costs,
            counters=kernel.counters,
        )
        objs = [slab.alloc() for _ in range(4)]
        for addr in objs:
            slab.free(addr)
        zeroing = EagerZeroing(
            kernel.dram_buddy, kernel.clock, kernel.costs, kernel.counters
        )
        frames = zeroing.take_frames(2)
        zeroing.return_frames(frames)

        # -- QoS memory controller: two tenants share a tight memcg.
        #    The bulk filler breaches ``high`` (direct-reclaim batches:
        #    qos.reclaim crash points), then the spike pushes usage over
        #    ``max`` with nothing on the LRU to reclaim, so the OOM
        #    killer fires (qos.oom_kill) and tears down the bulk filler
        #    — the largest-RSS victim, never the in-flight process.
        qos = kernel.qos
        if qos is None:
            qos = kernel.arm_qos()
        noisy = qos.cgroup("chaos-noisy", high=12, max_frames=24)
        bulk = kernel.spawn("qos-bulk", cgroup=noisy)
        spike = kernel.spawn("qos-spike", cgroup=noisy)
        bulk_va = kernel.syscalls(bulk).mmap(
            16 * PAGE_SIZE, flags=MapFlags.PRIVATE
        )
        for i in range(12):
            kernel.access(bulk, bulk_va + i * PAGE_SIZE, write=True)
        spike_va = kernel.syscalls(spike).mmap(
            16 * PAGE_SIZE, flags=MapFlags.PRIVATE
        )
        for i in range(12):
            if not spike.alive:
                break
            kernel.access(spike, spike_va + i * PAGE_SIZE, write=True)
        assert not bulk.alive, "OOM killer must reap the bulk tenant"

        # -- RAS: inject media faults, patrol-scrub one batch, then
        #    retire a free NVM block (badblock adoption) and a live file
        #    block (extent migration), making retirement and migration
        #    crash points ahead of the in-workload crash.
        ras = kernel.ras
        if ras is None:
            # A caller (the RAS sweep) may have armed a seeded engine
            # already; default to a clean model so only the two faults
            # injected below are in play.
            ras = kernel.arm_ras(
                model=MediaFaultModel(seed=seed, faults_per_bind=0)
            )
        file_pfn = fs.charge_block_lookup(fs.lookup(paths[2]), 0)
        ras.model.inject(file_pfn, FaultKind.DEAD)
        first_nvm = kernel.nvm_region.first_pfn
        free_pfn = next(
            pfn
            for pfn in range(first_nvm, first_nvm + 128)
            if fs.allocator.block_is_free(pfn)
        )
        ras.model.inject(free_pfn, FaultKind.DEAD)
        ras.scrubber.scrub_batch()
        ras.retire_frame(free_pfn)
        ras.retire_frame(file_pfn)

        # -- unlink one file, then crash and recover in-workload so the
        #    recovery sweep's own fault sites become crash points too.
        sys_calls.unlink(fs, paths[1])
        kernel.crash()
        PersistenceManager(FileOnlyMemory(kernel)).recover()

    return kernel, run


def make_builder(seed: int = 0) -> WorkloadBuilder:
    """A :data:`WorkloadBuilder` for :func:`fig2_workload` at ``seed``."""

    def build() -> Tuple[Kernel, Callable[[], None]]:
        return fig2_workload(seed)

    return build
