"""Per-tenant memory QoS: cgroup-style limits, reclaim backpressure, OOM.

The fifth armable subsystem (after chaos, sanitize, ras, profiler):
``kernel.arm_qos()`` wires a :class:`~repro.qos.controller.QosController`
into ``counters.qos``; unarmed machines pay one ``getattr`` per charge
site and stay bit-identical to the baseline.

>>> from repro.kernel.kernel import Kernel
>>> kernel = Kernel.default()
>>> qos = kernel.arm_qos()
>>> cg = qos.cgroup("tenant-a", high=64, max_frames=128)
>>> process = kernel.spawn("a", track_lru=True, cgroup=cg)
>>> qos.cgroup_of(process.pid) is cg
True
"""

from repro.qos.controller import QosConfig, QosController
from repro.qos.memcg import (
    OOM_POLICIES,
    CgroupError,
    MemCg,
    PsiTracker,
)

__all__ = [
    "CgroupError",
    "MemCg",
    "OOM_POLICIES",
    "PsiTracker",
    "QosConfig",
    "QosController",
]
