"""The QoS memory controller: charging, backpressure, and the OOM path.

Armed on a machine with ``kernel.arm_qos()`` and reached from the hot
allocation paths through ``counters.qos`` — the same back-reference
pattern the chaos engine, sanitizers, RAS engine and profiler use, so an
unarmed machine pays exactly one ``getattr`` per site and the golden
figures stay bit-identical.

Charge sites (all O(1) per event):

* ``BuddyAllocator.alloc`` / ``_free_block`` — every DRAM frame block,
  attributed to the *current* cgroup (the controller tracks the block's
  owner so the free uncharges the right tenant no matter who frees);
* ``ZeroPool.refill`` / ``take`` — pooled frames park on the root
  cgroup and transfer to the taker, so background zeroing is never
  billed to whichever tenant happened to trigger it;
* ``SlabCache._grow`` / ``_reap`` — kernel-memory side ledger
  (``kmem_frames``), informational like cgroup v2's kmem counters;
* ``BlockAllocator._alloc_extent`` / ``free_extent`` — PMFS block side
  ledger (``nvm_blocks``).

Watermark policy (cgroup-v2 semantics):

* over ``high`` → *backpressure, not failure*: one bounded-batch direct
  reclaim pass targeted at the cgroup's own frames (``qos.reclaim``
  chaos site), then — if still over — a clock-charged throttle stall
  growing linearly with the breach streak;
* over ``max`` → bounded reclaim retries, then the pluggable OOM killer
  (``qos.oom_kill`` chaos site): victims come only from the offending
  cgroup's subtree and die through the existing ``Process.exit``
  teardown, so FrameSan's leak census stays clean across kills.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Union

from repro.errors import OomKilledError, OutOfMemoryError
from repro.lint import allocfree, complexity, o1
from repro.qos.memcg import OOM_POLICIES, CgroupError, MemCg
from repro.vm.reclaimd import ClockReclaimer, _LruEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


@dataclass(frozen=True)
class QosConfig:
    """Tunables for the pressure slow paths (never touched within limits)."""

    #: Pages per direct-reclaim batch; the scan bound is 4x this, so one
    #: batch is O(1) however much memory is resident.
    reclaim_batch: int = 32
    #: Reclaim passes attempted against a ``max`` breach before the OOM
    #: killer is invoked.
    reclaim_retries: int = 2
    #: Base throttle stall; breach streak k sleeps ``k * base`` (capped).
    throttle_base_ns: int = 20_000
    #: Upper bound on one throttle stall.
    throttle_cap_ns: int = 1_000_000


class QosController:
    """Per-tenant memory accounting and pressure policy for one machine."""

    def __init__(
        self, kernel: "Kernel", config: Optional[QosConfig] = None
    ) -> None:
        self._kernel = kernel
        self._clock = kernel.clock
        self._counters = kernel.counters
        self.config = config if config is not None else QosConfig()
        self.root = MemCg("root")
        self._cgs: Dict[str, MemCg] = {"root": self.root}
        self._cg_of_pid: Dict[int, MemCg] = {}
        #: first-pfn -> owning cgroup for live DRAM blocks.
        self._owner: Dict[int, MemCg] = {}
        #: first-pfn -> frame count, only for blocks of order > 0.
        self._owner_n: Dict[int, int] = {}
        #: The cgroup charged for allocations happening right now.
        self.current: MemCg = self.root
        self._reclaimer = ClockReclaimer(
            kernel.lru, kernel.frame_table, kernel.counters
        )
        #: Reentrancy latch: reclaim/OOM work may itself allocate and
        #: free frames; those charges are recorded but never recurse
        #: into another pressure slow path.
        self._in_pressure = False
        #: Audit trail of kills: (victim pid, victim cg, offending cg).
        self.kills: List[Dict[str, object]] = []
        #: The pid whose syscall/access is in flight right now.
        self._current_pid = -1
        #: Pids marked for death while they were the running process:
        #: killing them mid-fault would tear the space down under the
        #: fault handler, so the reaper waits for the next safe point.
        self._doomed: Set[int] = set()

    # ------------------------------------------------------------------
    # Hierarchy management (control plane, cold)
    # ------------------------------------------------------------------
    def cgroup(
        self,
        name: str,
        parent: Union[MemCg, str, None] = None,
        high: Optional[int] = None,
        max_frames: Optional[int] = None,
        oom_policy: str = "largest_rss",
        oom_priority: int = 0,
    ) -> MemCg:
        """Create (and register) a cgroup under ``parent`` (default root)."""
        if name in self._cgs:
            raise CgroupError(f"cgroup {name!r} already exists")
        parent_cg = self._resolve(parent) if parent is not None else self.root
        cg = MemCg(
            name,
            parent=parent_cg,
            high=high,
            max_frames=max_frames,
            oom_policy=oom_policy,
            oom_priority=oom_priority,
        )
        self._cgs[name] = cg
        return cg

    def lookup(self, name: str) -> MemCg:
        """The registered cgroup called ``name``."""
        try:
            return self._cgs[name]
        except KeyError:
            raise CgroupError(f"no cgroup named {name!r}") from None

    def _resolve(self, cg: Union[MemCg, str]) -> MemCg:
        return cg if isinstance(cg, MemCg) else self.lookup(cg)

    def attach(self, process: "Process", cg: Union[MemCg, str]) -> MemCg:
        """Bind ``process`` (and its future allocations) to ``cg``."""
        node = self._resolve(cg)
        previous = self._cg_of_pid.get(process.pid)
        if previous is not None:
            previous.pids.discard(process.pid)
        node.pids.add(process.pid)
        self._cg_of_pid[process.pid] = node
        return node

    def detach(self, pid: int) -> None:
        """Forget ``pid`` (exit/kill); its charges stay until freed."""
        cg = self._cg_of_pid.pop(pid, None)
        if cg is not None:
            cg.pids.discard(pid)

    def cgroup_of(self, pid: int) -> Optional[MemCg]:
        """The cgroup ``pid`` is attached to, if any."""
        return self._cg_of_pid.get(pid)

    # ------------------------------------------------------------------
    # Hot hooks (reached through ``counters.qos``)
    # ------------------------------------------------------------------
    @o1(note="one dict probe, one attribute store, one empty-set test")
    @allocfree(note="dict probe and attribute store only")
    def enter_pid(self, pid: int) -> None:
        """Syscall/access entry: allocations now bill ``pid``'s cgroup.

        This is also the OOM safe point: a process the killer doomed
        while it was mid-operation dies here, before any new work starts
        (SIGKILL delivered on return to userspace).
        """
        self._current_pid = pid
        cg = self._cg_of_pid.get(pid)
        self.current = self.root if cg is None else cg
        if self._doomed and pid in self._doomed:
            self._reap_doomed(pid)

    @o1(note="owner-map store plus a depth-capped lineage charge")
    def on_frames_alloc(self, pfn: int, nframes: int) -> None:
        """One DRAM block left the buddy allocator: charge it."""
        cg = self.current
        self._owner[pfn] = cg
        if nframes != 1:
            self._owner_n[pfn] = nframes
        max_breach, high_breach = cg.charge(nframes)
        if max_breach is not None or high_breach is not None:
            # o1: allow(flow-bounded) -- pressure slow path: bounded-batch reclaim, throttle, or OOM
            self._on_breach(max_breach, high_breach)

    @o1(note="owner-map pop plus a depth-capped lineage uncharge")
    @allocfree(note="dict pops and integer subtracts")
    def on_frames_free(self, pfn: int) -> None:
        """One DRAM block returned to the buddy allocator: uncharge."""
        cg = self._owner.pop(pfn, None)
        if cg is None:
            return  # allocated before arming; never charged
        count = self._owner_n.pop(pfn, None)
        cg.uncharge(1 if count is None else count)

    @o1(note="one owner-map transfer plus two lineage walks")
    def on_frame_pooled(self, pfn: int) -> None:
        """A frame entered the zero pool: park its charge on root."""
        self._transfer(pfn, self.root)

    @o1(note="one owner-map transfer plus two lineage walks")
    def on_frame_claimed(self, pfn: int) -> None:
        """A pooled frame was taken: bill the taker, not the refiller."""
        self._transfer(pfn, self.current)

    @o1(note="uncharge one lineage, charge another; both depth-capped")
    def _transfer(self, pfn: int, to: MemCg) -> None:
        owner = self._owner.get(pfn)
        if owner is to:
            return
        if owner is not None:
            owner.uncharge(1)
        self._owner[pfn] = to
        max_breach, high_breach = to.charge(1)
        if max_breach is not None or high_breach is not None:
            # o1: allow(flow-bounded) -- pressure slow path: bounded-batch reclaim, throttle, or OOM
            self._on_breach(max_breach, high_breach)

    @o1(note="depth-capped lineage add on the kmem side ledger")
    @allocfree(note="integer adds on preexisting nodes")
    def on_slab_grow(self, nframes: int) -> None:
        """A slab cache grew: record kernel-memory attribution."""
        # o1: allow(o1-size-loop) -- lineage length is capped at MAX_DEPTH
        for node in self.current.lineage:
            node.kmem_frames += nframes

    @o1(note="depth-capped lineage subtract on the kmem side ledger")
    @allocfree(note="integer subtracts on preexisting nodes")
    def on_slab_reap(self, nframes: int) -> None:
        """A slab was reaped: release kernel-memory attribution."""
        # o1: allow(o1-size-loop) -- lineage length is capped at MAX_DEPTH
        for node in self.current.lineage:
            kmem = node.kmem_frames - nframes
            node.kmem_frames = kmem if kmem > 0 else 0

    @o1(note="depth-capped lineage add on the NVM side ledger")
    @allocfree(note="integer adds on preexisting nodes")
    def on_nvm_alloc(self, nblocks: int) -> None:
        """A PMFS extent was allocated in this tenant's context."""
        # o1: allow(o1-size-loop) -- lineage length is capped at MAX_DEPTH
        for node in self.current.lineage:
            node.nvm_blocks += nblocks

    @o1(note="depth-capped lineage subtract on the NVM side ledger")
    @allocfree(note="integer subtracts on preexisting nodes")
    def on_nvm_free(self, nblocks: int) -> None:
        """A PMFS extent was freed in this tenant's context."""
        # o1: allow(o1-size-loop) -- lineage length is capped at MAX_DEPTH
        for node in self.current.lineage:
            blocks = node.nvm_blocks - nblocks
            node.nvm_blocks = blocks if blocks > 0 else 0

    # ------------------------------------------------------------------
    # Pressure slow paths
    # ------------------------------------------------------------------
    @complexity("n", note="bounded reclaim/throttle/OOM; never on the within-limit path")
    def _on_breach(
        self, max_breach: Optional[MemCg], high_breach: Optional[MemCg]
    ) -> None:
        if self._in_pressure:
            return  # reclaim/OOM work never recurses into itself
        self._in_pressure = True
        try:
            if max_breach is not None:
                self._handle_max(max_breach)
            elif high_breach is not None:
                self._handle_high(high_breach)
        finally:
            self._in_pressure = False

    @complexity("n", note="one bounded reclaim batch plus one throttle stall")
    def _handle_high(self, cg: MemCg) -> None:
        """Soft-limit breach: reclaim a bounded batch, then throttle."""
        self._counters.bump("qos_watermark_high")
        cg.events["high"] += 1
        self.reclaim_batch(cg)
        if cg.over_high:
            self._throttle(cg)

    @complexity("n", note="config-bounded reclaim retries, then per-victim OOM kills")
    def _handle_max(self, cg: MemCg) -> None:
        """Hard-limit breach: bounded reclaim retries, then OOM kills."""
        self._counters.bump("qos_watermark_max")
        cg.events["max"] += 1
        self._reap_parked()
        # o1: allow(o1-size-loop) -- retry count is a small config constant
        for _attempt in range(self.config.reclaim_retries):
            self.reclaim_batch(cg)
            if not cg.over_max:
                return
        # o1: allow(o1-size-loop) -- bounded by live processes in the cgroup; each pass kills one
        while cg.over_max:
            outcome = self._oom_kill(cg)
            if outcome == "killed":
                continue
            if outcome == "none":
                self._counters.bump("qos_oom_victimless")
            # "deferred": the running process is doomed; its allocation
            # proceeds from reserves and it dies at the next safe point.
            break

    @complexity("n", note="one bounded-batch reclaim pass (scan cap = 4x batch)")
    def reclaim_batch(self, cg: MemCg) -> int:
        """One direct-reclaim batch against ``cg``'s own frames.

        The scan bound is ``4 * reclaim_batch`` pages regardless of how
        much memory is resident — the property the ``qos.reclaim_batch``
        fitter operation pins as CONSTANT.
        """
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None and chaos.hit("qos.reclaim") == "error":
            # Injected transient failure: skip this pass; the throttle
            # (or the next breach) provides the backpressure instead.
            self._counters.bump("qos_reclaim_error")
            return 0
        started = self._clock.now
        batch = self.config.reclaim_batch

        def owned(entry: _LruEntry) -> bool:
            return self._owned_by_subtree(entry.pfn, cg)

        try:
            freed = self._reclaimer.reclaim(
                batch, max_scan=4 * batch, should_evict=owned
            )
        except OutOfMemoryError:
            # Swap device full: nothing more to writeback this pass.
            self._counters.bump("qos_reclaim_error")
            freed = 0
        self._counters.bump("qos_reclaim_batch")
        cg.events["reclaim"] += 1
        stalled = self._clock.now - started
        if stalled > 0:
            cg.psi.record(self._clock.now, stalled, full=False)
            self._counters.observe("qos_stall_some_ns", stalled)
        return freed

    @o1(note="ancestor chain capped at MAX_DEPTH")
    @allocfree(note="dict probe and pointer chases only")
    def _owned_by_subtree(self, pfn: int, cg: MemCg) -> bool:
        owner = self._owner.get(pfn)
        # o1: allow(o1-size-loop) -- ancestor chain capped at MAX_DEPTH
        while owner is not None:
            if owner is cg:
                return True
            owner = owner.parent
        return False

    def _throttle(self, cg: MemCg) -> None:
        """Clock-charged linear-backoff stall (backpressure, not failure)."""
        cg.throttle_streak += 1
        stall = min(
            self.config.throttle_cap_ns,
            self.config.throttle_base_ns * cg.throttle_streak,
        )
        self._clock.advance(stall)
        cg.psi.record(self._clock.now, stall, full=True)
        cg.events["throttle"] += 1
        self._counters.bump("qos_throttle_stall")
        self._counters.observe("qos_stall_full_ns", stall)

    @complexity("n", note="candidate sweep over the subtree; OOM slow path")
    def _oom_kill(self, cg: MemCg) -> str:
        """Kill one victim inside ``cg``'s subtree.

        Returns ``"killed"`` (victim torn down synchronously),
        ``"deferred"`` (the only victim is the process running right now;
        it is doomed and dies at its next syscall/access entry), or
        ``"none"`` (no live candidates left).
        """
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None:
            chaos.hit("qos.oom_kill")
        processes = self._kernel.processes
        candidates: List["Process"] = []
        # o1: allow(flow-bounded) -- one sweep iterating the single subtree_pids result, the declared n
        for pid in cg.subtree_pids():
            process = processes.get(pid)
            if process is not None and process.alive and pid not in self._doomed:
                candidates.append(process)
        if not candidates:
            return "none"
        policy = OOM_POLICIES[cg.oom_policy]
        victim = policy(candidates, self.cgroup_of)
        if victim.pid == self._current_pid:
            # Never tear down the process whose fault/syscall is in
            # flight: prefer another candidate, else doom it for the
            # reaper at the next safe point (TIF_MEMDIE semantics).
            others = [p for p in candidates if p.pid != victim.pid]
            if others:
                victim = policy(others, self.cgroup_of)
            else:
                self._doomed.add(victim.pid)
                self._record_kill(victim, cg, deferred=True)
                return "deferred"
        self._kill_now(victim, cg)
        return "killed"

    def _kill_now(self, victim: "Process", cg: MemCg) -> None:
        """Tear ``victim`` down through the standard exit path.

        The teardown releases every frame, which flows back through the
        free hooks and uncharges the lineage — FrameSan's leak census
        stays clean.
        """
        self._record_kill(victim, cg, deferred=False)
        # o1: allow(flow-bounded) -- one-time teardown of the killed process's mappings
        victim.exit()
        self._kernel.processes.pop(victim.pid, None)
        self.detach(victim.pid)

    def _record_kill(self, victim: "Process", cg: MemCg, deferred: bool) -> None:
        victim_cg = self._cg_of_pid.get(victim.pid)
        self.kills.append(
            {
                "pid": victim.pid,
                "name": victim.name,
                "cgroup": victim_cg.name if victim_cg is not None else None,
                "offending": cg.name,
                "policy": cg.oom_policy,
                "deferred": deferred,
            }
        )
        cg.events["oom_kill"] += 1
        self._counters.bump("qos_oom_kill")
        tracer = self._kernel.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "qos_oom_kill",
                "kernel",
                pid=victim.pid,
                args={"cgroup": cg.name, "deferred": deferred},
            )

    def _reap_parked(self) -> None:
        """oom_reaper: tear down doomed processes that are not running.

        A doomed process normally dies at its own next safe point, but if
        the scheduler never runs it again its memory would stay parked;
        under renewed ``max`` pressure the reaper claims it here instead
        (the kill was already audited when it was doomed).
        """
        # o1: allow(o1-size-loop) -- doomed set is bounded by deferred kills, drained here
        for pid in [p for p in self._doomed if p != self._current_pid]:
            self._doomed.discard(pid)
            victim = self._kernel.processes.get(pid)
            if victim is not None and victim.alive:
                victim.exit()
                self._kernel.processes.pop(pid, None)
            self.detach(pid)

    def _reap_doomed(self, pid: int) -> None:
        """Safe-point reaper: the doomed caller dies before doing work."""
        self._doomed.discard(pid)
        victim = self._kernel.processes.get(pid)
        if victim is not None and victim.alive:
            victim.exit()
            self._kernel.processes.pop(pid, None)
        self.detach(pid)
        raise OomKilledError(
            f"pid {pid} killed by the QoS OOM killer (limit breach)"
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """Machine-readable controller state for the CLI's ``--json``."""
        now = self._clock.now
        return {
            "cgroups": [
                cg.snapshot(now) for _, cg in sorted(self._cgs.items())
            ],
            "kills": list(self.kills),
            "tracked_blocks": len(self._owner),
        }
