"""Memory control groups: the per-tenant accounting tree (``repro.qos``).

A :class:`MemCg` is one node of a cgroup-v2-style hierarchy.  Every frame
allocation on an armed machine is charged to the allocating tenant's
cgroup and to each of its ancestors — the lineage is precomputed at
creation and its depth is capped by :data:`MemCg.MAX_DEPTH`, so one
charge is a bounded handful of integer adds: O(1) in tenant count,
resident memory, and hierarchy width, which is the property the
empirical fitter pins (``qos.charge`` in ``repro.lint.ops``).

Two watermarks drive the controller's policy (semantics match the
kernel's ``memory.high`` / ``memory.max``):

* ``high`` — soft limit.  Crossing it is *backpressure, not failure*:
  the controller runs bounded-batch direct reclaim against the cgroup's
  own pages and throttles the allocating tenant with a linearly growing,
  clock-charged stall.
* ``max`` — hard limit.  Crossing it, after reclaim fails to bring
  usage back, invokes the OOM killer — which only ever picks victims
  *inside* the offending cgroup's subtree.

Pressure is exported PSI-style: per-cgroup ``some``/``full`` stall
totals plus ``avg10`` window ratios (:class:`PsiTracker`), fed into the
``repro.obs`` histograms by the controller.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.lint import allocbound, allocfree, complexity, o1

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process


class CgroupError(ValueError):
    """Invalid cgroup construction or attachment."""


class PsiTracker:
    """PSI-style pressure accounting on the simulated clock.

    Tracks total stalled nanoseconds in two classes — ``some`` (at least
    one task delayed by memory: reclaim work *and* throttles) and
    ``full`` (the task made no progress at all: throttle sleeps) — plus
    a two-bucket sliding window from which ``avg10`` is derived as the
    stalled fraction of the last :data:`WINDOW_NS` of simulated time.
    Everything is integer arithmetic on the deterministic clock, so the
    figures are bit-stable across runs.
    """

    #: The averaging window (10 simulated seconds, like PSI's avg10).
    WINDOW_NS = 10_000_000_000

    __slots__ = (
        "some_total_ns",
        "full_total_ns",
        "_epoch",
        "_cur_some",
        "_cur_full",
        "_prev_some",
        "_prev_full",
    )

    def __init__(self) -> None:
        self.some_total_ns = 0
        self.full_total_ns = 0
        self._epoch = 0
        self._cur_some = 0
        self._cur_full = 0
        self._prev_some = 0
        self._prev_full = 0

    @o1(note="two integer adds and at most one window roll")
    def record(self, now_ns: int, stall_ns: int, full: bool) -> None:
        """Account one stall ending at ``now_ns``."""
        if stall_ns <= 0:
            return
        self._roll(now_ns)
        self.some_total_ns += stall_ns
        self._cur_some += stall_ns
        if full:
            self.full_total_ns += stall_ns
            self._cur_full += stall_ns

    def _roll(self, now_ns: int) -> None:
        epoch = now_ns // self.WINDOW_NS
        if epoch == self._epoch:
            return
        if epoch == self._epoch + 1:
            self._prev_some, self._prev_full = self._cur_some, self._cur_full
        else:
            self._prev_some = self._prev_full = 0
        self._cur_some = self._cur_full = 0
        self._epoch = epoch

    def avg10(self, now_ns: int) -> Tuple[float, float]:
        """(some, full) stalled fractions over the trailing window."""
        self._roll(now_ns)
        offset = now_ns % self.WINDOW_NS
        weight = (self.WINDOW_NS - offset) / self.WINDOW_NS
        some = (self._prev_some * weight + self._cur_some) / self.WINDOW_NS
        full = (self._prev_full * weight + self._cur_full) / self.WINDOW_NS
        return (min(1.0, some), min(1.0, full))

    def snapshot(self, now_ns: int) -> Dict[str, float]:
        """JSON-friendly PSI figures."""
        some, full = self.avg10(now_ns)
        return {
            "some_total_ns": self.some_total_ns,
            "full_total_ns": self.full_total_ns,
            "some_avg10": round(some, 6),
            "full_avg10": round(full, 6),
        }


class MemCg:
    """One node of the memory-cgroup hierarchy.

    ``usage_frames`` is hierarchical (a child's charge lands on every
    ancestor too), matching cgroup v2.  ``nvm_blocks`` and
    ``kmem_frames`` are informational side ledgers (PMFS block and slab
    charging) with no watermark actions of their own.
    """

    #: Hierarchy depth cap — what makes per-charge lineage walks O(1).
    MAX_DEPTH = 4

    __slots__ = (
        "name",
        "parent",
        "children",
        "depth",
        "lineage",
        "high_frames",
        "max_frames",
        "oom_policy",
        "oom_priority",
        "usage_frames",
        "peak_frames",
        "nvm_blocks",
        "kmem_frames",
        "pids",
        "events",
        "throttle_streak",
        "psi",
    )

    def __init__(
        self,
        name: str,
        parent: Optional["MemCg"] = None,
        high: Optional[int] = None,
        max_frames: Optional[int] = None,
        oom_policy: str = "largest_rss",
        oom_priority: int = 0,
    ) -> None:
        if parent is not None and parent.depth + 1 > self.MAX_DEPTH:
            raise CgroupError(
                f"cgroup {name!r} would exceed the depth cap "
                f"({self.MAX_DEPTH}) that keeps charging O(1)"
            )
        if high is not None and max_frames is not None and high > max_frames:
            raise CgroupError(
                f"cgroup {name!r}: high ({high}) must not exceed "
                f"max ({max_frames})"
            )
        if oom_policy not in OOM_POLICIES:
            raise CgroupError(
                f"unknown oom_policy {oom_policy!r}; "
                f"choose one of {sorted(OOM_POLICIES)}"
            )
        self.name = name
        self.parent = parent
        self.children: List["MemCg"] = []
        self.depth = 0 if parent is None else parent.depth + 1
        #: (self, parent, ..., root) — the bounded charge path.
        self.lineage: Tuple["MemCg", ...] = (
            (self,) if parent is None else (self,) + parent.lineage
        )
        self.high_frames = high
        self.max_frames = max_frames
        self.oom_policy = oom_policy
        self.oom_priority = oom_priority
        self.usage_frames = 0
        self.peak_frames = 0
        self.nvm_blocks = 0
        self.kmem_frames = 0
        #: Pids attached directly to this node (not the subtree).
        self.pids: Set[int] = set()
        self.events: Dict[str, int] = {
            "high": 0,
            "max": 0,
            "reclaim": 0,
            "throttle": 0,
            "oom_kill": 0,
        }
        self.throttle_streak = 0
        self.psi = PsiTracker()
        if parent is not None:
            parent.children.append(self)

    # ------------------------------------------------------------------
    # Charging (the O(1) hot path; driven by the controller)
    # ------------------------------------------------------------------
    @o1(note="lineage walk capped at MAX_DEPTH nodes")
    @allocbound(1, note="the breach-pair tuple; freed by the caller each call")
    def charge(self, nframes: int) -> Tuple[Optional["MemCg"], Optional["MemCg"]]:
        """Add ``nframes`` along the lineage.

        Returns ``(max_breach, high_breach)`` — the deepest node (self
        first) whose hard or soft watermark the charge crossed, so the
        controller can run its slow path without re-walking.
        """
        max_breach: Optional[MemCg] = None
        high_breach: Optional[MemCg] = None
        # o1: allow(o1-size-loop) -- lineage length is capped at MAX_DEPTH
        for node in self.lineage:
            usage = node.usage_frames + nframes
            node.usage_frames = usage
            if usage > node.peak_frames:
                node.peak_frames = usage
            if node.max_frames is not None and usage > node.max_frames:
                if max_breach is None:
                    max_breach = node
            elif node.high_frames is not None and usage > node.high_frames:
                if high_breach is None:
                    high_breach = node
        return max_breach, high_breach

    @o1(note="lineage walk capped at MAX_DEPTH nodes")
    @allocfree(note="integer subtracts on preexisting nodes")
    def uncharge(self, nframes: int) -> None:
        """Remove ``nframes`` along the lineage (floors at zero)."""
        # o1: allow(o1-size-loop) -- lineage length is capped at MAX_DEPTH
        for node in self.lineage:
            usage = node.usage_frames - nframes
            node.usage_frames = usage if usage > 0 else 0
            if (
                node.throttle_streak
                and (
                    node.high_frames is None
                    or node.usage_frames <= node.high_frames
                )
            ):
                # Pressure relieved: the linear backoff restarts small.
                node.throttle_streak = 0

    @property
    def over_high(self) -> bool:
        """True while usage exceeds the soft watermark."""
        return self.high_frames is not None and self.usage_frames > self.high_frames

    @property
    def over_max(self) -> bool:
        """True while usage exceeds the hard limit."""
        return self.max_frames is not None and self.usage_frames > self.max_frames

    # ------------------------------------------------------------------
    # Subtree walks (slow paths only: OOM victim selection, reporting)
    # ------------------------------------------------------------------
    @complexity("n", note="full subtree walk; OOM/report slow path only")
    def walk(self) -> Iterator["MemCg"]:
        """This node and every descendant, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    @complexity("n", note="subtree pid sweep; OOM slow path only")
    def subtree_pids(self) -> List[int]:
        """Pids attached anywhere in this subtree."""
        pids: List[int] = []
        # o1: allow(flow-bounded) -- the walk yields the declared n subtree nodes exactly once
        for node in self.walk():
            pids.extend(node.pids)
        return pids

    def contains(self, other: "MemCg") -> bool:
        """True if ``other`` is this node or a descendant of it."""
        node: Optional[MemCg] = other
        # o1: allow(o1-size-loop) -- ancestor chain capped at MAX_DEPTH
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def snapshot(self, now_ns: int) -> Dict[str, object]:
        """JSON-friendly state of this node."""
        return {
            "name": self.name,
            "usage_frames": self.usage_frames,
            "peak_frames": self.peak_frames,
            "high_frames": self.high_frames,
            "max_frames": self.max_frames,
            "nvm_blocks": self.nvm_blocks,
            "kmem_frames": self.kmem_frames,
            "oom_policy": self.oom_policy,
            "oom_priority": self.oom_priority,
            "pids": sorted(self.pids),
            "events": dict(self.events),
            "psi": self.psi.snapshot(now_ns),
        }

    def __repr__(self) -> str:
        return (
            f"MemCg({self.name!r}, usage={self.usage_frames}, "
            f"high={self.high_frames}, max={self.max_frames})"
        )


# ----------------------------------------------------------------------
# OOM victim policies
# ----------------------------------------------------------------------
#: A policy ranks live candidate processes and returns the victim.
#: ``cg_of`` resolves a pid to its cgroup (for priority weighting).
OomPolicy = Callable[
    [List["Process"], Callable[[int], Optional[MemCg]]], "Process"
]


@complexity("n", note="one resident-page count of a candidate; OOM slow path")
def _rss_of(process: "Process") -> int:
    """Resident pages of one candidate (slow path: OOM only)."""
    return process.space.resident_pages()


@complexity("n", note="one pass over the candidate list; OOM slow path")
def victim_largest_rss(
    candidates: List["Process"],
    cg_of: Callable[[int], Optional[MemCg]],
) -> "Process":
    """Kill the biggest consumer (ties: the youngest, largest pid)."""
    return max(candidates, key=lambda p: (_rss_of(p), p.pid))


@complexity("n", note="one pass over the candidate list; OOM slow path")
def victim_oldest(
    candidates: List["Process"],
    cg_of: Callable[[int], Optional[MemCg]],
) -> "Process":
    """Kill the longest-running process (smallest pid)."""
    return min(candidates, key=lambda p: p.pid)


@complexity("n", note="one pass over the candidate list; OOM slow path")
def victim_priority(
    candidates: List["Process"],
    cg_of: Callable[[int], Optional[MemCg]],
) -> "Process":
    """Priority-weighted badness: higher ``oom_priority`` dies first.

    Badness is ``(priority, rss, pid)`` lexicographically, so within one
    priority band the policy degrades to largest-RSS.
    """

    def badness(process: "Process") -> Tuple[int, int, int]:
        cg = cg_of(process.pid)
        priority = 0 if cg is None else cg.oom_priority
        return (priority, _rss_of(process), process.pid)

    return max(candidates, key=badness)


#: Pluggable OOM policy table (``MemCg.oom_policy`` names a key here).
OOM_POLICIES: Dict[str, OomPolicy] = {
    "largest_rss": victim_largest_rss,
    "oldest": victim_oldest,
    "priority": victim_priority,
}
