"""RAS policy engine: traps, graceful degradation, retirement, migration.

The engine is armed on a machine with ``kernel.arm_ras()`` and reached
from the hot paths through ``counters.ras`` — the same back-reference
pattern the chaos engine and sanitizers use, so an unarmed machine pays
one ``getattr`` per site and golden figures stay bit-identical.

Policy, in one paragraph: a load that consumes poison raises a
machine-check-style :class:`~repro.errors.MemoryPoisonError` from the
CPU; the kernel degrades gracefully — anonymous/private memory SIGBUS-
kills *only* the faulting process, file-backed NVM data is migrated off
the failing media and the access retried, transient media errors are
retried with bounded backoff charged on the simulated clock, and
file-API reads of dead blocks surface :class:`~repro.errors.MediaError`
(EIO).  A patrol scrubber walks a bounded batch of frames per
invocation and proactively retires failing ones; retired frames leave
the allocators permanently and NVM retirements land on a journaled,
PMFS-persisted badblock list that survives crash/recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import MediaError, MemoryPoisonError, NoSpaceError
from repro.fs.pmfs import Pmfs
from repro.lint import complexity, o1
from repro.ras.model import FaultKind, MediaFaultModel
from repro.ras.scrub import PatrolScrubber
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fs.vfs import Inode
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process

#: Where the persisted badblock list lives in the PMFS namespace.
BADBLOCK_PATH = "/.badblocks"

#: DRAM retirements persist here as file *data* (fixed-width records),
#: not as adopted extents: adopting a DRAM pfn into the badblock file's
#: extent tree would claim an NVM block number that conservation audits
#: check against the NVM bitmap.
DRAM_BADBLOCK_PATH = "/.badblocks.dram"

#: Bytes per DRAM badblock record: ``pfn + 1`` big-endian, so a torn
#: tail (prefix of zeros, since sim pfns never reach 2**32) can never be
#: mistaken for a valid record.
_DRAM_RECORD_BYTES = 8


class RasEngine:
    """Reliability/availability/serviceability policy for one machine."""

    #: A transient fault still failing after this many media retries is
    #: escalated (trap on the CPU path, EIO on the file path).
    _MAX_MEDIA_RETRIES = 4

    def __init__(
        self,
        kernel: "Kernel",
        model: Optional[MediaFaultModel] = None,
        scrub_batch_frames: int = 64,
    ) -> None:
        self._kernel = kernel
        self._clock = kernel.clock
        self._costs = kernel.costs
        self._counters = kernel.counters
        self.model = model if model is not None else MediaFaultModel()
        if not self.model.spans():
            self.model.bind_dram(
                kernel.dram_region.first_pfn, kernel.dram_region.frame_count
            )
            if kernel.nvm_region is not None:
                self.model.bind_nvm(
                    kernel.nvm_region.first_pfn, kernel.nvm_region.frame_count
                )
        self.scrubber = PatrolScrubber(self, batch_frames=scrub_batch_frames)
        # A fresh engine on a recovered machine re-learns DRAM badblocks
        # from the persisted list before the allocator can reuse them.
        self._adopt_persisted_dram_badblocks()

    # ------------------------------------------------------------------
    # Armed-path hooks (reached through ``counters.ras``)
    # ------------------------------------------------------------------
    @o1(note="one dict probe; faulting frames charge their own repair paths")
    def check_access(self, paddr: int, write: bool) -> None:
        """CPU access hook: trap on poison, retry transient media errors.

        Raises :class:`MemoryPoisonError` for a load that consumes
        poison (sticky or dead).  A store to a sticky poisoned line
        overwrites — and thereby clears — the poison, as real hardware
        does.
        """
        pfn = paddr // PAGE_SIZE
        fault = self.model.probe(pfn)
        if fault is None:
            return
        if fault.kind is FaultKind.TRANSIENT:
            if self._retry_transient(pfn):
                return
            # Retries exhausted: the "transient" fault is behaving like a
            # hard one; escalate to the machine-check path.
        elif fault.kind is FaultKind.POISON and write:
            self.model.clear_poison(pfn)
            self._counters.bump("ras_poison_cleared")
            return
        self._counters.bump("ras_poison_trap")
        self._clock.advance(self._costs.fault_trap_ns)
        tracer = self._kernel.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("ras_poison_trap", "ras", args={"pfn": pfn})
        raise MemoryPoisonError(
            f"machine check: {fault.kind.value} frame {pfn:#x} consumed "
            f"at paddr {paddr:#x}",
            pfn=pfn,
            paddr=paddr,
            write=write,
        )

    @o1(note="one dict probe per block; faulting blocks retry bounded")
    def on_file_block(self, inode: "Inode", pfn: int, write: bool) -> None:
        """File-API hook: one block of a read/write touched ``pfn``.

        Transient errors are retried with bounded, clock-charged backoff
        (reads and writes alike).  Reads of poisoned or dead blocks
        surface :class:`MediaError` — EIO through the VFS, the paper-
        world's equivalent of ``read()`` returning -EIO.  A write to a
        sticky poisoned line clears it.
        """
        fault = self.model.probe(pfn)
        if fault is None:
            return
        if fault.kind is FaultKind.TRANSIENT:
            if self._retry_transient(pfn):
                return
        elif fault.kind is FaultKind.POISON and write:
            self.model.clear_poison(pfn)
            self._counters.bump("ras_poison_cleared")
            return
        self._counters.bump("ras_read_eio")
        raise MediaError(
            f"EIO: {fault.kind.value} media at block {pfn:#x} "
            f"(ino {inode.ino})",
            pfn=pfn,
        )

    @o1(note="retry budget is a small constant")
    def _retry_transient(self, pfn: int) -> bool:
        """Bounded retry-with-backoff on the simulated clock.

        Returns True once an attempt succeeds, False when the retry
        budget is exhausted.
        """
        attempt = 0
        # o1: allow(o1-size-loop, o1-charge-in-loop) -- bounded by _MAX_MEDIA_RETRIES
        while attempt < self._MAX_MEDIA_RETRIES:
            if not self.model.transient_fails(pfn, attempt):
                return True
            # Linear backoff, charged where the waiting happens.
            self._clock.advance(self._costs.ras_backoff_ns * (attempt + 1))
            self._counters.bump("ras_io_retry")
            attempt += 1
        return not self.model.transient_fails(pfn, attempt)

    # ------------------------------------------------------------------
    # Degradation policy — called by the kernel on a poison trap
    # ------------------------------------------------------------------
    @o1(note="policy dispatch; the repair itself charges its own paths")
    def handle_poison(
        self, process: "Process", vaddr: int, write: bool, exc: MemoryPoisonError
    ) -> bool:
        """Degrade gracefully after a poison trap.

        Returns True when the access can be retried (file-backed data
        was migrated off the failing media); False after SIGBUS-killing
        the faulting process (anonymous/private memory has no other
        copy).
        """
        pfn = exc.pfn
        pmfs = self._kernel.pmfs
        vma = process.space.find_vma(vaddr)
        if vma is not None and pmfs is not None and pfn is not None:
            backing_fs = getattr(vma.backing, "_fs", None)
            backing_inode = getattr(vma.backing, "_inode", None)
            is_private_copy = pfn in set(vma.private_copies.values())
            if (
                backing_fs is pmfs
                and backing_inode is not None
                and not is_private_copy
            ):
                # File-backed NVM: the file system owns a durable home
                # for the data — migrate it off the failing media, then
                # let the caller re-fault onto the fresh frame.
                # o1: allow(flow-bounded) -- media repair is the rare slow path, not the retried access
                if self.retire_frame(pfn):
                    return True
        return self._sigbus(process, pfn)

    @o1(note="fatal path: the kill tears down at most one process")
    def _sigbus(self, process: "Process", pfn: Optional[int]) -> bool:
        """Kill only the faulting process; quarantine its bad frame."""
        self._counters.bump("ras_sigbus_kill")
        tracer = self._kernel.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "ras_sigbus", "ras", pid=process.pid, args={"pfn": pfn}
            )
        if process.alive:
            # o1: allow(flow-bounded) -- one-time teardown of the killed process's mappings
            process.exit()
        self._kernel.processes.pop(process.pid, None)
        if pfn is not None:
            # The exit released the process's frames; the bad one must
            # never be handed out again.  A frame still shared with
            # another live process stays busy — the patrol scrubber
            # retires it once the last user exits.
            # o1: allow(flow-bounded) -- media repair slow path after a fatal kill
            self.retire_frame(pfn)
        return False

    # ------------------------------------------------------------------
    # Patrol scrubbing — called per frame by the PatrolScrubber
    # ------------------------------------------------------------------
    @o1(note="one probe; clearing/retirement charge their own paths")
    def scrub_frame(self, pfn: int) -> None:
        """Patrol-probe one frame: clear correctable poison, retire dead.

        Transient faults are tolerated (the demand path's bounded retry
        handles them); sticky poison is corrected in place by a patrol
        write-back; permanently dead frames are retired.  A busy DRAM
        frame that cannot be retired yet is skipped and counted — the
        wrapping cursor revisits it on a later pass.
        """
        self._clock.advance(self._costs.ras_probe_ns)
        self._counters.bump("ras_scrub_frame")
        fault = self.model.probe(pfn)
        if fault is None or fault.kind is FaultKind.TRANSIENT:
            return
        if fault.kind is FaultKind.POISON:
            self._clock.advance(
                self._costs.nvm_write_ns
                if not self._in_dram(pfn)
                else self._costs.dram_write_ns
            )
            self.model.clear_poison(pfn)
            self._counters.bump("ras_poison_cleared")
            return
        # o1: allow(flow-bounded) -- retirement is the rare repair path; probes stay O(1)
        if not self.retire_frame(pfn):
            self._counters.bump("ras_scrub_busy")

    # ------------------------------------------------------------------
    # Retirement — frames leave service permanently
    # ------------------------------------------------------------------
    @complexity(
        "n", note="NVM repair may migrate one block and sweep the file's mappings"
    )
    def retire_frame(self, pfn: int) -> bool:
        """Retire one frame; False when it must wait (busy DRAM frame)."""
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None:
            chaos.hit("ras.retire.frame")
        if self._in_dram(pfn):
            done = self._retire_dram(pfn)
        else:
            done = self._retire_nvm(pfn)
        if done:
            self._clock.advance(self._costs.ras_retire_ns)
            self._counters.bump("ras_frame_retired")
            self.model.retire(pfn)
            tracer = self._kernel.tracer
            if tracer is not None and tracer.enabled:
                tracer.instant("ras_frame_retired", "ras", args={"pfn": pfn})
        return done

    def _in_dram(self, pfn: int) -> bool:
        region = self._kernel.dram_region
        return region.first_pfn <= pfn < region.first_pfn + region.frame_count

    @complexity("log n", note="one buddy retirement plus one record append")
    def _retire_dram(self, pfn: int) -> bool:
        if not self._kernel.dram_buddy.retire(pfn):
            return False
        # o1: allow(flow-bounded) -- one 8-byte record append; path depth, not frame count
        self._persist_dram_badblock(pfn)
        return True

    @complexity("n", note="one fixed-width append through the file API")
    def _persist_dram_badblock(self, pfn: int) -> None:
        """Append one record to the DRAM badblock file.

        DRAM retirement state is otherwise volatile (the buddy's retired
        set dies with the power); the record is what lets a rebooted
        machine keep the frame out of service.  Torn appends leave an
        all-zero prefix chunk that the loader skips.
        """
        pmfs = self._kernel.pmfs
        if pmfs is None:
            return  # no durable home; retirement lasts until power-off
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None:
            chaos.hit("ras.badblock.persist")
        inode = self.dram_badblock_inode()
        record = (pfn + 1).to_bytes(_DRAM_RECORD_BYTES, "big")
        with pmfs.open_inode(inode) as handle:
            handle.pwrite(inode.size, record)
        self._counters.bump("ras_badblock_persisted")

    @complexity("n", note="arming-time sweep of the persisted record file")
    def _adopt_persisted_dram_badblocks(self) -> None:
        """Re-retire every persisted DRAM badblock into the buddy.

        Runs once at arming time.  Idempotent: frames the buddy already
        holds retired (same boot, or duplicate records from a crash
        between buddy retirement and record append) adopt as no-ops.
        """
        # o1: allow(o1-size-loop, o1-charge-in-loop) -- cold arming sweep, one visit per persisted record
        for pfn in sorted(self.dram_badblock_pfns()):
            if self._kernel.dram_buddy.retire(pfn):
                self._counters.bump("ras_dram_badblock_adopted")
            self.model.retire(pfn)

    @complexity("n", note="badblock adoption or one-block migration + mapping sweep")
    def _retire_nvm(self, pfn: int) -> bool:
        pmfs = self._kernel.pmfs
        if pmfs is None:
            return False
        badblocks = self.badblock_inode()
        if pmfs.allocator.block_is_free(pfn):
            chaos = getattr(self._counters, "chaos", None)
            if chaos is not None:
                chaos.hit("ras.badblock.persist")
            try:
                pmfs.adopt_badblock(badblocks, pfn)
            except NoSpaceError:
                return False
            san = getattr(self._counters, "sanitize", None)
            if san is not None:
                san.on_nvm_retired(pmfs.allocator, pfn, 1)
            return True
        owner = pmfs.owner_of_block(pfn)
        if owner is None:
            return False
        if owner.ino == badblocks.ino:
            return True  # already quarantined on the badblock list
        new_pfn = pmfs.migrate_block(owner, pfn, badblocks)
        self._invalidate_translations(owner, pfn, 1)
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_nvm_retired(pmfs.allocator, pfn, 1)
        self._counters.bump("ras_extent_migrated")
        tracer = self._kernel.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "ras_extent_migrated",
                "ras",
                args={"ino": owner.ino, "old_pfn": pfn, "new_pfn": new_pfn},
            )
        return True

    @complexity("n", note="repair path: per resident PTE of mappings of the file")
    def _invalidate_translations(
        self, inode: "Inode", first_pfn: int, count: int
    ) -> None:
        """Tear down every translation into the vacated frames.

        Migration moved the data; any PTE, TLB entry, premapped subtree
        or PBM window still translating to the old frames would read
        stale media.  Per-process PTE teardown plus one ranged TLB
        shootdown per affected VMA; the premap/PBM caches are dropped by
        the PMFS extent-invalidation callbacks at apply time.
        """
        end_pfn = first_pfn + count
        # o1: allow(o1-size-loop) -- process-table sweep; migration is the slow path
        for process in self._kernel.processes.values():
            space = process.space
            # o1: allow(o1-nested-size-loop) -- migration is the slow path
            for vma in space.vmas:
                if getattr(vma.backing, "_inode", None) is not inode:
                    continue
                dropped = False
                # o1: allow(o1-nested-size-loop) -- per-PTE teardown sweep
                for page_va, pte in list(space.page_table.iter_leaves()):
                    if not vma.start <= page_va < vma.end:
                        continue
                    pte_first = pte.paddr // PAGE_SIZE
                    pte_end = (pte.paddr + pte.page_size) // PAGE_SIZE
                    if pte_first < end_pfn and first_pfn < pte_end:
                        space.page_table.unmap(
                            page_va, page_size=pte.page_size
                        )
                        dropped = True
                if dropped:
                    self._kernel.cpu.invalidate_space_range(
                        vma.start, vma.length, asid=space.asid
                    )

    # ------------------------------------------------------------------
    # Badblock list — PMFS-persisted, journaled, survives crashes
    # ------------------------------------------------------------------
    @complexity("n", note="one path lookup (or first-time create) of the badblock file")
    def badblock_inode(self) -> "Inode":
        """The badblock list file, created on first retirement."""
        pmfs = self._kernel.pmfs
        assert pmfs is not None
        if pmfs.exists(BADBLOCK_PATH):
            return pmfs.lookup(BADBLOCK_PATH)
        inode = pmfs.create(BADBLOCK_PATH, size=0)
        inode.persistent = True
        return inode

    def badblock_pfns(self) -> frozenset:
        """Frames on the persisted badblock list (ground truth: PMFS)."""
        pmfs = self._kernel.pmfs
        if pmfs is None or not pmfs.exists(BADBLOCK_PATH):
            return frozenset()
        tree = pmfs._tree_of(pmfs.lookup(BADBLOCK_PATH))
        return frozenset(
            pfn
            for extent in tree.extents()
            for pfn in range(extent.pfn, extent.pfn + extent.count)
        )

    @complexity("n", note="one path lookup (or first-time create) of the record file")
    def dram_badblock_inode(self) -> "Inode":
        """The DRAM badblock record file, created on first retirement."""
        pmfs = self._kernel.pmfs
        assert pmfs is not None
        if pmfs.exists(DRAM_BADBLOCK_PATH):
            return pmfs.lookup(DRAM_BADBLOCK_PATH)
        inode = pmfs.create(DRAM_BADBLOCK_PATH, size=0)
        inode.persistent = True
        return inode

    @complexity("n", note="one visit per persisted record")
    def dram_badblock_pfns(self) -> frozenset:
        """DRAM frames on the persisted record list (ground truth: PMFS).

        All-zero chunks — the residue of an append torn by a power cut —
        are not records and are skipped.
        """
        pmfs = self._kernel.pmfs
        if pmfs is None or not pmfs.exists(DRAM_BADBLOCK_PATH):
            return frozenset()
        inode = pmfs.lookup(DRAM_BADBLOCK_PATH)
        with pmfs.open_inode(inode) as handle:
            raw = handle.pread(0, inode.size)
        pfns = set()
        # o1: allow(o1-size-loop) -- cold audit/recovery sweep over the record file
        for start in range(0, len(raw) - len(raw) % _DRAM_RECORD_BYTES, _DRAM_RECORD_BYTES):
            value = int.from_bytes(raw[start : start + _DRAM_RECORD_BYTES], "big")
            if value:
                pfns.add(value - 1)
        return frozenset(pfns)

    # ------------------------------------------------------------------
    # Oracle + report
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """RAS invariants; non-empty list = problems (the sweep oracle).

        Every permanently failed (DEAD) frame must end up retired, and
        every retired NVM frame must be on the persisted badblock list.
        """
        problems: List[str] = []
        for fault in self.model.faults():
            if fault.kind is FaultKind.DEAD:
                problems.append(
                    f"dead frame {fault.pfn:#x} is still in service"
                )
        persisted = self.badblock_pfns()
        persisted_dram = self.dram_badblock_pfns()
        has_pmfs = self._kernel.pmfs is not None
        for pfn in sorted(self.model.retired):
            if self._in_dram(pfn):
                if has_pmfs and pfn not in persisted_dram:
                    problems.append(
                        f"retired DRAM frame {pfn:#x} missing from the "
                        f"persisted DRAM badblock records"
                    )
            elif pfn not in persisted:
                problems.append(
                    f"retired NVM frame {pfn:#x} missing from the "
                    f"persisted badblock list"
                )
        return problems

    def report(self) -> dict:
        """Machine-readable state for the CLI's ``--json``."""
        return {
            "seed": self.model.seed,
            "active_faults": [
                {
                    "pfn": fault.pfn,
                    "kind": fault.kind.value,
                    "fail_count": fault.fail_count,
                }
                for fault in self.model.faults()
            ],
            "retired": sorted(self.model.retired),
            "badblock_pfns": sorted(self.badblock_pfns()),
            "dram_badblock_pfns": sorted(self.dram_badblock_pfns()),
            "problems": self.audit(),
        }
