"""Patrol scrubber: background media scrubbing in bounded batches.

Real memory controllers patrol-scrub: a slow background walk that reads
every line, corrects correctable errors, and flags uncorrectable ones
before a demand access consumes them.  This scrubber does the simulated
equivalent — each :meth:`PatrolScrubber.scrub_batch` probes a *bounded*
batch of frames (O(1) per invocation, however large the machine) from a
wrapping cursor over the registered DRAM + NVM spans:

* sticky poisoned lines are corrected in place (a patrol write-back);
* permanently dead frames are retired through the engine (allocator
  removal, badblock persistence, live-data migration);
* busy DRAM frames that cannot be retired yet are skipped and counted —
  the cursor wraps, so a later pass catches them once they free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, Tuple

from repro.lint import complexity, o1

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ras.engine import RasEngine


class PatrolScrubber:
    """Cursor-based patrol over every registered physical span."""

    def __init__(self, engine: "RasEngine", batch_frames: int = 64) -> None:
        if batch_frames <= 0:
            raise ValueError(f"batch_frames must be positive, got {batch_frames}")
        self._engine = engine
        self.batch_frames = batch_frames
        self._cursor = 0

    @property
    def total_frames(self) -> int:
        """Frames covered by one full patrol pass."""
        return sum(count for _first, count in self._engine.model.spans())

    @property
    def cursor(self) -> int:
        """Current patrol position (frame index into the span walk)."""
        return self._cursor

    @o1(note="bounded batch, independent of machine size")
    def scrub_batch(self) -> int:
        """Probe one batch of frames; returns how many were probed."""
        spans = self._engine.model.spans()
        # o1: allow(o1-size-loop) -- spans are the two fixed memory regions
        total = sum(count for _first, count in spans)
        if total == 0:
            return 0
        chaos = getattr(self._engine._counters, "chaos", None)
        if chaos is not None:
            chaos.hit("ras.scrub.batch")
        probed = min(self.batch_frames, total)
        # o1: allow(o1-size-loop) -- bounded patrol batch
        for _ in range(probed):
            pfn = self._pfn_at(spans, self._cursor)
            self._cursor = (self._cursor + 1) % total
            self._engine.scrub_frame(pfn)
        return probed

    @complexity("n", note="maintenance sweep: one full pass over all frames")
    def scrub_full(self) -> int:
        """One complete patrol pass (ceil(total/batch) batches)."""
        total = self.total_frames
        if total == 0:
            return 0
        probed = 0
        batches = -(-total // self.batch_frames)
        for _ in range(batches):
            probed += self.scrub_batch()
        return probed

    @staticmethod
    def _pfn_at(spans: Sequence[Tuple[int, int]], index: int) -> int:
        """Frame at patrol position ``index`` across the spans."""
        # o1: allow(o1-size-loop) -- two spans (DRAM + NVM), not data-sized
        for first, count in spans:
            if index < count:
                return first + index
            index -= count
        raise IndexError(f"patrol index {index} beyond registered spans")
