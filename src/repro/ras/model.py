"""Deterministic NVM media-fault model.

Persistent memory wears out: cells develop *transient* read/write
errors (a bounded number of retries succeeds), *sticky poisoned* lines
(reads trap until the line is overwritten), and *permanently dead*
frames (every access fails until the frame is retired).  The model is
seeded and sampled once at bind time, so a given ``(seed, machine)``
pair always produces the same fault population — the same discipline
as the chaos engine's :class:`~repro.chaos.plan.FaultPlan`.

The model itself is pure bookkeeping: a dict keyed by pfn.  Probing a
frame is one dictionary lookup; unarmed machines never construct a
model at all.  Policy (traps, retries, retirement) lives in
:class:`~repro.ras.engine.RasEngine`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lint import o1


class FaultKind(enum.Enum):
    """How a frame fails."""

    #: Reads/writes fail ``fail_count`` times, then succeed (retry wins).
    TRANSIENT = "transient"
    #: Sticky poisoned line: reads trap until the line is overwritten.
    POISON = "poison"
    #: Permanently failed frame: every access fails; must be retired.
    DEAD = "dead"


@dataclass(frozen=True)
class MediaFault:
    """One failing frame."""

    pfn: int
    kind: FaultKind
    #: For TRANSIENT faults: how many attempts fail before one succeeds.
    fail_count: int = 1


#: Sampled kinds cycle through this tuple so every bind with
#: ``faults_per_bind >= 3`` exercises all three failure modes.
_KIND_CYCLE = (FaultKind.DEAD, FaultKind.POISON, FaultKind.TRANSIENT)


class MediaFaultModel:
    """Seeded population of failing NVM frames.

    ``bind_nvm`` samples ``faults_per_bind`` distinct frames from the
    region (media faults live in the persistent tier; DRAM spans are
    registered for patrol coverage but sampled clean — tests use
    :meth:`inject` to poison specific DRAM frames).
    """

    def __init__(self, seed: int = 0, faults_per_bind: int = 6) -> None:
        self.seed = seed
        self.faults_per_bind = faults_per_bind
        self._rng = random.Random(seed)
        self._faults: Dict[int, MediaFault] = {}
        self._retired: Set[int] = set()
        self._spans: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Binding — sample the fault population once, deterministically
    # ------------------------------------------------------------------
    def bind_nvm(self, first_pfn: int, frame_count: int) -> None:
        """Register an NVM span and sample its fault population."""
        self._spans.append((first_pfn, frame_count))
        count = min(self.faults_per_bind, frame_count)
        pfns = self._rng.sample(range(first_pfn, first_pfn + frame_count), count)
        for index, pfn in enumerate(sorted(pfns)):
            kind = _KIND_CYCLE[index % len(_KIND_CYCLE)]
            fail_count = self._rng.randint(1, 2)
            self._faults[pfn] = MediaFault(pfn=pfn, kind=kind, fail_count=fail_count)

    def bind_dram(self, first_pfn: int, frame_count: int) -> None:
        """Register a DRAM span for patrol coverage (sampled clean)."""
        self._spans.append((first_pfn, frame_count))

    def spans(self) -> Tuple[Tuple[int, int], ...]:
        """Registered ``(first_pfn, frame_count)`` spans, bind order."""
        return tuple(self._spans)

    # ------------------------------------------------------------------
    # Probing — the armed-path lookups, one dict access each
    # ------------------------------------------------------------------
    @o1(note="one dict lookup")
    def probe(self, pfn: int) -> Optional[MediaFault]:
        """The active fault on ``pfn``, or None (clean or retired)."""
        if pfn in self._retired:
            return None
        return self._faults.get(pfn)

    @o1(note="one dict lookup")
    def transient_fails(self, pfn: int, attempt: int) -> bool:
        """Whether the ``attempt``-th try (0-based) on ``pfn`` fails."""
        fault = self.probe(pfn)
        if fault is None or fault.kind is not FaultKind.TRANSIENT:
            return False
        return attempt < fault.fail_count

    # ------------------------------------------------------------------
    # Mutation — injection (tests), poison clearing, retirement
    # ------------------------------------------------------------------
    def inject(self, pfn: int, kind: FaultKind, fail_count: int = 1) -> MediaFault:
        """Plant a fault on a specific frame (targeted tests)."""
        fault = MediaFault(pfn=pfn, kind=kind, fail_count=fail_count)
        self._faults[pfn] = fault
        self._retired.discard(pfn)
        return fault

    @o1(note="two dict ops")
    def clear_poison(self, pfn: int) -> bool:
        """Overwrite cleared a sticky poisoned line; True if it was one."""
        fault = self._faults.get(pfn)
        if fault is None or fault.kind is not FaultKind.POISON:
            return False
        del self._faults[pfn]
        return True

    @o1(note="one set insert")
    def retire(self, pfn: int) -> None:
        """Mark ``pfn`` retired: it no longer reports faults (or anything)."""
        self._retired.add(pfn)

    @property
    def retired(self) -> frozenset:
        """Frames retired so far."""
        return frozenset(self._retired)

    def faults(self) -> Tuple[MediaFault, ...]:
        """Active (un-retired) faults, sorted by pfn."""
        return tuple(
            self._faults[pfn]
            for pfn in sorted(self._faults)
            if pfn not in self._retired
        )

    def describe(self) -> str:
        """One line per active fault, for reports and failures."""
        lines = [
            f"pfn {fault.pfn:#x} {fault.kind.value}"
            + (f" (fails {fault.fail_count}x)" if fault.kind is FaultKind.TRANSIENT else "")
            for fault in self.faults()
        ]
        return "\n".join(lines) if lines else "no active media faults"
