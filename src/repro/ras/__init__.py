"""RAS: reliability, availability, serviceability for the simulated machine.

Armed via ``kernel.arm_ras()`` under the same back-reference pattern as
the chaos engine and the sanitizers: unarmed machines pay one
``getattr`` per hook site and produce bit-identical figures.

* :class:`MediaFaultModel` — seeded, deterministic NVM fault population
  (transient, sticky-poison, dead frames).
* :class:`RasEngine` — poison traps, graceful degradation (SIGBUS one
  process / EIO / bounded retry), frame retirement, journaled badblock
  persistence, live-extent migration.
* :class:`PatrolScrubber` — bounded-batch background patrol that clears
  correctable poison and proactively retires failing frames.
"""

from repro.ras.engine import BADBLOCK_PATH, DRAM_BADBLOCK_PATH, RasEngine
from repro.ras.model import FaultKind, MediaFault, MediaFaultModel
from repro.ras.scrub import PatrolScrubber

__all__ = [
    "BADBLOCK_PATH",
    "DRAM_BADBLOCK_PATH",
    "FaultKind",
    "MediaFault",
    "MediaFaultModel",
    "PatrolScrubber",
    "RasEngine",
]
