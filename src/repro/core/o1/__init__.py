"""O(1) supporting policies: erase, pre-created page tables, extents.

The paper's principle — "low constant time independent of size ... in many
cases this can be accomplished by trading space, in the form of some
wasted memory, for time spent managing memory" — needs three recurring
mechanisms, collected here:

* :mod:`repro.core.o1.zeroing` — constant-time erase of reused memory;
* :mod:`repro.core.o1.premap` — pre-created (optionally persistent) page
  tables so mapping a file is one pointer write;
* :mod:`repro.core.o1.policy` — the extent-size policy and its
  space-for-time ledger.
"""

from repro.core.o1.zeroing import (
    CryptoErase,
    EagerZeroing,
    PooledZeroing,
    ZeroingStrategy,
)
from repro.core.o1.premap import PageTableCache
from repro.core.o1.policy import ExtentPolicy, SpaceTimeLedger

__all__ = [
    "CryptoErase",
    "EagerZeroing",
    "ExtentPolicy",
    "PageTableCache",
    "PooledZeroing",
    "SpaceTimeLedger",
    "ZeroingStrategy",
]
