"""Pre-created (and persistent) page tables: O(1) file mapping.

Paper §3.1: "as files are stored in memory, it is possible to pre-create
page tables, so that mapping becomes changing a single pointer in a page
table to refer to existing page tables ... pre-created page tables can be
stored persistently, so that even when mapping a file the first time, an
existing page table can be re-used for O(1) operations."

:class:`PageTableCache` builds, per file, a set of page-table subtrees
covering its pages (built once, linear — the amortized investment), and
then *attaches* them to any address space with one pointer write per
2 MiB/1 GiB window.  For files up to 2 MiB that is exactly one write; for
larger files it is size/2 MiB writes — 512x fewer than per-page, and the
constant the paper trades space for.

The "natural granularities" constraint is honored: attach addresses must
be aligned to the subtree span, which the FOM address allocator provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError, OutOfMemoryError
from repro.fs.vfs import Inode
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.lint import complexity, o1
from repro.paging.pagetable import PageTable, PageTableNode
from repro.units import PAGE_SIZE
from repro.vm.addrspace import AddressSpace
from repro.vm.vma import MapFlags, Protection, Vma


@dataclass
class PremappedFile:
    """Cached translation subtrees for one file.

    ``windows`` lists (va_offset_in_file, subtree_node); the donor table
    owns the nodes and keeps them alive between attachments.
    """

    ino: int
    size: int
    writable: bool
    donor: PageTable
    windows: List[Tuple[int, PageTableNode]]
    persistent: bool = False
    attach_count: int = 0

    @property
    def window_span(self) -> int:
        """Bytes of VA covered per attach operation (alignment required)."""
        return 2 * 1024 * 1024  # bottom-level subtree span (2 MiB)


@dataclass
class Attachment:
    """One live attachment of a premapped file into an address space."""

    space: AddressSpace
    vaddr: int
    premap: PremappedFile
    vma: Vma


class PageTableCache:
    """Builds and attaches pre-created page-table subtrees for files."""

    def __init__(
        self,
        levels: int,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        self._levels = levels
        self._clock = clock
        self._costs = costs
        self._counters = counters
        #: (ino, writable) -> premapped subtrees.
        self._cache: Dict[Tuple[int, bool], PremappedFile] = {}

    # ------------------------------------------------------------------
    # Building (once per file — the amortized linear investment)
    # ------------------------------------------------------------------
    @complexity("n", note="per-page build, paid once per file and cached")
    def premap(self, inode: Inode, writable: bool = True) -> PremappedFile:
        """Build (or fetch) the subtree set covering ``inode``'s pages."""
        key = (inode.ino, writable)
        cached = self._cache.get(key)
        if cached is not None and cached.size >= inode.page_count * PAGE_SIZE:
            self._counters.bump("premap_cache_hit")
            return cached
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None and chaos.hit("premap.attach") == "error":
            raise OutOfMemoryError(
                f"chaos: no frames for premap subtree of ino={inode.ino}"
            )
        self._counters.bump("premap_build")
        donor = PageTable(
            levels=self._levels,
            clock=self._clock,
            costs=self._costs,
            counters=self._counters,
        )
        backing = inode.fs.backing_for(inode)
        npages = inode.page_count
        if npages == 0:
            raise MappingError(f"cannot premap empty file ino={inode.ino}")
        for page_index, pfn, run in backing.frame_runs(0, npages):
            # o1: allow(o1-nested-size-loop) -- the amortized build itself
            for page in range(run):
                donor.map(
                    (page_index + page) * PAGE_SIZE,
                    pfn + page,
                    writable=writable,
                )
        span = 2 * 1024 * 1024
        windows: List[Tuple[int, PageTableNode]] = []
        offset = 0
        size = npages * PAGE_SIZE
        while offset < size:
            node = donor.subtree_at(offset, self._levels - 1)
            if node is None:
                raise MappingError(
                    f"premap hole at offset {offset:#x} of ino={inode.ino}"
                )
            windows.append((offset, node))
            offset += span
        premapped = PremappedFile(
            ino=inode.ino,
            size=size,
            writable=writable,
            donor=donor,
            windows=windows,
        )
        self._cache[key] = premapped
        return premapped

    # ------------------------------------------------------------------
    # Attach / detach (the O(1) operations)
    # ------------------------------------------------------------------
    @o1(note="one pointer write per 2 MiB window, 512x coarser than pages")
    def attach(
        self,
        space: AddressSpace,
        inode: Inode,
        prot: Protection = Protection.rw(),
        vaddr: Optional[int] = None,
    ) -> Attachment:
        """Map ``inode`` into ``space`` by linking cached subtrees.

        Cost: one VMA insert plus one pointer write per 2 MiB window —
        independent of how many *pages* the file holds.
        """
        writable = bool(prot & Protection.WRITE)
        # o1: allow(flow-bounded) -- first-touch donor build; cached reattach is O(1)
        premapped = self.premap(inode, writable=writable)
        span = premapped.window_span
        if vaddr is None:
            vaddr = space.pick_address(max(premapped.size, span), alignment=span)
        elif vaddr % span:
            raise MappingError(
                f"attach address {vaddr:#x} not aligned to subtree span {span:#x}"
            )
        vma = space.mmap(
            length=premapped.size,
            prot=prot,
            flags=MapFlags.SHARED,
            backing=inode.fs.backing_for(inode),
            addr=vaddr,
            name=f"premap:ino{inode.ino}",
        )
        # o1: allow(o1-size-loop) -- one link per 2 MiB window, not per page
        for offset, node in premapped.windows:
            space.page_table.link_subtree(vaddr + offset, node)
        premapped.attach_count += 1
        self._counters.bump("premap_attach")
        return Attachment(space=space, vaddr=vaddr, premap=premapped, vma=vma)

    @o1(note="one pointer unlink per 2 MiB window")
    def detach(self, attachment: Attachment) -> None:
        """Unmap: unlink each window pointer and drop the VMA — O(windows)."""
        span = attachment.premap.window_span
        # o1: allow(o1-size-loop) -- one unlink per 2 MiB window
        for offset, _node in attachment.premap.windows:
            attachment.space.page_table.unlink_subtree(
                attachment.vaddr + offset, self._levels - 1
            )
        attachment.space.detach_vma(attachment.vma)
        attachment.premap.attach_count -= 1
        self._counters.bump("premap_detach")

    # ------------------------------------------------------------------
    # Persistence (paper: store pre-created tables persistently)
    # ------------------------------------------------------------------
    def persist(self, inode: Inode, writable: bool = True) -> None:
        """Mark a file's premapped tables as stored in NVM.

        They then survive :meth:`on_crash`, so the *first* map after a
        reboot is O(1) too.
        """
        key = (inode.ino, writable)
        if key not in self._cache:
            self.premap(inode, writable=writable)
        premapped = self._cache[key]
        if not inode.fs.persistent:
            raise MappingError(
                "persistent page tables need a persistent file system; "
                f"{inode.fs.name!r} is volatile"
            )
        premapped.persistent = True
        self._counters.bump("premap_persist")

    @complexity("n", note="one dropped donor per cached variant of the file")
    def invalidate(self, ino: int) -> int:
        """Drop cached subtrees for ``ino`` (the file is being deleted).

        The donor tables are cleared, not just dropped, so no cached
        translation can outlive the file's storage; windows still linked
        into live address spaces keep their own references and stay
        valid until those attachments detach.  Returns entries dropped.
        """
        dropped = 0
        doomed = [key for key in self._cache if key[0] == ino]
        for key in doomed:
            premapped = self._cache.pop(key)
            premapped.donor.clear()
            dropped += 1
        if dropped:
            self._counters.bump("premap_invalidate", dropped)
        return dropped

    def on_crash(self) -> int:
        """Drop non-persistent entries (DRAM page tables are gone).

        Returns the number of surviving (persistent) entries.
        """
        survivors = {
            key: value for key, value in self._cache.items() if value.persistent
        }
        dropped = len(self._cache) - len(survivors)
        self._cache = survivors
        if dropped:
            self._counters.bump("premap_crash_dropped", dropped)
        return len(survivors)

    @property
    def cached_files(self) -> int:
        """Entries currently cached."""
        return len(self._cache)
