"""Constant-time erase strategies for reused persistent memory.

Paper §3.1: "for security purposes memory must be zeroed out before being
reused ... This is currently a linear-time operation and suggests the need
for new techniques to efficiently erase memory in constant time."

Three strategies are implemented against a common interface so the erase
ablation (bench E9) can sweep them:

* :class:`EagerZeroing` — the baseline: zero at allocation time, linear in
  the allocation size, on the critical path.
* :class:`PooledZeroing` — keep a reserve of pre-zeroed frames filled by a
  background thread; foreground cost O(1) while the pool holds.
* :class:`CryptoErase` — encrypt each region under its own key and erase
  by destroying the key: truly O(1) foreground *and* total work,
  at the price of a per-key table and encryption hardware (modeled as a
  small constant per-access overhead, not charged here).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.errors import OutOfMemoryError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.lint import complexity, o1
from repro.mem.buddy import BuddyAllocator
from repro.mem.zeropool import ZeroPool
from repro.units import PAGE_SIZE


@complexity("log n", note="one buddy alloc; the retry cap is a small constant")
def _alloc_with_retry(
    buddy: BuddyAllocator,
    order: int,
    counters: Optional[EventCounters],
    attempts: int = 3,
) -> int:
    """Buddy allocation with bounded retry on transient exhaustion.

    Erase strategies sit on the allocation critical path, so an
    `OutOfMemoryError` there (reclaim racing the request, or an injected
    fault) is retried a bounded number of times before propagating.
    """
    last_error: Optional[Exception] = None
    # o1: allow(o1-size-loop, o1-charge-in-loop) -- attempts is a constant retry budget
    for attempt in range(attempts):
        if attempt and counters is not None:
            counters.bump("zero_alloc_retry")
        try:
            return buddy.alloc(order)
        except OutOfMemoryError as exc:
            last_error = exc
    assert last_error is not None
    raise last_error


class ZeroingStrategy(abc.ABC):
    """Hands out frames guaranteed to read as zero."""

    name: str = "abstract"

    @abc.abstractmethod
    def take_frames(self, count: int) -> List[int]:
        """Allocate ``count`` zero-guaranteed frames (foreground cost)."""

    @abc.abstractmethod
    def return_frames(self, pfns: List[int]) -> None:
        """Give frames back; they may hold secrets until re-zeroed."""

    @abc.abstractmethod
    def background_ns(self) -> int:
        """Total simulated ns of off-critical-path work so far."""


class EagerZeroing(ZeroingStrategy):
    """Baseline: allocate then zero inline — O(size) on the critical path."""

    name = "eager"

    def __init__(
        self,
        buddy: BuddyAllocator,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        self._buddy = buddy
        self._clock = clock
        self._costs = costs
        self._counters = counters

    @complexity("n", note="the linear baseline: zero every frame inline")
    def take_frames(self, count: int) -> List[int]:
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None:
            chaos.hit("zeroing.take")
        pfns = [
            # o1: allow(flow-bounded) -- order-0 allocs hit the exact free list; the log tail is the split chain
            _alloc_with_retry(self._buddy, 0, self._counters)
            for _ in range(count)
        ]
        self._clock.advance(self._costs.zero_page_ns(PAGE_SIZE) * count)
        self._counters.bump("zero_eager_pages", count)
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_frames_zeroed(pfns)
        return pfns

    @complexity("n", note="per-frame buddy frees")
    def return_frames(self, pfns: List[int]) -> None:
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            # Returned frames hold whatever the caller wrote: dirty.
            san.on_frames_tainted(pfns)
        for pfn in pfns:
            self._buddy.free(pfn)

    def background_ns(self) -> int:
        return 0


class PooledZeroing(ZeroingStrategy):
    """Pre-zeroed pool: O(1) foreground while the reserve holds."""

    name = "pooled"

    def __init__(self, pool: ZeroPool) -> None:
        self._pool = pool

    @complexity("n", note="O(1) per frame while the pool holds")
    def take_frames(self, count: int) -> List[int]:
        return [self._pool.take() for _ in range(count)]

    @complexity("n", note="per-frame pool returns")
    def return_frames(self, pfns: List[int]) -> None:
        for pfn in pfns:
            self._pool.give_back(pfn)

    def replenish(self) -> int:
        """Run the background zeroer (between requests)."""
        return self._pool.refill()

    def background_ns(self) -> int:
        return self._pool.ledger()["background_zero_ns"]


class CryptoErase(ZeroingStrategy):
    """Key-destruction erase: O(1) regardless of region size.

    Each handed-out batch of frames is notionally encrypted under a fresh
    key; returning the batch destroys the key, making the old contents
    unrecoverable without touching a single byte.  Foreground costs are a
    key allocation/destruction constant.  The memory controller's
    per-access AES latency is assumed hidden in the pipeline (as in
    hardware proposals for memory encryption), so no per-access charge.
    """

    name = "crypto"

    #: Key-table update: generate/install or revoke one key.
    KEY_OP_NS = 120

    def __init__(
        self,
        buddy: BuddyAllocator,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        self._buddy = buddy
        self._clock = clock
        self._costs = costs
        self._counters = counters
        #: first pfn of each live batch -> its key id (simulated).
        self._keys: Dict[int, int] = {}
        self._next_key = 1

    @complexity("n", note="key install is O(1); allocation stays per-frame")
    def take_frames(self, count: int) -> List[int]:
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None:
            chaos.hit("zeroing.take")
        pfns = [
            # o1: allow(flow-bounded) -- order-0 allocs hit the exact free list; the log tail is the split chain
            _alloc_with_retry(self._buddy, 0, self._counters)
            for _ in range(count)
        ]
        self._clock.advance(self.KEY_OP_NS)
        self._counters.bump("crypto_key_create")
        if pfns:
            self._keys[pfns[0]] = self._next_key
            self._next_key += 1
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            # A fresh key makes the batch read as zeros (fresh ciphertext).
            san.on_frames_zeroed(pfns)
        return pfns

    @o1(note="one key destroy + one batched region free")
    def return_frames(self, pfns: List[int]) -> None:
        if not pfns:
            return
        self._keys.pop(pfns[0], None)
        self._clock.advance(self.KEY_OP_NS)
        self._counters.bump("crypto_key_destroy")
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            # Key gone: old contents are unrecoverable garbage, not zeros.
            san.on_frames_tainted(pfns)
        self._buddy.free_many(pfns)

    @property
    def live_keys(self) -> int:
        """Keys currently installed (the space cost of this strategy)."""
        return len(self._keys)

    def background_ns(self) -> int:
        return 0
