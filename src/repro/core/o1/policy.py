"""Extent-size policy and the space-for-time ledger.

The paper's opening example: "with ample memory it may be more efficient
to allocate a large page (e.g., 2MB) when only hundreds of kilobytes are
needed to improve TLB performance.  No current system would choose this,
though, because of the wasted space."  :class:`ExtentPolicy` is the
component that *does* choose this, and :class:`SpaceTimeLedger` keeps the
books on what the choice wastes — because an O(1) claim without a space
bill is not a trade, it's an overdraft.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.lint import o1
from repro.units import HUGE_PAGE_1G, HUGE_PAGE_2M, PAGE_SIZE, align_up


@dataclass
class SpaceTimeLedger:
    """Running account of memory wasted to buy constant-time operations."""

    requested_bytes: int = 0
    allocated_bytes: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)

    def record(self, requested: int, allocated: int, reason: str) -> None:
        """Account one allocation decision."""
        if allocated < requested:
            raise ValueError(
                f"allocated {allocated} < requested {requested} ({reason})"
            )
        self.requested_bytes += requested
        self.allocated_bytes += allocated
        waste = allocated - requested
        if waste:
            self.by_reason[reason] = self.by_reason.get(reason, 0) + waste

    @property
    def wasted_bytes(self) -> int:
        """Total bytes allocated beyond what was asked for."""
        return self.allocated_bytes - self.requested_bytes

    @property
    def overhead_ratio(self) -> float:
        """allocated/requested; 1.0 means no waste."""
        if self.requested_bytes == 0:
            return 1.0
        return self.allocated_bytes / self.requested_bytes


class ExtentPolicy:
    """Chooses allocation sizes and alignments for O(1) behaviour.

    Parameters
    ----------
    min_extent_bytes:
        Smallest extent handed out; small requests are rounded up to this
        (slab-style size classes above it).
    align_to_page_structures:
        Round extents up to — and align them on — the 2 MiB page-table
        granularity so mappings can use huge pages and linked subtrees.
    max_waste_ratio:
        Refuse choices that would allocate more than this multiple of the
        request (safety valve when memory is *not* ample).
    """

    def __init__(
        self,
        min_extent_bytes: int = HUGE_PAGE_2M,
        align_to_page_structures: bool = True,
        max_waste_ratio: float = 512.0,
    ) -> None:
        if min_extent_bytes < PAGE_SIZE:
            raise ValueError(
                f"min_extent_bytes must be >= {PAGE_SIZE}, got {min_extent_bytes}"
            )
        if max_waste_ratio < 1.0:
            raise ValueError("max_waste_ratio must be >= 1.0")
        self.min_extent_bytes = min_extent_bytes
        self.align_to_page_structures = align_to_page_structures
        self.max_waste_ratio = max_waste_ratio
        self.ledger = SpaceTimeLedger()

    @o1(note="pure arithmetic rounding")
    def extent_bytes_for(self, requested: int) -> int:
        """Bytes to actually allocate for a request of ``requested``.

        Policy: round up to the base page always; then to the minimum
        extent; then to a 2 MiB multiple (if aligning to page-table
        structures); then to a 1 GiB multiple once requests reach 1 GiB.
        Falls back toward the raw page-rounded size if the waste cap
        would be exceeded.
        """
        if requested <= 0:
            raise ValueError(f"requested must be positive, got {requested}")
        page_rounded = align_up(requested, PAGE_SIZE)
        chosen = max(page_rounded, self.min_extent_bytes)
        if self.align_to_page_structures:
            granule = HUGE_PAGE_1G if chosen >= HUGE_PAGE_1G else HUGE_PAGE_2M
            chosen = align_up(chosen, granule)
        if chosen > page_rounded * self.max_waste_ratio:
            chosen = page_rounded
        self.ledger.record(page_rounded, chosen, reason="extent_rounding")
        return chosen

    @o1(note="pure arithmetic")
    def alignment_frames_for(self, extent_bytes: int) -> int:
        """Physical alignment (in 4 KiB frames) the extent should get."""
        if not self.align_to_page_structures:
            return 1
        if extent_bytes % HUGE_PAGE_1G == 0:
            return HUGE_PAGE_1G // PAGE_SIZE
        if extent_bytes % HUGE_PAGE_2M == 0:
            return HUGE_PAGE_2M // PAGE_SIZE
        return 1
