"""Physically based mappings (paper §4.2, Figure 8).

Virtual addresses are generated algorithmically — here, VA = PA + a fixed
global offset — so a mapped object lands at the *same* virtual address in
every process.  That guarantee is what makes page-table sharing tractable:
"Two processes with the same accesses to memory, such as a mapped file,
can point to the same sub-tree of a page table as they are guaranteed to
map it at the same location."

:mod:`share` builds and caches the shared subtrees (one set per extent and
permission — the paper's "two sets of page tables to allow different
permissions"); :mod:`mapping` is the manager processes call.
"""

from repro.core.pbm.share import SharedSubtrees
from repro.core.pbm.mapping import PbmManager, PbmMapping

__all__ = ["PbmManager", "PbmMapping", "SharedSubtrees"]
