"""The PBM manager: algorithmic addresses + cross-process table sharing.

``va = PBM_BASE + pa``: one global offset applied to an extent's physical
address yields its virtual address, identical in every process (paper
§4.2).  Mapping a file under PBM therefore:

1. computes each extent's fixed VA (no address-space search);
2. links the extent's *shared* page-table subtree when alignment allows —
   PTEs written once machine-wide, one pointer write per 2 MiB window per
   process;
3. falls back to private per-page mapping for unshareable extents, so the
   benefit degrades gracefully rather than failing.

Collision-freedom is inherited from physical memory: distinct extents
occupy distinct physical ranges, hence distinct VAs — property-tested in
tests/test_core_pbm.py.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.pbm.share import SharedSubtrees
from repro.errors import MappingError
from repro.fs.vfs import Inode
from repro.lint import complexity, o1
from repro.units import PAGE_SIZE
from repro.vm.addrspace import AddressSpace
from repro.vm.vma import MapFlags, Protection, Vma

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process

#: Default base of the PBM window, below the regular mmap area.
PBM_BASE = 0x6000_0000_0000


@dataclass
class _Segment:
    """One extent's mapping inside a PbmMapping."""

    vaddr: int
    length: int
    vma: Vma
    #: (window_va, depth) links to unlink on teardown; empty if the
    #: segment was mapped per-page privately.
    linked_windows: List[int] = field(default_factory=list)
    mapped_pages: int = 0


@dataclass
class PbmMapping:
    """A file mapped via physically based mappings."""

    space: AddressSpace
    inode_ino: int
    segments: List[_Segment]

    @property
    def vaddr(self) -> int:
        """VA of the first segment (the whole file for single-extent files)."""
        return self.segments[0].vaddr

    @property
    def total_length(self) -> int:
        """Bytes mapped across all segments."""
        return sum(segment.length for segment in self.segments)

    @property
    def shared_window_count(self) -> int:
        """Pointer-write links used instead of per-page PTEs."""
        return sum(len(segment.linked_windows) for segment in self.segments)


class PbmManager:
    """Maps files at physically-derived addresses with shared subtrees."""

    def __init__(self, kernel: "Kernel", pbm_base: int = PBM_BASE) -> None:
        if pbm_base % PAGE_SIZE:
            raise MappingError(f"pbm_base {pbm_base:#x} must be page-aligned")
        self._kernel = kernel
        self._pbm_base = pbm_base
        self._subtrees = SharedSubtrees(
            kernel.config.page_table_levels,
            kernel.clock,
            kernel.costs,
            kernel.counters,
        )
        pmfs = getattr(kernel, "pmfs", None)
        if pmfs is not None:
            # When PMFS frees or migrates an extent, cached shared
            # subtrees keyed on it must not survive to translate into
            # recycled (or retired) storage.
            pmfs.register_extent_invalidator(
                lambda _ino, pfn, count: self._subtrees.invalidate_extent(pfn, count)
            )

    @property
    def subtrees(self) -> SharedSubtrees:
        """The machine-wide shared-subtree cache."""
        return self._subtrees

    @o1(note="pure arithmetic — the point of physically based mapping")
    def va_of(self, paddr: int) -> int:
        """The algorithmic virtual address for a physical address."""
        return self._pbm_base + paddr

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    @complexity(
        "n", note="one link per 2 MiB window per extent; per-page only on "
        "the unshareable fallback"
    )
    def map_file(
        self,
        process: "Process",
        inode: Inode,
        prot: Protection = Protection.rw(),
    ) -> PbmMapping:
        """Map ``inode`` at its physically based addresses.

        Guaranteed: every process mapping this file gets identical VAs.
        """
        space = process.space
        npages = inode.page_count
        if npages == 0:
            raise MappingError(f"cannot PBM-map empty file ino={inode.ino}")
        writable = bool(prot & Protection.WRITE)
        backing = inode.fs.backing_for(inode)
        segments: List[_Segment] = []
        for page_index, pfn, run in backing.frame_runs(0, npages):
            vaddr = self.va_of(pfn * PAGE_SIZE)
            length = run * PAGE_SIZE
            vma = space.mmap(
                length=length,
                prot=prot,
                flags=MapFlags.SHARED,
                backing=inode.fs.backing_for(inode),
                addr=vaddr,
                backing_offset=page_index,
                name=f"pbm:ino{inode.ino}",
            )
            segment = _Segment(vaddr=vaddr, length=length, vma=vma)
            san = getattr(self._kernel.counters, "sanitize", None)
            if san is not None:
                san.on_pbm_claim(inode.ino, pfn, run)
            # o1: allow(flow-bounded) -- the extents partition the declared n windows
            windows = self._subtrees.windows_for_extent(vaddr, pfn, run, writable)
            if windows is not None:
                # o1: allow(o1-nested-size-loop) -- per 2 MiB window
                for window_va, node in windows:
                    space.page_table.link_subtree(window_va, node)
                    segment.linked_windows.append(window_va)
                self._kernel.counters.bump("pbm_shared_link", len(windows))
            else:
                # Unshareable extent: private per-page mapping (the
                # graceful-degradation path).
                # o1: allow(o1-nested-size-loop) -- degradation by design
                for page in range(run):
                    space.page_table.map(
                        vaddr + page * PAGE_SIZE, pfn + page, writable=writable
                    )
                segment.mapped_pages = run
                self._kernel.counters.bump("pbm_private_pages", run)
            segments.append(segment)
        return PbmMapping(space=space, inode_ino=inode.ino, segments=segments)

    @complexity("n", note="per window per extent; per page on the fallback")
    def unmap(self, mapping: PbmMapping) -> None:
        """Tear down: unlink shared windows (O(windows)), drop VMAs."""
        levels = self._kernel.config.page_table_levels
        san = getattr(self._kernel.counters, "sanitize", None)
        for segment in mapping.segments:
            if san is not None:
                san.on_pbm_release(
                    mapping.inode_ino,
                    (segment.vaddr - self._pbm_base) // PAGE_SIZE,
                    segment.length // PAGE_SIZE,
                )
            # o1: allow(o1-nested-size-loop) -- per 2 MiB window
            for window_va in segment.linked_windows:
                mapping.space.page_table.unlink_subtree(window_va, levels - 1)
            if segment.mapped_pages:
                # o1: allow(o1-nested-size-loop) -- degradation by design
                for page in range(segment.mapped_pages):
                    mapping.space.page_table.unmap(segment.vaddr + page * PAGE_SIZE)
            mapping.space.detach_vma(segment.vma)
        self._kernel.counters.bump("pbm_unmap")
