"""Shared page-table subtrees for physically based mappings.

A bottom-level page-table node covers a 2 MiB-aligned window of virtual
addresses.  Under PBM the virtual window of an extent is fixed by its
physical address, so the node's *contents* are identical for every process
mapping that extent with the same permissions — build it once, link it
everywhere.  This module owns the build-once cache; PTE-writing costs are
paid on first build and amortize across processes (the sharing win bench
E3 measures).

Extents whose physical base is not 2 MiB-aligned cannot share whole
windows (their first/last windows would mix neighbouring memory); callers
fall back to private per-page mapping for those.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.paging.pagetable import PageTable, PageTableNode
from repro.units import HUGE_PAGE_2M, PAGE_SIZE


class SharedSubtrees:
    """Cache of built subtrees keyed by (first_pfn, count, writable)."""

    def __init__(
        self,
        levels: int,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        self._levels = levels
        self._clock = clock
        self._costs = costs
        self._counters = counters
        #: Donor tables own the nodes; keep them alive with the cache.
        self._donors: Dict[Tuple[int, int, bool], PageTable] = {}
        self._windows: Dict[
            Tuple[int, int, bool], List[Tuple[int, PageTableNode]]
        ] = {}

    @property
    def window_span(self) -> int:
        """VA bytes one shared node covers."""
        return HUGE_PAGE_2M

    def shareable(self, va_base: int, pfn: int, count: int) -> bool:
        """True if the extent can be shared as whole windows.

        Needs the mapped VA range to start and end on window boundaries;
        under PBM that reduces to physical alignment of the extent.
        """
        length = count * PAGE_SIZE
        return (
            va_base % self.window_span == 0 and length % self.window_span == 0
        )

    def windows_for_extent(
        self,
        va_base: int,
        pfn: int,
        count: int,
        writable: bool,
    ) -> Optional[List[Tuple[int, PageTableNode]]]:
        """(window_va, node) pairs covering the extent, or None if the
        extent cannot be shared.

        First call for a given (extent, permission) builds the subtree —
        linear in extent pages, charged once.  Subsequent calls (other
        processes, remaps) hit the cache.
        """
        if not self.shareable(va_base, pfn, count):
            return None
        key = (pfn, count, writable)
        cached = self._windows.get(key)
        if cached is not None:
            self._counters.bump("pbm_subtree_hit")
            return cached
        self._counters.bump("pbm_subtree_build")
        donor = PageTable(
            levels=self._levels,
            clock=self._clock,
            costs=self._costs,
            counters=self._counters,
        )
        for page in range(count):
            donor.map(va_base + page * PAGE_SIZE, pfn + page, writable=writable)
        windows: List[Tuple[int, PageTableNode]] = []
        offset = 0
        length = count * PAGE_SIZE
        while offset < length:
            node = donor.subtree_at(va_base + offset, self._levels - 1)
            assert node is not None, "donor build left a hole"
            windows.append((va_base + offset, node))
            offset += self.window_span
        self._donors[key] = donor
        self._windows[key] = windows
        return windows

    @property
    def cached_extents(self) -> int:
        """Distinct (extent, permission) subtree sets held."""
        return len(self._windows)

    def invalidate_extent(self, pfn: int, count: int) -> None:
        """Drop cached subtrees for an extent (file deleted/reallocated).

        Tearing the donor down (not just forgetting it) matters: its
        PTEs are live translations into the extent, and the frames are
        about to be reallocatable.  ``clear`` detaches rather than
        recursing into nodes still linked by a process, so a mapping
        that outlives the file keeps its own (soon-dangling, and
        sanitizer-visible) subtree.
        """
        for writable in (False, True):
            self._windows.pop((pfn, count, writable), None)
            donor = self._donors.pop((pfn, count, writable), None)
            if donor is not None:
                donor.clear()
