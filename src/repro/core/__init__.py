"""The paper's contribution: O(1) memory-management designs.

Four subpackages, each a design from the paper:

* :mod:`repro.core.fom` — **file-only memory** (§3.1/§4.1): all user
  memory allocated as files in a memory file system, managed at
  whole-file/extent granularity;
* :mod:`repro.core.pbm` — **physically based mappings** (§4.2): virtual
  addresses derived algorithmically from physical ones so page tables can
  be shared across processes;
* :mod:`repro.core.rangetrans` — **range translations** (§3.2/§4.3):
  base/limit/offset range tables plus a range TLB, the hardware that makes
  mapping O(1) per extent;
* :mod:`repro.core.o1` — supporting **O(1) policies**: constant-time
  erase strategies, pre-created/persistent page tables, and the
  space-for-time extent policy.
"""
