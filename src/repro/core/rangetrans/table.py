"""The architectural range table (paper Figures 4/5/9).

A per-address-space table of (BASE, LIMIT, OFFSET + protection) entries —
"analogous to a page table, but a different data structure".  Writing one
entry maps an entire contiguous range, which is the O(1) operation the
whole design funnels through.  The CPU consults this table on range-TLB
misses via :meth:`lookup`.
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.errors import MappingError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.hw.rtlb import RangeEntry
from repro.lint import o1


class RangeTable:
    """Sorted, non-overlapping range translations for one address space."""

    def __init__(
        self,
        asid: int,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        self._asid = asid
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._entries: List[RangeEntry] = []
        self._bases: List[int] = []

    @property
    def asid(self) -> int:
        """Owning address-space id (tags the entries)."""
        return self._asid

    @property
    def entry_count(self) -> int:
        """Live range-table entries."""
        return len(self._entries)

    def entries(self) -> List[RangeEntry]:
        """All entries, ascending by base."""
        return list(self._entries)

    # ------------------------------------------------------------------
    # The O(1) operations
    # ------------------------------------------------------------------
    @o1(note="bisect + one RTE write, any extent size")
    def insert(self, base: int, limit: int, paddr: int, writable: bool) -> RangeEntry:
        """Map ``[base, base+limit)`` -> ``[paddr, paddr+limit)``: one write."""
        if limit <= 0:
            raise MappingError(f"range limit must be positive, got {limit}")
        entry = RangeEntry(
            base=base,
            limit=limit,
            offset=paddr - base,
            writable=writable,
            asid=self._asid,
        )
        index = bisect.bisect_left(self._bases, base)
        if index > 0:
            prev = self._entries[index - 1]
            if prev.base + prev.limit > base:
                raise MappingError(f"range at {base:#x} overlaps {prev!r}")
        if index < len(self._entries):
            nxt = self._entries[index]
            if base + limit > nxt.base:
                raise MappingError(f"range at {base:#x} overlaps {nxt!r}")
        self._entries.insert(index, entry)
        self._bases.insert(index, base)
        self._clock.advance(self._costs.rte_write_ns)
        self._counters.bump("rte_write")
        return entry

    @o1(note="bisect + one RTE write")
    def remove(self, base: int) -> RangeEntry:
        """Unmap the entry starting at ``base``: one write."""
        index = bisect.bisect_left(self._bases, base)
        if index >= len(self._entries) or self._entries[index].base != base:
            raise MappingError(f"no range entry at base {base:#x}")
        entry = self._entries.pop(index)
        self._bases.pop(index)
        self._clock.advance(self._costs.rte_write_ns)
        self._counters.bump("rte_remove")
        return entry

    # ------------------------------------------------------------------
    # CPU-side lookup (range-TLB miss path)
    # ------------------------------------------------------------------
    @o1(note="one charged bisect walk")
    def lookup(self, vaddr: int) -> Optional[RangeEntry]:
        """Entry covering ``vaddr``, or None; charges the table walk."""
        self._clock.advance(self._costs.range_table_lookup_ns)
        self._counters.bump("range_table_lookup")
        index = bisect.bisect_right(self._bases, vaddr) - 1
        if index >= 0 and self._entries[index].covers(vaddr):
            return self._entries[index]
        return None
