"""Range translations: O(1) mapping with base/limit/offset entries.

The hardware/OS co-design of §3.2/§4.3 (after Gandhi et al. [9]): an
architectural *range table* (:mod:`table`) holds fixed-size entries each
translating an arbitrarily long contiguous range; the CPU's range TLB
(:mod:`repro.hw.rtlb`) caches them.  :mod:`manager` is the OS side —
"memory managed as extents in a file can be efficiently mapped by
assigning one virtual memory range to each extent", and unmapping is "a
single operation to update the range table and shoot down the entry in
the TLB".
"""

from repro.core.rangetrans.table import RangeTable
from repro.core.rangetrans.manager import RangeMapping, RangeMemory

__all__ = ["RangeMapping", "RangeMemory", "RangeTable"]
