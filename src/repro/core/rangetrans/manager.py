"""OS-side range-translation management.

:class:`RangeMemory` is what the kernel's mmap path becomes on a machine
with range hardware: mapping a file writes one range-table entry per
extent (one, for single-extent files); unmapping removes those entries
and shoots down the range TLB — "a single operation to update the range
table and shoot down the entry in the TLB" (§3.2).  No page tables are
touched at all for range-mapped regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.core.rangetrans.table import RangeTable
from repro.errors import ConfigurationError, MappingError
from repro.fs.vfs import Inode
from repro.lint import complexity, o1
from repro.units import PAGE_SIZE, align_up
from repro.vm.addrspace import AddressSpace
from repro.vm.vma import MapFlags, Protection, Vma

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


@dataclass
class RangeMapping:
    """One live range-mapped region."""

    space: AddressSpace
    vaddr: int
    length: int
    vma: Vma
    #: Bases of the RTEs installed for this mapping.
    rte_bases: List[int]
    inode_ino: int = 0

    @property
    def entry_count(self) -> int:
        """RTEs consumed — the paper's O(1)-per-extent metric."""
        return len(self.rte_bases)


class RangeMemory:
    """Maps files and anonymous extents through range translations."""

    def __init__(self, kernel: "Kernel") -> None:
        if kernel.rtlb is None:
            raise ConfigurationError(
                "RangeMemory needs range hardware; construct the Kernel "
                "with MachineConfig(range_hardware=True)"
            )
        self._kernel = kernel
        #: asid -> architectural range table.
        self._tables: Dict[int, RangeTable] = {}

    def table_for(self, space: AddressSpace) -> RangeTable:
        """The space's range table, wiring the CPU provider on first use."""
        table = self._tables.get(space.asid)
        if table is None:
            table = RangeTable(
                space.asid,
                self._kernel.clock,
                self._kernel.costs,
                self._kernel.counters,
            )
            self._tables[space.asid] = table
            space.range_provider = table.lookup
        return table

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    @complexity("n", note="one RTE per extent, never per page")
    def map_file(
        self,
        process: "Process",
        inode: Inode,
        prot: Protection = Protection.rw(),
    ) -> RangeMapping:
        """Map a whole file: one RTE per extent.

        The VMA is still created (protection bookkeeping and a home for
        faults on holes), but its cost is the constant mmap cost — no
        per-page work anywhere.
        """
        space = process.space
        table = self.table_for(space)
        npages = inode.page_count
        if npages == 0:
            raise MappingError(f"cannot range-map empty file ino={inode.ino}")
        length = npages * PAGE_SIZE
        vaddr = space.pick_address(length)
        vma = space.mmap(
            length=length,
            prot=prot,
            flags=MapFlags.SHARED,
            backing=inode.fs.backing_for(inode),
            addr=vaddr,
            name=f"range:ino{inode.ino}",
        )
        writable = bool(prot & Protection.WRITE)
        rte_bases: List[int] = []
        backing = inode.fs.backing_for(inode)
        for page_index, pfn, run in backing.frame_runs(0, npages):
            base = vaddr + page_index * PAGE_SIZE
            table.insert(
                base=base,
                limit=run * PAGE_SIZE,
                paddr=pfn * PAGE_SIZE,
                writable=writable,
            )
            rte_bases.append(base)
        return RangeMapping(
            space=space,
            vaddr=vaddr,
            length=length,
            vma=vma,
            rte_bases=rte_bases,
            inode_ino=inode.ino,
        )

    @o1(note="exactly one RTE insert")
    def map_extent(
        self,
        process: "Process",
        paddr: int,
        length: int,
        prot: Protection = Protection.rw(),
        backing=None,
        name: str = "range:anon",
    ) -> RangeMapping:
        """Map one raw physical extent (eager anonymous allocation)."""
        if length <= 0 or length % PAGE_SIZE:
            raise MappingError(
                f"length must be a positive page multiple, got {length}"
            )
        space = process.space
        table = self.table_for(space)
        vaddr = space.pick_address(length)
        if backing is None:
            backing = _RawExtentBacking(paddr // PAGE_SIZE)
        vma = space.mmap(
            length=length,
            prot=prot,
            flags=MapFlags.SHARED,
            backing=backing,
            addr=vaddr,
            name=name,
        )
        table.insert(
            base=vaddr,
            limit=length,
            paddr=paddr,
            writable=bool(prot & Protection.WRITE),
        )
        return RangeMapping(
            space=space, vaddr=vaddr, length=length, vma=vma, rte_bases=[vaddr]
        )

    # ------------------------------------------------------------------
    # Unmapping — the O(1) teardown
    # ------------------------------------------------------------------
    @o1(note="one RTE remove per extent + one range-TLB shootdown")
    def unmap(self, mapping: RangeMapping) -> None:
        """Remove the mapping's RTEs and shoot down the range TLB."""
        table = self.table_for(mapping.space)
        # o1: allow(o1-size-loop) -- per extent, not per page
        for base in mapping.rte_bases:
            table.remove(base)
        rtlb = self._kernel.rtlb
        assert rtlb is not None
        dropped = rtlb.invalidate_overlap(
            mapping.vaddr, mapping.length, asid=mapping.space.asid
        )
        if dropped:
            self._kernel.clock.advance(
                self._kernel.costs.tlb_invalidate_ns * dropped
            )
        self._kernel.counters.bump("range_unmap")
        mapping.space.detach_vma(mapping.vma)


class _RawExtentBacking:
    """Backing for a bare physical extent mapped via ranges.

    Faults should never reach it (the range table translates first); the
    methods exist to satisfy the protocol and to catch design errors.
    """

    def __init__(self, first_pfn: int) -> None:
        self._first_pfn = first_pfn

    def frame_for(self, page_index: int, write: bool) -> int:
        return self._first_pfn + page_index

    def frame_runs(self, start_page: int, npages: int):
        yield start_page, self._first_pfn + start_page, npages

    def release(self, page_index: int, npages: int) -> None:
        return None
