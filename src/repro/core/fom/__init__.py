"""File-only memory (paper §3.1/§4.1): all user memory as files.

"Within the operating system, we propose that all user-mode memory be
allocated as files, backed by a memory file system such as Linux's tmpfs."

* :mod:`manager` — the allocator: every region is a file, pre-allocated as
  extents by the O(1) policy and mapped by extent / premapped subtree /
  range translation;
* :mod:`heap` — a malloc/free built on file regions (code/heap/stack as
  files);
* :mod:`process` — process launch with code, heap and stack segments as
  separate files, and O(#files) exit;
* :mod:`reclaim` — whole-file reclamation of discardable data
  (transcendent-memory-style);
* :mod:`persistence` — volatile/persistent marking and crash recovery.
"""

from repro.core.fom.manager import FileOnlyMemory, FomRegion, MapStrategy
from repro.core.fom.heap import FomHeap
from repro.core.fom.process import FomProcess, launch_fom_process
from repro.core.fom.reclaim import FileReclaimer
from repro.core.fom.persistence import PersistenceManager

__all__ = [
    "FileOnlyMemory",
    "FileReclaimer",
    "FomHeap",
    "FomProcess",
    "FomRegion",
    "MapStrategy",
    "PersistenceManager",
    "launch_fom_process",
]
