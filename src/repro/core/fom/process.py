"""Process launch under file-only memory.

Paper §3.1: "When launching a process, code segments, heap segments, and
stack segments can all be represented as separate files, so there is no
need to allocate each individual page.  Creating a thread stack becomes
allocating a file with a single extent containing a region of memory and
mapping it into the address space."

:func:`launch_fom_process` builds exactly that: a process whose text,
heap and stack are three files, plus :meth:`FomProcess.create_thread_stack`
for the one-extent thread-stack case, and an exit path that tears the
process down in O(#files).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.fom.manager import FileOnlyMemory, FomRegion, MapStrategy
from repro.vm.vma import Protection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


@dataclass
class FomProcess:
    """A process whose segments are all files."""

    process: "Process"
    fom: FileOnlyMemory
    code: FomRegion
    heap: FomRegion
    stack: FomRegion
    thread_stacks: List[FomRegion] = field(default_factory=list)

    @property
    def segment_count(self) -> int:
        """Files backing this process's memory."""
        return 3 + len(self.thread_stacks)

    def create_thread_stack(self, size: int) -> FomRegion:
        """One-extent file, mapped — the paper's thread-stack recipe."""
        region = self.fom.allocate(
            self.process,
            size,
            prot=Protection.rw(),
            strategy=MapStrategy.EXTENT,
        )
        self.thread_stacks.append(region)
        return region

    def exit(self) -> int:
        """Terminate: release every segment file — O(#files).

        Returns the number of regions released.  Contrast with the
        baseline :meth:`~repro.kernel.process.Process.exit`, which walks
        every resident page.
        """
        released = self.fom.exit_process(self.process)
        self.process.alive = False
        return released


def launch_fom_process(
    fom: FileOnlyMemory,
    name: str,
    code_bytes: int,
    heap_bytes: int,
    stack_bytes: int,
    code_path: Optional[str] = None,
    strategy: MapStrategy = MapStrategy.EXTENT,
) -> FomProcess:
    """Spawn a process with code/heap/stack as three separate files.

    ``code_path`` names an existing executable file to map (shared,
    persistent program text); without it a fresh code file is created —
    as a first ``exec`` of a new binary would.
    """
    kernel = fom._kernel
    process = kernel.spawn(name)
    if code_path is not None and fom.fs.exists(code_path):
        code = fom.open_region(
            process,
            code_path,
            prot=Protection.READ | Protection.EXEC,
            strategy=strategy,
        )
    else:
        code = fom.allocate(
            process,
            code_bytes,
            name=code_path,
            prot=Protection.READ | Protection.EXEC,
            strategy=strategy,
            persistent=code_path is not None,
        )
    heap = fom.allocate(
        process, heap_bytes, prot=Protection.rw(), strategy=strategy
    )
    stack = fom.allocate(
        process, stack_bytes, prot=Protection.rw(), strategy=strategy
    )
    return FomProcess(process=process, fom=fom, code=code, heap=heap, stack=stack)
