"""Volatile/persistent marking and crash recovery.

Paper §3.1: "all data lives in files that can be marked at any time as
volatile or persistent to indicate whether they should survive process
terminations and system restarts" — an O(1) flag flip on the inode, not a
data copy.  And the security obligation that follows: "for volatile data,
the OS explicitly erases memory before reusing it following a failure",
which is linear unless an O(1) erase strategy (crypto erase) is plugged
in.

:class:`PersistenceManager` implements both: the marking API, and the
post-crash recovery sweep that erases (or crypto-revokes) volatile files
and reports the persistent survivors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.fom.manager import FileOnlyMemory, FomRegion
from repro.errors import FileSystemError
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel


@dataclass
class RecoveryReport:
    """Outcome of a post-crash recovery sweep."""

    survivors: List[str]
    erased: List[str]
    erase_ns: int
    #: True when the O(1) (crypto) erase path was used.
    constant_time_erase: bool


class PersistenceManager:
    """Marks files volatile/persistent and recovers after crashes."""

    def __init__(self, fom: FileOnlyMemory, crypto_erase: bool = False) -> None:
        self._fom = fom
        self._kernel = fom._kernel
        #: With crypto erase, revoking a per-file key erases it in O(1).
        self.crypto_erase = crypto_erase

    # ------------------------------------------------------------------
    # Marking — O(1), whole-file
    # ------------------------------------------------------------------
    def mark_persistent(self, region: FomRegion) -> None:
        """Flag a region's file to survive restarts (one inode bit)."""
        if not region.inode.fs.persistent:
            raise FileSystemError(
                f"{region.path!r} lives on volatile fs "
                f"{region.inode.fs.name!r}; move it to PMFS to persist"
            )
        region.persistent = True
        region.inode.persistent = True
        self._kernel.counters.bump("fom_mark_persistent")

    def mark_volatile(self, region: FomRegion) -> None:
        """Flag a region's file to be erased at recovery."""
        region.persistent = False
        region.inode.persistent = False
        self._kernel.counters.bump("fom_mark_volatile")

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Post-crash sweep of the persistent file system.

        Persistent files survive untouched.  Volatile files must be
        erased before their frames can be reused: linearly (zero every
        page) by default, or in constant time per file with crypto erase.
        Pre-created page-table caches drop their non-persistent entries.
        """
        fs = self._fom.fs
        if not fs.persistent:
            # Nothing survived at all; recovery is trivially empty.
            return RecoveryReport(
                survivors=[], erased=[], erase_ns=0, constant_time_erase=self.crypto_erase
            )
        clock = self._kernel.clock
        costs = self._kernel.costs
        survivors: List[str] = []
        erased: List[str] = []
        erase_start = clock.now
        chaos = getattr(self._kernel.counters, "chaos", None)
        for path, inode in list(fs.iter_files()):
            if chaos is not None:
                # One crash point per file examined: recovery itself must
                # survive a power failure at any step (it is idempotent —
                # already-unlinked files are gone from iter_files).
                chaos.hit("fom.recover.file")
            if inode.persistent:
                survivors.append(path)
                continue
            if self.crypto_erase:
                # Key revocation: constant per file.
                clock.advance(120)
                self._kernel.counters.bump("crypto_key_destroy")
            else:
                clock.advance(
                    costs.zero_page_ns(PAGE_SIZE) * inode.page_count
                )
                self._kernel.counters.bump("recovery_zero_pages", inode.page_count)
            fs.unlink(path)
            erased.append(path)
        self._fom.ptcache.on_crash()
        self._kernel.counters.bump("fom_recover")
        return RecoveryReport(
            survivors=sorted(survivors),
            erased=sorted(erased),
            erase_ns=clock.now - erase_start,
            constant_time_erase=self.crypto_erase,
        )
