"""A malloc/free built on file-only memory.

The paper's claim is that heaps get *simpler* with ample memory: "the heap
need not identify unused pages to release with madvise()".  This heap
follows that philosophy:

* small objects come from size-class arenas — each arena is one file
  region, carved by bump pointer with a per-class free list (slab-style,
  O(1) malloc and free);
* large objects get their own region (one file, one extent, O(1));
* freed arena space is *not* returned page-by-page to the OS — a fully
  free arena's file is released whole, and everything else waits for
  process exit.  The space cost is visible in :meth:`stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.fom.manager import FileOnlyMemory, FomRegion, MapStrategy
from repro.errors import MappingError
from repro.units import HUGE_PAGE_2M, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process

#: Size classes: powers of two from 16 B to 4 KiB.
_SIZE_CLASSES = [16 << i for i in range(9)]  # 16 .. 4096


def _class_for(size: int) -> Optional[int]:
    """Smallest size class holding ``size``, or None for large objects."""
    for cls in _SIZE_CLASSES:
        if size <= cls:
            return cls
    return None


@dataclass
class _Arena:
    """One file region serving a single size class."""

    region: FomRegion
    object_size: int
    bump: int = 0
    free_list: List[int] = field(default_factory=list)
    live: int = 0

    @property
    def capacity(self) -> int:
        """Objects this arena can hold."""
        return self.region.length // self.object_size

    def alloc(self) -> Optional[int]:
        """An address, or None if full."""
        if self.free_list:
            self.live += 1
            return self.free_list.pop()
        if self.bump < self.capacity:
            addr = self.region.vaddr + self.bump * self.object_size
            self.bump += 1
            self.live += 1
            return addr
        return None

    def free(self, addr: int) -> None:
        self.free_list.append(addr)
        self.live -= 1

    def contains(self, addr: int) -> bool:
        return self.region.vaddr <= addr < self.region.vaddr + self.region.length


class FomHeap:
    """Process heap where every arena and large object is a file."""

    def __init__(
        self,
        fom: FileOnlyMemory,
        process: "Process",
        arena_bytes: int = HUGE_PAGE_2M,
        strategy: MapStrategy = MapStrategy.EXTENT,
    ) -> None:
        if arena_bytes < PAGE_SIZE:
            raise MappingError(f"arena_bytes must be >= {PAGE_SIZE}")
        self._fom = fom
        self._process = process
        self._arena_bytes = arena_bytes
        self._strategy = strategy
        #: size class -> arenas (last one is the open arena).
        self._arenas: Dict[int, List[_Arena]] = {}
        #: addr -> (size class, arena) for O(1) free of small objects.
        self._small: Dict[int, _Arena] = {}
        #: addr -> region for large objects.
        self._large: Dict[int, FomRegion] = {}
        self._malloc_count = 0
        self._free_count = 0

    # ------------------------------------------------------------------
    # malloc / free
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the virtual address."""
        if size <= 0:
            raise MappingError(f"malloc size must be positive, got {size}")
        self._malloc_count += 1
        cls = _class_for(size)
        if cls is None:
            region = self._fom.allocate(
                self._process, size, strategy=self._strategy
            )
            self._large[region.vaddr] = region
            return region.vaddr
        arenas = self._arenas.setdefault(cls, [])
        if arenas:
            addr = arenas[-1].alloc()
            if addr is not None:
                self._small[addr] = arenas[-1]
                return addr
            # Check earlier arenas' free lists before growing.
            for arena in arenas[:-1]:
                addr = arena.alloc()
                if addr is not None:
                    self._small[addr] = arena
                    return addr
        arena = self._grow(cls)
        addr = arena.alloc()
        assert addr is not None, "fresh arena cannot be full"
        self._small[addr] = arena
        return addr

    def free(self, addr: int) -> None:
        """Release an allocation made by :meth:`malloc`."""
        self._free_count += 1
        arena = self._small.pop(addr, None)
        if arena is not None:
            arena.free(addr)
            if arena.live == 0 and len(self._arenas[arena.object_size]) > 1:
                # Whole-arena (whole-file) release: the only granularity
                # at which this heap returns memory before exit.
                self._arenas[arena.object_size].remove(arena)
                self._drop_arena_addrs(arena)
                self._fom.release(arena.region)
            return
        region = self._large.pop(addr, None)
        if region is not None:
            self._fom.release(region)
            return
        raise MappingError(f"free of unallocated address {addr:#x}")

    def _drop_arena_addrs(self, arena: _Arena) -> None:
        stale = [addr for addr, owner in self._small.items() if owner is arena]
        for addr in stale:
            del self._small[addr]

    def _grow(self, cls: int) -> _Arena:
        region = self._fom.allocate(
            self._process, self._arena_bytes, strategy=self._strategy
        )
        arena = _Arena(region=region, object_size=cls)
        self._arenas[cls].append(arena)
        return arena

    # ------------------------------------------------------------------
    # Teardown / stats
    # ------------------------------------------------------------------
    def destroy(self) -> None:
        """Release every arena and large region (process exit path)."""
        for arenas in self._arenas.values():
            for arena in arenas:
                if not arena.region.released:
                    self._fom.release(arena.region)
        for region in self._large.values():
            if not region.released:
                self._fom.release(region)
        self._arenas.clear()
        self._small.clear()
        self._large.clear()

    def stats(self) -> Dict[str, int]:
        """Live/space accounting, including the space-for-time waste."""
        live_small = sum(
            arena.live * arena.object_size
            for arenas in self._arenas.values()
            for arena in arenas
        )
        arena_bytes = sum(
            arena.region.allocated_bytes
            for arenas in self._arenas.values()
            for arena in arenas
        )
        large_bytes = sum(region.allocated_bytes for region in self._large.values())
        return {
            "malloc_count": self._malloc_count,
            "free_count": self._free_count,
            "live_small_bytes": live_small,
            "arena_bytes": arena_bytes,
            "large_bytes": large_bytes,
            "arena_count": sum(len(a) for a in self._arenas.values()),
            "large_count": len(self._large),
        }
