"""The file-only memory manager.

Every allocation is a file: the manager creates it (pre-sized by the
:class:`~repro.core.o1.policy.ExtentPolicy`, so storage arrives as a few
aligned extents), maps it by one of four strategies, and reclaims it by
unlink — "memory is only reclaimed in the unit of a file".

Mapping strategies, in increasing O(1)-ness:

========  ===============================================================
DEMAND    plain mmap; per-page minor faults on access (for comparison)
EXTENT    populate at map time using the largest natural page size each
          extent's alignment allows (few PTEs per extent)
PREMAP    link pre-created page-table subtrees: one pointer write per
          2 MiB window (§3.1's "changing a single pointer in a page
          table")
RANGE     one range-table entry per extent (needs range hardware)
========  ===============================================================
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.o1.policy import ExtentPolicy
from repro.core.o1.premap import Attachment, PageTableCache
from repro.core.rangetrans.manager import RangeMapping, RangeMemory
from repro.errors import ConfigurationError, MappingError, OutOfMemoryError
from repro.fs.pmfs import Pmfs
from repro.fs.vfs import FileSystem, Inode
from repro.lint import complexity, o1
from repro.units import PAGE_SIZE
from repro.vm.vma import MapFlags, Protection, Vma

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


class MapStrategy(enum.Enum):
    """How a region's translations are established."""

    DEMAND = "demand"
    EXTENT = "extent"
    PREMAP = "premap"
    RANGE = "range"


@dataclass
class FomRegion:
    """One file-backed memory region owned by a process."""

    path: str
    inode: Inode
    process: "Process"
    vaddr: int
    length: int
    strategy: MapStrategy
    prot: Protection
    persistent: bool
    discardable: bool
    #: Strategy-specific teardown handle.
    vma: Optional[Vma] = None
    attachment: Optional[Attachment] = None
    range_mapping: Optional[RangeMapping] = None
    #: Simulated time of last open/use, for file-granularity reclaim.
    last_used_ns: int = 0
    released: bool = False

    @property
    def allocated_bytes(self) -> int:
        """Bytes of storage the file actually holds (>= requested)."""
        return self.inode.page_count * PAGE_SIZE


class FileOnlyMemory:
    """Allocate, map and reclaim memory as whole files."""

    def __init__(
        self,
        kernel: "Kernel",
        fs: Optional[FileSystem] = None,
        policy: Optional[ExtentPolicy] = None,
        default_strategy: MapStrategy = MapStrategy.EXTENT,
        guard_gap_bytes: int = 2 * 1024 * 1024,
    ) -> None:
        self._kernel = kernel
        self._fs = fs if fs is not None else (kernel.pmfs or kernel.tmpfs)
        self.policy = policy or ExtentPolicy()
        self.default_strategy = default_strategy
        #: Unmapped VA left after each region: a natural guard band
        #: (overruns segfault without per-page guard tricks) and headroom
        #: for in-place growth.  Virtual addresses are the one resource
        #: that is truly ample, so the gap costs nothing physical.
        self.guard_gap_bytes = guard_gap_bytes
        self.ptcache = PageTableCache(
            kernel.config.page_table_levels,
            kernel.clock,
            kernel.costs,
            kernel.counters,
        )
        self.range_memory: Optional[RangeMemory] = (
            RangeMemory(kernel) if kernel.rtlb is not None else None
        )
        self._anon_ids = itertools.count(1)
        #: pid -> live regions, for O(#regions) process teardown.
        self._regions_by_pid: Dict[int, List[FomRegion]] = {}
        if isinstance(self._fs, Pmfs):
            # Freed or RAS-migrated extents invalidate the inode's cached
            # premapped subtrees, so no donor translation outlives the
            # storage it points at.
            self._fs.register_extent_invalidator(
                lambda ino, _pfn, _count: self.ptcache.invalidate(ino)
            )
        if not self._fs.exists("/.fom"):
            self._fs.mkdir("/.fom")

    @property
    def fs(self) -> FileSystem:
        """The backing memory file system."""
        return self._fs

    # ------------------------------------------------------------------
    # Allocation — "when a process allocates memory, it maps a file"
    # ------------------------------------------------------------------
    @o1(note="one policy-rounded extent + one constant-shape map")
    def allocate(
        self,
        process: "Process",
        size: int,
        name: Optional[str] = None,
        prot: Protection = Protection.rw(),
        strategy: Optional[MapStrategy] = None,
        persistent: bool = False,
        discardable: bool = False,
    ) -> FomRegion:
        """Allocate ``size`` bytes as a (possibly named) file and map it.

        Unnamed regions get temporary files under ``/.fom`` — "for
        volatile data, this may be a temporary file".  The file is
        pre-sized by the extent policy (space traded for time) and fully
        allocated up front, so no demand allocation ever happens inside
        it.
        """
        if size <= 0:
            raise MappingError(f"size must be positive, got {size}")
        tracer = self._kernel.tracer
        if tracer.enabled:
            tracer.current_pid = process.pid
        strategy = strategy or self.default_strategy
        path = name or f"/.fom/anon{next(self._anon_ids)}"
        extent_bytes = self.policy.extent_bytes_for(size)
        # o1: allow(flow-bounded) -- path depth, not region size
        inode = self._create_aligned(path, extent_bytes)
        inode.persistent = persistent
        inode.discardable = discardable
        # o1: allow(flow-bounded) -- constant-shape map; PREMAP first touch builds the donor once
        region = self._map_inode(
            process, path, inode, extent_bytes, prot, strategy,
            persistent=persistent, discardable=discardable,
        )
        self._kernel.counters.bump("fom_allocate")
        return region

    @o1(note="re-map of existing storage; no allocation")
    def open_region(
        self,
        process: "Process",
        path: str,
        prot: Protection = Protection.rw(),
        strategy: Optional[MapStrategy] = None,
    ) -> FomRegion:
        """Map an *existing* file (named persistent data, or re-open after
        a crash)."""
        strategy = strategy or self.default_strategy
        # o1: allow(flow-bounded) -- path depth, not region size
        inode = self._fs.lookup(path)
        length = inode.page_count * PAGE_SIZE
        if length == 0:
            raise MappingError(f"{path!r} has no allocated storage to map")
        # o1: allow(flow-bounded) -- constant-shape map; PREMAP first touch builds the donor once
        region = self._map_inode(
            process, path, inode, length, prot, strategy,
            persistent=inode.persistent, discardable=inode.discardable,
        )
        self._kernel.counters.bump("fom_open")
        return region

    @complexity("n", note="one lookup per path component, not per region byte")
    def _ensure_parent_dirs(self, path: str) -> None:
        """Create missing parent directories for ``path``."""
        parts = [part for part in path.split("/") if part][:-1]
        prefix = ""
        for part in parts:
            prefix += "/" + part
            # o1: allow(flow-bounded) -- one walk per component, within the declared n
            if not self._fs.exists(prefix):
                self._fs.mkdir(prefix)  # o1: allow(flow-bounded) -- ditto: per component

    @complexity("n", note="path walk plus one extent-granular create")
    def _create_aligned(self, path: str, extent_bytes: int) -> Inode:
        """Create the file with policy-chosen physical alignment."""
        self._ensure_parent_dirs(path)
        align = self.policy.alignment_frames_for(extent_bytes)
        if isinstance(self._fs, Pmfs):
            saved = self._fs.extent_align_frames
            self._fs.extent_align_frames = max(saved, align)
            try:
                return self._fs.create(path, size=extent_bytes)
            finally:
                self._fs.extent_align_frames = saved
        return self._fs.create(path, size=extent_bytes)

    def _map_inode(
        self,
        process: "Process",
        path: str,
        inode: Inode,
        length: int,
        prot: Protection,
        strategy: MapStrategy,
        persistent: bool,
        discardable: bool,
    ) -> FomRegion:
        space = process.space
        region = FomRegion(
            path=path,
            inode=inode,
            process=process,
            vaddr=0,
            length=length,
            strategy=strategy,
            prot=prot,
            persistent=persistent,
            discardable=discardable,
            last_used_ns=self._kernel.clock.now,
        )
        if strategy is MapStrategy.RANGE:
            if self.range_memory is None:
                raise ConfigurationError(
                    "RANGE strategy needs range hardware "
                    "(MachineConfig(range_hardware=True))"
                )
            mapping = self.range_memory.map_file(process, inode, prot)
            region.vaddr = mapping.vaddr
            region.range_mapping = mapping
        elif strategy is MapStrategy.PREMAP:
            try:
                attachment = self.ptcache.attach(space, inode, prot)
            except OutOfMemoryError:
                # No frames for the donor subtree: degrade gracefully to
                # demand paging — slower per fault, but the mapping (and
                # the program) survives.  Region bookkeeping follows the
                # strategy actually in effect.
                self._kernel.counters.bump("fom_premap_fallback")
                region.strategy = MapStrategy.DEMAND
                vaddr = space.pick_address(
                    length + self.guard_gap_bytes, alignment=2 * 1024 * 1024
                )
                region.vaddr = vaddr
                region.vma = space.mmap(
                    length=length,
                    prot=prot,
                    flags=MapFlags.SHARED,
                    backing=inode.fs.backing_for(inode),
                    addr=vaddr,
                    name=f"fom:{path}",
                )
            else:
                region.vaddr = attachment.vaddr
                region.attachment = attachment
                region.vma = attachment.vma
        else:
            flags = MapFlags.SHARED
            if strategy is MapStrategy.EXTENT:
                flags |= MapFlags.POPULATE | MapFlags.HUGEPAGE
            vaddr = space.pick_address(
                length + self.guard_gap_bytes, alignment=2 * 1024 * 1024
            )
            vma = space.mmap(
                length=length,
                prot=prot,
                flags=flags,
                backing=inode.fs.backing_for(inode),
                addr=vaddr,
                name=f"fom:{path}",
            )
            region.vaddr = vaddr
            region.vma = vma
        inode.refcount += 1
        self._regions_by_pid.setdefault(process.pid, []).append(region)
        return region

    # ------------------------------------------------------------------
    # Growth — the benefit of growing regions without per-page work
    # ------------------------------------------------------------------
    @o1(note="O(#new extents); the tail probe is two sorted-bound bisects")
    def grow_region(self, region: FomRegion, new_size: int) -> None:
        """Extend a region in place: grow the file, map the new extent.

        The paper notes Linux gets "the benefits of growing regions
        (decreased overhead)" from VMA merging; file-only memory gets the
        same effect by extending the file and mapping the added extent —
        O(#new extents), not O(#new pages).  Only EXTENT/DEMAND regions
        support growth (premapped subtrees and range entries would need
        rebuilding; allocate generously instead).
        """
        if region.released:
            raise MappingError(f"region {region.path!r} was released")
        if region.strategy not in (MapStrategy.EXTENT, MapStrategy.DEMAND):
            raise MappingError(
                f"{region.strategy.value} regions do not grow; size them "
                f"up front (space for time)"
            )
        if new_size <= region.length:
            raise MappingError(
                f"new size {new_size} does not exceed current {region.length}"
            )
        grown_bytes = self.policy.extent_bytes_for(new_size)
        old_pages = region.inode.page_count
        # o1: allow(flow-bounded) -- the extent policy adds whole extents, not pages
        self._fs.truncate(region.inode, grown_bytes)
        added = grown_bytes - old_pages * PAGE_SIZE
        space = region.process.space
        tail_start = region.vaddr + old_pages * PAGE_SIZE
        tail_free = space.range_is_free(tail_start, tail_start + added)
        if tail_free:
            # Extend in place; identical flags/backing and contiguous
            # offsets merge the new VMA into the existing one, and the
            # POPULATE flag (EXTENT regions) maps only the new pages.
            vma = space.mmap(
                length=added,
                prot=region.prot,
                flags=region.vma.flags,
                backing=region.vma.backing,
                addr=tail_start,
                backing_offset=old_pages,
                name=region.vma.name,
            )
            region.vma = vma
        else:
            # The guard gap is spoken for: relocate.  No data moves —
            # the file's extents simply get mapped at a fresh address
            # (mremap without the copy), O(#extents).
            space.detach_vma(region.vma)
            new_vaddr = space.pick_address(
                grown_bytes + self.guard_gap_bytes, alignment=2 * 1024 * 1024
            )
            region.vma = space.mmap(
                length=grown_bytes,
                prot=region.prot,
                flags=region.vma.flags,
                backing=region.inode.fs.backing_for(region.inode),
                addr=new_vaddr,
                backing_offset=0,
                name=region.vma.name,
            )
            region.vaddr = new_vaddr
            self._kernel.counters.bump("fom_grow_relocated")
        region.length = grown_bytes
        self._kernel.counters.bump("fom_grow")

    # ------------------------------------------------------------------
    # Reclamation — "memory is only reclaimed in the unit of a file"
    # ------------------------------------------------------------------
    @o1(note="constant-shape unmap + whole-file unlink")
    def release(self, region: FomRegion, unlink: Optional[bool] = None) -> None:
        """Unmap and (for temporary/volatile files) unlink the region.

        ``unlink`` defaults to deleting anonymous and non-persistent
        files, keeping named persistent ones.
        """
        if region.released:
            raise MappingError(f"region {region.path!r} already released")
        region.released = True
        if region.range_mapping is not None:
            assert self.range_memory is not None
            self.range_memory.unmap(region.range_mapping)
        elif region.attachment is not None:
            self.ptcache.detach(region.attachment)
        else:
            # o1: allow(flow-bounded) -- extent-granular teardown; the per-page walk is the baseline under comparison
            region.process.space.munmap(region.vaddr, region.length)
        region.inode.refcount -= 1
        if unlink is None:
            unlink = not region.persistent
        # o1: allow(flow-bounded) -- path depth, not region size
        if unlink and self._fs.exists(region.path):
            # Cached premapped subtrees hold donor translations into the
            # file's blocks; drop them before the unlink frees the blocks
            # so no translation outlives the storage.
            # o1: allow(flow-bounded) -- a handful of cached donor variants per file
            self.ptcache.invalidate(region.inode.ino)
            # o1: allow(flow-bounded) -- path depth, not region size
            self._fs.unlink(region.path)
        regions = self._regions_by_pid.get(region.process.pid, [])
        if region in regions:
            regions.remove(region)
        self._kernel.counters.bump("fom_release")

    @complexity("n", note="per region, not per page")
    def exit_process(self, process: "Process") -> int:
        """Tear down every region of a process — O(#regions), not O(pages)
        for PREMAP/RANGE regions.  Returns regions released."""
        regions = list(self._regions_by_pid.get(process.pid, []))
        for region in regions:
            self.release(region)
        self._regions_by_pid.pop(process.pid, None)
        return len(regions)

    def regions_of(self, process: "Process") -> List[FomRegion]:
        """Live regions owned by ``process``."""
        return list(self._regions_by_pid.get(process.pid, []))

    def touch_region(self, region: FomRegion) -> None:
        """Record use (coarse, file-granularity access tracking — §4.1:
        'access patterns can be tracked at coarse granularity')."""
        region.last_used_ns = self._kernel.clock.now
