"""Whole-file reclamation of discardable data.

Paper §3.1/§4.1: "if applications use a file API to access non-critical
data (i.e., discardable data such as caches), the OS can reclaim the
memory by deleting non-critical files.  This provides many of the benefits
of transcendent memory."  And §4.1: "access patterns can be tracked at
coarse granularity (an entire file), and data can be reclaimed the same
granularity."

The contrast with :mod:`repro.vm.reclaimd` is the point: the clock
algorithm *scans per page* to find victims; this reclaimer sorts a handful
of files by last-use time and unlinks the coldest — cost proportional to
files touched, not pages resident.
"""

from __future__ import annotations

from typing import List, Tuple, TYPE_CHECKING

from repro.core.fom.manager import FileOnlyMemory, FomRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process


class FileReclaimer:
    """Reclaims memory by deleting cold discardable files."""

    def __init__(self, fom: FileOnlyMemory) -> None:
        self._fom = fom
        self._registered: List[FomRegion] = []

    def register(self, region: FomRegion) -> None:
        """Track a discardable region as a reclaim candidate."""
        if not region.discardable:
            raise ValueError(
                f"region {region.path!r} is not discardable; only cache-like "
                f"data may be reclaimed by deletion"
            )
        self._registered.append(region)

    @property
    def candidate_count(self) -> int:
        """Live discardable regions available to reclaim."""
        return sum(1 for region in self._registered if not region.released)

    def reclaimable_bytes(self) -> int:
        """Bytes that could be freed by discarding everything registered."""
        return sum(
            region.allocated_bytes
            for region in self._registered
            if not region.released
        )

    def reclaim_bytes(self, target_bytes: int) -> Tuple[int, int]:
        """Free at least ``target_bytes`` by deleting coldest files first.

        Returns (bytes_freed, files_deleted).  Each deletion is one unmap
        (O(1)/O(extents) for premap/range regions) plus one unlink (one
        bitmap run per extent) — no page scanning anywhere.
        """
        if target_bytes <= 0:
            raise ValueError(f"target_bytes must be positive, got {target_bytes}")
        live = [region for region in self._registered if not region.released]
        live.sort(key=lambda region: region.last_used_ns)
        freed = 0
        deleted = 0
        for region in live:
            if freed >= target_bytes:
                break
            freed += region.allocated_bytes
            self._fom.release(region, unlink=True)
            deleted += 1
        self._registered = [
            region for region in self._registered if not region.released
        ]
        return freed, deleted
