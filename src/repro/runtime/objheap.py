"""Region-based object heap: allocation without per-object bookkeeping.

The runtime embodiment of the paper's bargain.  Objects are bump-allocated
into *regions*; a region is one file-only-memory region (one file, one
extent).  There is no per-object free and no garbage collector scanning
for dead objects — a region dies as a unit ("memory is only reclaimed in
the unit of a file"), which is exactly how arena/region systems and
request-scoped allocators behave.

Costs: ``new()`` is a pointer bump (plus the charged store for the object
header); ``free_region()`` is one FOM release regardless of how many
objects the region held.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.fom.manager import FileOnlyMemory, FomRegion
from repro.errors import MappingError, OutOfMemoryError
from repro.units import HUGE_PAGE_2M, align_up

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process

#: Object alignment within a region.
_OBJ_ALIGN = 16
#: Per-object header the runtime writes (size + type word).
_HEADER_BYTES = 16


@dataclass(frozen=True)
class ObjRef:
    """A reference to one allocated object."""

    addr: int
    size: int
    region_id: int


class Region:
    """One bump-allocated arena backed by a file region."""

    def __init__(self, region_id: int, backing: FomRegion) -> None:
        self.region_id = region_id
        self.backing = backing
        self.bump = 0
        self.object_count = 0
        self.dead = False

    @property
    def capacity(self) -> int:
        """Bytes this region can hold."""
        return self.backing.length

    @property
    def used(self) -> int:
        """Bytes bumped so far (headers included)."""
        return self.bump

    def try_alloc(self, size: int) -> Optional[int]:
        """Bump-allocate ``size`` payload bytes; None if it won't fit."""
        total = align_up(size + _HEADER_BYTES, _OBJ_ALIGN)
        if self.bump + total > self.capacity:
            return None
        addr = self.backing.vaddr + self.bump + _HEADER_BYTES
        self.bump += total
        self.object_count += 1
        return addr


class ObjectHeap:
    """Region-based object allocator over file-only memory."""

    def __init__(
        self,
        fom: FileOnlyMemory,
        process: "Process",
        region_bytes: int = HUGE_PAGE_2M,
    ) -> None:
        if region_bytes <= _HEADER_BYTES + _OBJ_ALIGN:
            raise MappingError(f"region_bytes {region_bytes} is too small")
        self._fom = fom
        self._process = process
        self._region_bytes = region_bytes
        self._ids = itertools.count(1)
        self._regions: Dict[int, Region] = {}
        self._current: Optional[Region] = None
        self.allocated_objects = 0

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def create_region(self) -> Region:
        """Open a fresh region (one file, one extent)."""
        backing = self._fom.allocate(self._process, self._region_bytes)
        region = Region(next(self._ids), backing)
        self._regions[region.region_id] = region
        return region

    def free_region(self, region: Region) -> int:
        """Release a region and every object in it — one file unlink.

        Returns the number of objects that died with it.
        """
        if region.dead:
            raise MappingError(f"region {region.region_id} already freed")
        region.dead = True
        del self._regions[region.region_id]
        if self._current is region:
            self._current = None
        self._fom.release(region.backing)
        return region.object_count

    @property
    def live_regions(self) -> int:
        """Regions currently holding objects."""
        return len(self._regions)

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------
    def new(self, size: int, region: Optional[Region] = None) -> ObjRef:
        """Allocate one object of ``size`` payload bytes.

        Without an explicit region, allocation goes to the heap's current
        region, opening a new one when it fills — so ``new`` is O(1)
        amortized and exactly O(1) given a non-full region.
        """
        if size <= 0:
            raise MappingError(f"object size must be positive, got {size}")
        if size + _HEADER_BYTES > self._region_bytes:
            raise MappingError(
                f"object of {size} bytes exceeds region size "
                f"{self._region_bytes}; allocate a dedicated FOM region"
            )
        target = region
        if target is None:
            if self._current is None or self._current.dead:
                self._current = self.create_region()
            target = self._current
        addr = target.try_alloc(size)
        if addr is None:
            if region is not None:
                raise OutOfMemoryError(
                    f"region {region.region_id} is full "
                    f"({region.used}/{region.capacity} bytes)"
                )
            self._current = self.create_region()
            target = self._current
            addr = target.try_alloc(size)
            assert addr is not None, "fresh region rejected a fitting object"
        self.allocated_objects += 1
        return ObjRef(addr=addr, size=size, region_id=target.region_id)

    def region_of(self, ref: ObjRef) -> Region:
        """The region an object lives in (raises if it died)."""
        region = self._regions.get(ref.region_id)
        if region is None:
            raise MappingError(
                f"object {ref.addr:#x} belongs to freed region {ref.region_id}"
            )
        return region

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Occupancy across live regions."""
        used = sum(region.used for region in self._regions.values())
        capacity = sum(region.capacity for region in self._regions.values())
        return {
            "live_regions": len(self._regions),
            "used_bytes": used,
            "capacity_bytes": capacity,
            "allocated_objects": self.allocated_objects,
            "live_objects": sum(
                region.object_count for region in self._regions.values()
            ),
        }

    def destroy(self) -> None:
        """Free every region (runtime shutdown)."""
        for region in list(self._regions.values()):
            self.free_region(region)
