"""Log-structured memory over file-only memory (after Rumble et al. [27]).

§2 cites "log-structured memory for DRAM-based storage" as an existing
system that "wastes space for improved performance".  This store keeps
records in append-only *segments*; each segment is one file-only-memory
region (one file, one extent).  Writes are bump appends; deletes are
tombstones; a copying cleaner compacts live records into fresh segments
and reclaims dead ones by *deleting their files* — segment reclamation is
O(1) per segment no matter how many records it held.

Record data is actually stored (in the segment files' payload) so reads
round-trip, making this a usable little storage engine, not a mock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.fom.manager import FileOnlyMemory, FomRegion
from repro.errors import MappingError
from repro.units import KIB, MIB, align_up

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process

_RECORD_ALIGN = 64
_HEADER_BYTES = 24  # key, length, liveness word


@dataclass
class LogRecord:
    """Location of one live record."""

    key: int
    segment_id: int
    offset: int
    length: int


class _Segment:
    """One append-only segment file."""

    def __init__(self, segment_id: int, backing: FomRegion) -> None:
        self.segment_id = segment_id
        self.backing = backing
        self.head = 0
        self.live_bytes = 0
        self.sealed = False

    @property
    def capacity(self) -> int:
        return self.backing.length

    def room_for(self, length: int) -> bool:
        return self.head + align_up(length + _HEADER_BYTES, _RECORD_ALIGN) <= self.capacity

    def utilization(self) -> float:
        if self.head == 0:
            return 0.0
        return self.live_bytes / self.head


class LogStructuredStore:
    """Append-only key/value store with a copying cleaner."""

    def __init__(
        self,
        fom: FileOnlyMemory,
        process: "Process",
        segment_bytes: int = 2 * MIB,
        clean_below: float = 0.5,
    ) -> None:
        if not 0.0 < clean_below < 1.0:
            raise ValueError("clean_below must be in (0, 1)")
        self._fom = fom
        self._process = process
        self._segment_bytes = segment_bytes
        self._clean_below = clean_below
        self._ids = itertools.count(1)
        self._segments: Dict[int, _Segment] = {}
        self._head: Optional[_Segment] = None
        self._index: Dict[int, LogRecord] = {}
        self.segments_cleaned = 0
        self.bytes_copied_cleaning = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: int, value: bytes) -> LogRecord:
        """Append (or overwrite) ``key``; old versions become dead bytes."""
        if not value:
            raise MappingError("empty values are not supported")
        total = align_up(len(value) + _HEADER_BYTES, _RECORD_ALIGN)
        if total > self._segment_bytes:
            raise MappingError(
                f"value of {len(value)} bytes exceeds segment size"
            )
        segment = self._writable_segment(len(value))
        offset = segment.head
        self._write_payload(segment, offset, value)
        segment.head += total
        segment.live_bytes += total
        old = self._index.get(key)
        if old is not None:
            self._kill(old)
        record = LogRecord(
            key=key, segment_id=segment.segment_id, offset=offset,
            length=len(value),
        )
        self._index[key] = record
        return record

    def delete(self, key: int) -> None:
        """Tombstone ``key``; space comes back via cleaning."""
        record = self._index.pop(key, None)
        if record is None:
            raise KeyError(key)
        self._kill(record)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: int) -> bytes:
        """Read the live value for ``key``."""
        record = self._index.get(key)
        if record is None:
            raise KeyError(key)
        segment = self._segments[record.segment_id]
        with self._fom.fs.open(segment.backing.path) as handle:
            data = handle.pread(record.offset + _HEADER_BYTES, record.length)
        return data

    def __contains__(self, key: int) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------
    def clean(self, max_segments: int = 4) -> int:
        """Compact the emptiest sealed segments; returns segments freed.

        Live records are copied to the head of the log; the dead segment
        files are deleted whole — the O(1)-per-segment reclamation the
        design buys by wasting space between cleanings.
        """
        candidates = sorted(
            (
                segment
                for segment in self._segments.values()
                if segment.sealed and segment.utilization() < self._clean_below
            ),
            key=_Segment.utilization,
        )[:max_segments]
        freed = 0
        for segment in candidates:
            movers = [
                record
                for record in self._index.values()
                if record.segment_id == segment.segment_id
            ]
            for record in movers:
                value = self.get(record.key)
                self.bytes_copied_cleaning += len(value)
                self.put(record.key, value)
            del self._segments[segment.segment_id]
            self._fom.release(segment.backing)
            self.segments_cleaned += 1
            freed += 1
        return freed

    # ------------------------------------------------------------------
    # Stats / internals
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Log occupancy and cleaning totals."""
        capacity = sum(s.capacity for s in self._segments.values())
        live = sum(s.live_bytes for s in self._segments.values())
        appended = sum(s.head for s in self._segments.values())
        return {
            "segments": len(self._segments),
            "live_records": len(self._index),
            "capacity_bytes": capacity,
            "live_bytes": live,
            "dead_bytes": appended - live,
            "utilization": live / capacity if capacity else 0.0,
            "segments_cleaned": self.segments_cleaned,
            "bytes_copied_cleaning": self.bytes_copied_cleaning,
        }

    def _writable_segment(self, value_len: int) -> _Segment:
        if self._head is not None and self._head.room_for(value_len):
            return self._head
        if self._head is not None:
            self._head.sealed = True
        backing = self._fom.allocate(self._process, self._segment_bytes)
        segment = _Segment(next(self._ids), backing)
        self._segments[segment.segment_id] = segment
        self._head = segment
        return segment

    def _write_payload(self, segment: _Segment, offset: int, value: bytes) -> None:
        with self._fom.fs.open(segment.backing.path) as handle:
            handle.pwrite(offset + _HEADER_BYTES, value)

    def _kill(self, record: LogRecord) -> None:
        segment = self._segments.get(record.segment_id)
        if segment is not None:
            segment.live_bytes -= align_up(
                record.length + _HEADER_BYTES, _RECORD_ALIGN
            )

    def destroy(self) -> None:
        """Release every segment file."""
        for segment in list(self._segments.values()):
            self._fom.release(segment.backing)
        self._segments.clear()
        self._index.clear()
        self._head = None
