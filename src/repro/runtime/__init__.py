"""Language-runtime layer: O(1) memory management above the OS.

The paper's conclusion extends the principle upward: "how systems manage
memory should be reinvestigated and rethought to achieve O(1) operations,
from processors, through the operating system, and up to **language
runtimes** and applications."  And §2 points at the existing evidence:
"recent efforts such as TCMalloc and log-structured memory that waste
space for improved performance show some of the potential available."

Two runtime designs built on file-only memory:

* :mod:`repro.runtime.objheap` — region-based object allocation: bump
  pointers inside file-backed regions, no per-object free, whole regions
  released as whole files;
* :mod:`repro.runtime.logstruct` — a log-structured store (after Rumble
  et al. [27]): append-only segments, copying cleaner, segment
  reclamation by file deletion.
"""

from repro.runtime.objheap import ObjectHeap, ObjRef, Region
from repro.runtime.logstruct import LogRecord, LogStructuredStore

__all__ = ["LogRecord", "LogStructuredStore", "ObjRef", "ObjectHeap", "Region"]
