"""The simulated machine: hardware + memory + file systems + processes.

:class:`Kernel` is the composition root.  It builds the clock, cost model,
cache, TLBs and CPU; carves physical memory into a DRAM region (buddy-
managed) and an NVM region (extent-managed); mounts a tmpfs and a PMFS;
and hands out processes whose address spaces are wired into all of it.

Typical use::

    from repro.kernel import Kernel
    from repro.units import MIB

    kernel = Kernel.standard()
    proc = kernel.spawn("worker")
    sys = kernel.syscalls(proc)
    fd = sys.open(kernel.tmpfs, "/data", create=True, size=1 * MIB)
    va = sys.mmap(1 * MIB, fd=fd)
    kernel.access(proc, va)          # demand fault, charged
    print(kernel.clock.now)           # simulated nanoseconds
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, MemoryPoisonError
from repro.fs.pmfs import BlockAllocator, Pmfs
from repro.fs.tmpfs import Tmpfs
from repro.hw.cache import CacheModel
from repro.hw.clock import SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.hw.cpu import Cpu
from repro.hw.rtlb import RangeTlb
from repro.hw.tlb import Tlb
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscalls
from repro.lint import allocbound, allocfree, complexity, o1
from repro.mem.buddy import BuddyAllocator
from repro.mem.frame_meta import FrameTable
from repro.mem.physical import PhysicalMemory
from repro.mem.zeropool import ZeroPool
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.paging.pagetable import PageTable, Pte
from repro.paging.walker import PageWalker
from repro.units import GIB, MIB, PAGE_SIZE
from repro.vm.addrspace import AddressSpace
from repro.vm.reclaimd import LruLists
from repro.vm.swap import SwapDevice


@dataclass(frozen=True)
class MachineConfig:
    """Knobs for assembling a simulated machine."""

    dram_bytes: int = 4 * GIB
    nvm_bytes: int = 16 * GIB
    page_table_levels: int = 4
    #: 2-D (nested) page walks, as under virtualization (§2's 35-reference
    #: worst case for 5-level EPT).
    virtualized: bool = False
    #: Install a range TLB + range-table support (the paper's proposed
    #: hardware, §3.2/§4.3).
    range_hardware: bool = False
    range_tlb_entries: int = 32
    #: Align PMFS extents to this many frames (512 = 2 MiB) so file-only
    #: memory can use huge mappings / linked subtrees.
    pmfs_extent_align_frames: int = 1
    #: Swap device capacity in pages; 0 = no swap (the paper's assumption).
    swap_pages: int = 0
    #: Pre-zeroed pool target (frames); 0 = no pool (baseline zeroes
    #: on allocation).
    zeropool_frames: int = 0
    #: Buddy max order; 18 allows 1 GiB contiguous DRAM blocks.
    buddy_max_order: int = 18
    #: Cores in the machine; invalidations broadcast IPIs to cpus - 1
    #: remote cores (one simulated core executes, the rest cost).
    cpus: int = 1
    #: fork implementation: ``"cow"`` shares whole page-table subtrees
    #: with the child (O(#vmas + #windows)); ``"eager"`` copies every
    #: resident PTE (the paper's motivating baseline, pinned by the
    #: golden figures).
    fork_policy: str = "cow"
    #: munmap implementation: ``"extent"`` drops whole PTE subtrees with
    #: one batched TLB range invalidation; ``"page"`` tears down PTEs one
    #: page at a time (the baseline).
    munmap_policy: str = "extent"


class Kernel:
    """A fully wired simulated machine."""

    def __init__(self, config: Optional[MachineConfig] = None, costs: Optional[CostModel] = None) -> None:
        self.config = config or MachineConfig()
        self.clock = SimClock()
        #: Counters + latency histograms; an EventCounters superset, so
        #: every component keeps its ``bump()`` interface.
        self.counters = MetricsRegistry()
        #: Trace recorder (disabled until ``measure(trace=True)`` or an
        #: explicit ``kernel.tracer.enable()``).
        self.tracer = Tracer(self.clock, metrics=self.counters)
        self.counters.tracer = self.tracer
        #: Armed fault plan (see :meth:`arm_chaos`); ``None`` = no chaos.
        self.chaos = None
        self.counters.chaos = None
        #: Armed sanitizer suite (see :meth:`arm_sanitizers`); ``None`` = off.
        self.sanitizers = None
        self.counters.sanitize = None
        #: Armed RAS engine (see :meth:`arm_ras`); ``None`` = perfect media.
        self.ras = None
        self.counters.ras = None
        #: Armed wall-clock profiler (see :meth:`arm_profiler`); ``None``
        #: = no wall-time attribution.
        self.profiler = None
        self.counters.profiler = None
        #: Armed QoS memory controller (see :meth:`arm_qos`); ``None`` =
        #: no per-tenant accounting.
        self.qos = None
        self.counters.qos = None
        self.costs = costs or CostModel()

        cfg = self.config
        if cfg.dram_bytes < 64 * MIB:
            raise ConfigurationError("need at least 64 MiB of DRAM")
        if cfg.fork_policy not in ("eager", "cow"):
            raise ConfigurationError(
                f"fork_policy must be 'eager' or 'cow', got {cfg.fork_policy!r}"
            )
        if cfg.munmap_policy not in ("page", "extent"):
            raise ConfigurationError(
                f"munmap_policy must be 'page' or 'extent', "
                f"got {cfg.munmap_policy!r}"
            )

        # --- physical memory -------------------------------------------------
        self.physmem = PhysicalMemory()
        self.dram_region = self.physmem.add_region(
            cfg.dram_bytes, MemoryTechnology.DRAM, name="dram0"
        )
        self.nvm_region = None
        if cfg.nvm_bytes:
            self.nvm_region = self.physmem.add_region(
                cfg.nvm_bytes, MemoryTechnology.NVM, name="nvm0"
            )

        # --- hardware ---------------------------------------------------------
        self.cache = CacheModel(
            self.clock, self.costs, self.counters, tech_of=self.physmem.tech_of
        )
        self.tlb = Tlb()
        self.tlb.tracer = self.tracer
        self.rtlb = RangeTlb(cfg.range_tlb_entries) if cfg.range_hardware else None
        self.cpu = Cpu(
            self.clock, self.costs, self.counters, self.cache, self.tlb, self.rtlb
        )
        if cfg.cpus < 1:
            raise ConfigurationError(f"cpus must be >= 1, got {cfg.cpus}")
        self.cpu.remote_cpus = cfg.cpus - 1
        self.walker = PageWalker(
            self.cache,
            self.clock,
            self.costs,
            self.counters,
            virtualized=cfg.virtualized,
        )

        # --- allocators & metadata -------------------------------------------
        self.dram_buddy = BuddyAllocator(
            self.dram_region,
            max_order=cfg.buddy_max_order,
            clock=self.clock,
            costs=self.costs,
            counters=self.counters,
        )
        self.frame_table = FrameTable(self.clock, self.costs, self.counters)
        self.zeropool = None
        if cfg.zeropool_frames:
            self.zeropool = ZeroPool(
                self.dram_buddy,
                cfg.zeropool_frames,
                clock=self.clock,
                costs=self.costs,
                counters=self.counters,
            )
            self.zeropool.refill()

        # --- file systems -----------------------------------------------------
        self.tmpfs = Tmpfs("tmpfs", self.dram_buddy, self.clock, self.costs, self.counters)
        self.pmfs: Optional[Pmfs] = None
        self.nvm_allocator: Optional[BlockAllocator] = None
        if self.nvm_region is not None:
            self.nvm_allocator = BlockAllocator(
                self.nvm_region, self.clock, self.costs, self.counters
            )
            self.pmfs = Pmfs(
                "pmfs",
                self.nvm_allocator,
                self.clock,
                self.costs,
                self.counters,
                dax=True,
                extent_align_frames=cfg.pmfs_extent_align_frames,
            )

        # --- swap & reclaim ----------------------------------------------------
        self.swap: Optional[SwapDevice] = None
        if cfg.swap_pages:
            self.swap = SwapDevice(cfg.swap_pages, self.clock, self.costs, self.counters)
        self.lru = LruLists(self.frame_table)

        # --- processes ----------------------------------------------------------
        self._pids = itertools.count(1)
        self._asids = itertools.count(1)
        self.processes: Dict[int, Process] = {}
        self._current_asid: Optional[int] = None

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def standard(cls, **overrides: object) -> "Kernel":
        """A machine with the default config, tweaked by keyword."""
        return cls(MachineConfig(**overrides))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    @o1(note="empty address space; table frames come from a deferred source")
    def spawn(
        self, name: str, track_lru: bool = False, cgroup=None
    ) -> Process:
        """Create a process with an empty address space.

        ``cgroup`` (a :class:`~repro.qos.memcg.MemCg` or a registered
        cgroup name) attaches the new process to a QoS memory cgroup;
        it requires an armed controller (:meth:`arm_qos`).
        """
        asid = next(self._asids)
        page_table = PageTable(
            levels=self.config.page_table_levels,
            clock=self.clock,
            costs=self.costs,
            counters=self.counters,
            # o1: allow(flow-bounded) -- deferred frame source; charged to the faulting access
            frame_source=lambda: self.dram_buddy.alloc(0),
            frame_sink=self.dram_buddy.free_many,
        )
        space = AddressSpace(
            asid=asid,
            page_table=page_table,
            walker=self.walker,
            clock=self.clock,
            costs=self.costs,
            counters=self.counters,
            frame_table=self.frame_table,
        )
        space.cpu = self.cpu
        space.munmap_policy = self.config.munmap_policy
        if track_lru:
            space.lru = self.lru
        process = Process(pid=next(self._pids), name=name, space=space)
        self.processes[process.pid] = process
        self.tracer.process_names[process.pid] = name
        if cgroup is not None:
            if self.qos is None:
                raise ConfigurationError(
                    "spawn(cgroup=...) needs an armed QoS controller; "
                    "call kernel.arm_qos() first"
                )
            self.qos.attach(process, cgroup)
        return process

    def syscalls(self, process: Process) -> Syscalls:
        """Syscall interface bound to ``process``."""
        return Syscalls(self, process)

    @o1(
        note="COW policy: per-VMA subtree shares, one pointer write per "
        "2 MiB window; the eager per-PTE policy stays selectable as the "
        "paper's baseline"
    )
    def fork(self, parent: Process) -> Process:
        """Clone ``parent`` with copy-on-write semantics.

        Under ``fork_policy="cow"`` (the default) the child *shares* the
        parent's bottom-level page-table nodes — one pointer write plus
        one write-protect bit per 2 MiB window — and the per-page work
        happens lazily at the first write fault (charged to the access,
        not the syscall).  Under ``fork_policy="eager"`` every resident
        PTE is copied and downgraded at fork time: the paper's motivating
        baseline, linear in resident pages, pinned by the golden figures.
        """
        if not parent.alive:
            raise ConfigurationError(f"cannot fork dead pid {parent.pid}")
        if self.config.fork_policy == "eager":
            # o1: allow(flow-bounded) -- eager mode is the measured baseline; COW is the O(1) claim
            return self._fork_eager(parent)
        # o1: allow(flow-bounded) -- per VMA and per 2 MiB window, 512x coarser than pages
        return self._fork_cow(parent)

    def _fork_begin(self, parent: Process):
        child = self.spawn(f"{parent.name}-child")
        if self.qos is not None:
            # Children inherit the parent's cgroup, like clone(2).
            parent_cg = self.qos.cgroup_of(parent.pid)
            if parent_cg is not None:
                self.qos.attach(child, parent_cg)
        self.counters.bump("fork_call")
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.begin("fork", "kernel", pid=parent.pid)
        return child, tracer, traced

    @complexity("n", note="one dup per open descriptor")
    def _fork_finish(self, parent: Process, child: Process, tracer, traced) -> None:
        # Duplicate the descriptor table (shared offsets are not modeled).
        for _fd, handle in parent.fds():
            dup = handle.inode.fs.open_inode(handle.inode)
            dup.pos = handle.pos
            child.install_fd(dup)
        if traced:
            tracer.end(args={"child_pid": child.pid})

    @complexity("n", note="one duplicate frame per pre-fork private copy (rare)")
    def _fork_clone_vma(self, child: Process, vma) -> tuple:
        """Shared per-VMA fork work; returns (child_vma, cow)."""
        from repro.vm.vma import Protection, Vma

        add_user = getattr(vma.backing, "add_user", None)
        if add_user is not None:
            add_user()
        cow = vma.is_private() and bool(vma.prot & Protection.WRITE)
        if cow:
            vma.cow_shared = True
        child_vma = Vma(
            start=vma.start,
            end=vma.end,
            prot=vma.prot,
            flags=vma.flags,
            backing=vma.backing,
            backing_offset=vma.backing_offset,
            name=vma.name,
            cow_shared=vma.cow_shared,
        )
        child.space.adopt_vma(child_vma)
        # Eagerly duplicate the parent's existing private copies for
        # the child (rare; keeps sharing bookkeeping simple).
        for page_index, _src_pfn in vma.private_copies.items():
            # o1: allow(flow-bounded) -- order-0 allocs hit the exact free list
            copy_pfn = self.dram_buddy.alloc(0)
            self.clock.advance(self.costs.copy_line_ns * 128)
            child_vma.private_copies[page_index] = copy_pfn
        return child_vma, cow

    @complexity("n", note="the per-resident-PTE baseline the paper fixes")
    def _fork_eager(self, parent: Process) -> Process:
        """Per-resident-PTE fork: the baseline the paper fixes."""
        child, tracer, traced = self._fork_begin(parent)
        for vma in parent.space.vmas:
            # o1: allow(flow-bounded) -- the VMAs partition the declared n pages
            child_vma, cow = self._fork_clone_vma(child, vma)
            # Copy resident translations, downgrading COW pages.
            # o1: allow(flow-bounded) -- the VMAs partition the declared n leaves
            leaves = list(self._leaves_in_range(parent.space, vma.start, vma.end))
            # o1: allow(o1-nested-size-loop) -- the VMAs partition the declared n leaves
            for page_va, pte in leaves:
                self.clock.advance(self.costs.fork_page_copy_ns)
                page_index = vma.backing_page(page_va)
                child_pfn = child_vma.private_copies.get(page_index, pte.pfn)
                writable = pte.writable and not cow
                child.space.page_table.map(
                    page_va, child_pfn, page_size=pte.page_size,
                    writable=writable,
                )
                if cow and pte.writable:
                    parent.space.page_table.protect(
                        page_va, writable=False, page_size=pte.page_size
                    )
            if cow:
                self.cpu.invalidate_space_range(
                    vma.start, vma.length, asid=parent.space.asid
                )
        self._fork_finish(parent, child, tracer, traced)
        return child

    @complexity("n", note="per VMA and per resident 2 MiB window, not per page")
    def _fork_cow(self, parent: Process) -> Process:
        """Subtree-sharing fork: O(#vmas + #resident 2 MiB windows).

        The child links each of the parent's bottom-level page-table
        nodes by reference; windows overlapping a COW VMA are linked
        write-protected in both tables, so the first write anywhere in a
        window faults and breaks the share (see
        ``AddressSpace._cow_break_window``).  Huge-page leaves above the
        bottom level cannot be shared by node reference and are copied
        directly (rare).
        """
        child, tracer, traced = self._fork_begin(parent)
        self.counters.bump("fork_cow")
        cow_vmas = []
        child_vmas = {}
        pc_windows = set()
        parent_pt = parent.space.page_table
        child_pt = child.space.page_table
        window_span = parent_pt.span_at(parent_pt.bottom_depth - 1)
        for vma in parent.space.vmas:
            # o1: allow(flow-bounded) -- the VMAs partition the declared n windows
            child_vma, cow = self._fork_clone_vma(child, vma)
            child_vmas[id(vma)] = child_vma
            if cow:
                cow_vmas.append(vma)
            # Windows holding pre-fork private COW copies cannot be
            # shared by node reference: the child must map its *own*
            # duplicates, or the parent freeing its copy would leave the
            # child translating a dead frame.  Those windows take the
            # eager per-leaf path below (rare; see _fork_clone_vma).
            # o1: allow(o1-nested-size-loop) -- pre-fork private copies are rare
            for page_index in vma.private_copies:
                pc_va = vma.start + (page_index - vma.backing_offset) * PAGE_SIZE
                pc_windows.add(pc_va - pc_va % window_span)
        windows = list(parent_pt.iter_bottom_subtrees())
        for window_va, entry in windows:
            if isinstance(entry, Pte):
                # Huge leaf above the bottom level: copy it directly.
                vma = parent.space.find_vma(window_va)
                cow = vma is not None and vma.needs_cow()
                self.clock.advance(self.costs.fork_page_copy_ns)
                child_pt.map(
                    window_va, entry.pfn, page_size=entry.page_size,
                    writable=entry.writable and not cow,
                )
                if cow and entry.writable:
                    parent_pt.protect(
                        window_va, writable=False, page_size=entry.page_size
                    )
                continue
            if window_va in pc_windows:
                # o1: allow(flow-bounded) -- unshareable windows are rare and disjoint
                self._fork_copy_window(
                    parent, child, child_vmas, window_va,
                    window_va + window_span,
                )
                continue
            # o1: allow(o1-nested-size-loop) -- a handful of COW VMAs per test
            wp = any(
                vma.overlaps(window_va, window_va + window_span)
                for vma in cow_vmas
            )
            child_pt.link_subtree(window_va, entry, write_protect=wp)
            if wp:
                parent_pt.window_write_protect(window_va)
        for vma in cow_vmas:
            # The parent's TLB may cache pre-fork writable entries for
            # pages now behind a write-protect bit; shoot them down.
            self.cpu.invalidate_space_range(
                vma.start, vma.length, asid=parent.space.asid
            )
        self._fork_finish(parent, child, tracer, traced)
        return child

    @complexity("n", note="per-leaf copy of one unshareable window")
    def _fork_copy_window(
        self, parent: Process, child: Process, child_vmas: dict,
        window_va: int, window_end: int,
    ) -> None:
        """Eager per-leaf copy of one window that cannot be share-linked.

        Used for windows whose leaves include pre-fork private COW
        copies: the child owns duplicate frames there, so a by-reference
        subtree share would leave it translating the parent's copies.
        """
        parent_pt = parent.space.page_table
        child_pt = child.space.page_table
        leaves = list(self._leaves_in_range(parent.space, window_va, window_end))
        for page_va, pte in leaves:
            vma = parent.space.find_vma(page_va)
            if vma is None:
                continue
            child_vma = child_vmas[id(vma)]
            cow = vma.needs_cow()
            self.clock.advance(self.costs.fork_page_copy_ns)
            page_index = vma.backing_page(page_va)
            child_pfn = child_vma.private_copies.get(page_index, pte.pfn)
            child_pt.map(
                page_va, child_pfn, page_size=pte.page_size,
                writable=pte.writable and not cow,
            )
            if cow and pte.writable:
                parent_pt.protect(
                    page_va, writable=False, page_size=pte.page_size
                )

    @staticmethod
    @complexity("n", note="one leaf walk; the range filter subsets it")
    def _leaves_in_range(space: AddressSpace, start: int, end: int):
        # o1: allow(flow-bounded) -- one pass over the declared n leaves
        for page_va, pte in space.page_table.iter_leaves():
            if start <= page_va < end:
                yield page_va, pte

    # ------------------------------------------------------------------
    # CPU entry points
    # ------------------------------------------------------------------
    @allocfree(note="asid compare; the PCID switch fires only on process change")
    def _ensure_current(self, process: Process) -> None:
        qos = getattr(self.counters, "qos", None)
        if qos is not None:
            # Demand allocations taken on this access path bill the
            # running process's cgroup.
            qos.enter_pid(process.pid)
        if self._current_asid != process.space.asid:
            # PCID-style switch: no flush, but the CR3 write is charged.
            # alloc: allow(cold-call) -- fires only when the running process changes
            self.cpu.switch_address_space(process.space.asid, flush=False)
            self._current_asid = process.space.asid

    @o1(note="one access; any fault charges its own, separate path")
    @allocfree(note="delegates to the certified CPU path; poison recovery is cold")
    def access(self, process: Process, vaddr: int, write: bool = False) -> int:
        """One user-mode memory access; returns the physical address."""
        self._ensure_current(process)
        if self.tracer.enabled:
            self.tracer.current_pid = process.pid
        if self.ras is None:
            return self.cpu.access(process.space, vaddr, write=write)
        try:
            return self.cpu.access(process.space, vaddr, write=write)
        except MemoryPoisonError as exc:
            # Machine check.  Graceful degradation: file-backed data is
            # migrated off the failing media and the access retried;
            # anonymous/private memory SIGBUS-kills only this process.
            if not self.ras.handle_poison(process, vaddr, write, exc):
                raise
            self.counters.bump("ras_recovered_access")
            return self.cpu.access(process.space, vaddr, write=write)

    @complexity("n", note="one access per stride step")
    @allocbound(2, note="one trace-span argument dict when the tracer is armed")
    def access_range(
        self,
        process: Process,
        vaddr: int,
        size: int,
        write: bool = False,
        stride: int = PAGE_SIZE,
    ) -> None:
        """Touch ``[vaddr, vaddr+size)`` at ``stride`` intervals.

        The default page stride is the paper's Figure 1b workload:
        "access one byte of each page".
        """
        self._ensure_current(process)
        tracer = self.tracer
        if not tracer.enabled:
            self.cpu.access_range(
                process.space, vaddr, size, write=write, stride=stride
            )
            return
        tracer.current_pid = process.pid
        # alloc: allow(cold-call) -- tracer-armed runs only
        tracer.begin(
            "access_range", "cpu", args={"vaddr": hex(vaddr), "size": size}
        )
        try:
            self.cpu.access_range(
                process.space, vaddr, size, write=write, stride=stride
            )
        finally:
            # alloc: allow(cold-call) -- tracer-armed runs only
            tracer.end()

    def warm_file(self, inode) -> None:
        """Install a file's data lines in the LLC, as if just written.

        The paper's measurements read files "after writing to the
        allocated pages first"; this models that prior write without
        charging it to the measured region.
        """
        fs = inode.fs
        npages = inode.page_count
        if npages == 0:
            return
        backing = fs.backing_for(inode)
        # frame_runs charges its (small) lookup costs; warm before opening
        # a measure() block so they land outside the measured region.
        for _index, pfn, run in backing.frame_runs(0, npages):
            self.cache.warm_range(pfn * PAGE_SIZE, run * PAGE_SIZE)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def arm_chaos(self, plan) -> None:
        """Arm a :class:`~repro.chaos.plan.FaultPlan` on this machine.

        Instrumented hot paths reach the plan through
        ``counters.chaos`` — the same back-reference pattern the tracer
        uses — so an unarmed machine pays one ``getattr`` per site.
        """
        plan.bind(self.counters)
        self.chaos = plan
        self.counters.chaos = plan

    def disarm_chaos(self) -> None:
        """Detach the armed fault plan (it keeps its hit history)."""
        self.chaos = None
        self.counters.chaos = None

    # ------------------------------------------------------------------
    # Sanitizers
    # ------------------------------------------------------------------
    def arm_sanitizers(self, suite=None):
        """Arm a :class:`~repro.sanitize.SanitizerSuite` on this machine.

        Same back-reference pattern as :meth:`arm_chaos`: instrumented
        hot paths reach the suite through ``counters.sanitize``, so an
        unarmed machine pays one ``getattr`` per site and the armed
        hooks never touch the simulated clock.
        """
        if suite is None:
            from repro.sanitize import SanitizerSuite

            suite = SanitizerSuite()
        suite.bind(self.counters)
        self.sanitizers = suite
        self.counters.sanitize = suite
        return suite

    def disarm_sanitizers(self) -> None:
        """Detach the armed suite (it keeps its collected violations)."""
        self.sanitizers = None
        self.counters.sanitize = None

    # ------------------------------------------------------------------
    # RAS (media faults, scrubbing, retirement)
    # ------------------------------------------------------------------
    def arm_ras(self, engine=None, model=None):
        """Arm a :class:`~repro.ras.RasEngine` on this machine.

        Same back-reference pattern as :meth:`arm_chaos`: the CPU access
        path and the VFS copy loop reach the engine through
        ``counters.ras``, so an unarmed machine pays one ``getattr`` per
        site, never charges the clock, and produces bit-identical
        figures.  Pass ``model`` (a
        :class:`~repro.ras.MediaFaultModel`) to control the seeded fault
        population, or a pre-built ``engine`` to reuse one.
        """
        if engine is None:
            from repro.ras import RasEngine

            engine = RasEngine(self, model=model)
        self.ras = engine
        self.counters.ras = engine
        return engine

    def disarm_ras(self) -> None:
        """Detach the armed RAS engine (it keeps its model state)."""
        self.ras = None
        self.counters.ras = None

    # ------------------------------------------------------------------
    # Wall-clock profiling
    # ------------------------------------------------------------------
    def arm_profiler(self, profiler=None):
        """Arm a :class:`~repro.perf.profiler.WallProfiler` here.

        Same back-reference pattern as :meth:`arm_chaos`: the tracer
        reaches the profiler through one attribute check inside
        ``begin``/``end``, and those only run while tracing is enabled —
        an unarmed machine's hot paths are untouched and its golden
        figures bit-identical.  Arming enables the tracer (spans carry
        the wall-clock samples); the profiler itself reads
        ``time.perf_counter_ns`` and **never** touches the simulated
        clock, so even an armed machine's simulated results are
        unchanged.
        """
        if profiler is None:
            from repro.perf import WallProfiler

            profiler = WallProfiler()
        self.profiler = profiler
        self.counters.profiler = profiler
        self.tracer.profiler = profiler
        self.tracer.enable()
        return profiler

    def disarm_profiler(self) -> None:
        """Detach the profiler (it keeps its attributions).

        Tracing stays in whatever state it is in — disarming only stops
        the wall-clock sampling.
        """
        self.profiler = None
        self.counters.profiler = None
        self.tracer.profiler = None

    # ------------------------------------------------------------------
    # Per-tenant memory QoS
    # ------------------------------------------------------------------
    def arm_qos(self, controller=None, config=None):
        """Arm the per-tenant memory controller (``repro.qos``) here.

        Same back-reference pattern as :meth:`arm_chaos`: the allocator
        charge sites reach the controller through ``counters.qos``, so
        an unarmed machine pays one ``getattr`` per site and its golden
        figures stay bit-identical.  An armed controller with no limits
        configured (the default root cgroup) accounts usage without ever
        touching the simulated clock; watermarked cgroups add reclaim
        backpressure, throttling and the OOM killer — all charged where
        the pressure happens.

        Returns the armed :class:`~repro.qos.controller.QosController`.
        """
        if controller is None:
            from repro.qos.controller import QosController

            controller = QosController(self, config=config)
        self.qos = controller
        self.counters.qos = controller
        return controller

    def disarm_qos(self) -> None:
        """Detach the QoS controller (its accounting stops updating)."""
        self.qos = None
        self.counters.qos = None

    # ------------------------------------------------------------------
    # Whole-machine events
    # ------------------------------------------------------------------
    @complexity("n", note="one-time whole-machine teardown; not a hot path")
    def crash(self) -> None:
        """Power failure: volatile state vanishes, persistent FS survives.

        Processes die, DRAM-backed tmpfs loses everything, caches and
        TLBs empty; PMFS replays its journal.
        """
        san = getattr(self.counters, "sanitize", None)
        if san is not None:
            # Volatile shadow state (translations, open journal epochs)
            # dies with the power, *before* teardown frees any frames.
            san.on_machine_crash()
        for process in list(self.processes.values()):
            if process.alive:
                process.exit()
        self.processes.clear()
        self.tmpfs.crash()
        if self.pmfs is not None:
            self.pmfs.crash()
        self.cache.flush()
        self.tlb.flush_all()
        if self.rtlb is not None:
            self.rtlb.flush_all()
        self.counters.bump("machine_crash")
        self.tracer.instant("machine_crash", "kernel", pid=0)

    # ------------------------------------------------------------------
    # Measurement helper
    # ------------------------------------------------------------------
    def measure(self, trace: bool = False):
        """Context manager measuring simulated ns and counter deltas.

        With ``trace=True`` the machine's tracer records the region under
        a root ``measure`` span, and the result additionally carries the
        trace events, the per-(pid, subsystem) cost :attr:`attribution
        <_Measurement.attribution>` (whose values sum to ``elapsed_ns``
        exactly), and a :meth:`~_Measurement.write_trace` helper.

        >>> kernel = Kernel.standard()
        >>> with kernel.measure() as m:
        ...     kernel.clock.advance(10)
        >>> m.elapsed_ns
        10
        """
        return _Measurement(self, trace=trace)


class _Measurement:
    """Result object for :meth:`Kernel.measure`."""

    def __init__(self, kernel: Kernel, trace: bool = False) -> None:
        self._kernel = kernel
        self.trace = trace
        self.elapsed_ns = 0
        self.counter_delta: Dict[str, int] = {}
        #: (pid, subsystem) -> simulated ns of span self time in the
        #: measured region (trace=True only); sums to ``elapsed_ns``.
        self.attribution: Dict = {}
        #: Trace events recorded in the region (trace=True only; the
        #: oldest may be missing if the tracer ring overflowed).
        self.events: List = []
        self._start_ns = 0
        self._snapshot: Dict[str, int] = {}
        self._was_enabled = False
        self._attr_snapshot: Dict = {}
        self._events_before = 0

    def __enter__(self) -> "_Measurement":
        if self.trace:
            tracer = self._kernel.tracer
            self._was_enabled = tracer.enabled
            tracer.enable()
            self._attr_snapshot = dict(tracer.attribution)
            self._events_before = tracer.total_events
            tracer.begin("measure", "kernel", pid=0)
        self._start_ns = self._kernel.clock.now
        self._snapshot = self._kernel.counters.snapshot()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_ns = self._kernel.clock.now - self._start_ns
        self.counter_delta = self._kernel.counters.delta_since(self._snapshot)
        if self.trace:
            tracer = self._kernel.tracer
            tracer.end()
            self.attribution = tracer.attribution_since(self._attr_snapshot)
            self.events = tracer.events_since(self._events_before)
            if not self._was_enabled:
                tracer.disable()

    def subsystem_totals(self) -> Dict[str, int]:
        """Attributed self time per subsystem (trace=True only)."""
        totals: Dict[str, int] = {}
        for (_pid, subsystem), ns in self.attribution.items():
            totals[subsystem] = totals.get(subsystem, 0) + ns
        return totals

    def write_trace(self, path: str) -> int:
        """Write the region's events as Chrome-trace JSON; returns count."""
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(
            path, self.events, self._kernel.tracer.process_names
        )
