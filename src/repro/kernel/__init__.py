"""Kernel facade: machine assembly, processes, and the syscall layer.

:class:`~repro.kernel.kernel.Kernel` wires the hardware models, physical
memory, paging, vm and file systems into one simulated machine with a
POSIX-ish syscall surface.  Benchmarks and the paper's O(1) designs all
drive the system through this package.
"""

from repro.kernel.kernel import Kernel, MachineConfig
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscalls

__all__ = ["Kernel", "MachineConfig", "Process", "Syscalls"]
