"""Processes: an address space plus a file-descriptor table.

A deliberately small ``task_struct``: enough state that process launch and
exit have measurable costs (VMA teardown is linear in mappings for the
baseline; file-only memory replaces it with a handful of unlinks).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import BadFileDescriptorError, ProcessError
from repro.fs.vfs import FileHandle
from repro.lint import complexity
from repro.vm.addrspace import AddressSpace


class Process:
    """One simulated process."""

    def __init__(self, pid: int, name: str, space: AddressSpace) -> None:
        self.pid = pid
        self.name = name
        self.space = space
        self._fds: Dict[int, FileHandle] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands
        self.alive = True

    # ------------------------------------------------------------------
    # File descriptors
    # ------------------------------------------------------------------
    def install_fd(self, handle: FileHandle) -> int:
        """Register an open handle; returns its descriptor."""
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        return fd

    def fd(self, fd: int) -> FileHandle:
        """Resolve a descriptor (raises EBADF-style on unknown)."""
        handle = self._fds.get(fd)
        if handle is None:
            raise BadFileDescriptorError(f"pid {self.pid}: fd {fd} is not open")
        return handle

    def remove_fd(self, fd: int) -> FileHandle:
        """Detach and return a descriptor's handle."""
        handle = self._fds.pop(fd, None)
        if handle is None:
            raise BadFileDescriptorError(f"pid {self.pid}: fd {fd} is not open")
        return handle

    @property
    def open_fd_count(self) -> int:
        """Number of open descriptors."""
        return len(self._fds)

    def fds(self):
        """(fd, handle) pairs of all open descriptors."""
        return list(self._fds.items())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @complexity("n", note="one-time teardown: every fd closed, every VMA unmapped")
    def exit(self) -> None:
        """Terminate: close every fd and tear down the address space.

        The teardown is the baseline's linear cost — every VMA removed,
        every resident PTE unmapped, every anon frame freed.
        """
        if not self.alive:
            raise ProcessError(f"pid {self.pid} already exited")
        self.alive = False
        for fd in list(self._fds):
            self._fds.pop(fd).close()
        for vma in self.space.vmas:
            # o1: allow(flow-bounded) -- the VMAs partition the declared n pages
            self.space.munmap(vma.start, vma.length)
        # Return the page-table node frames themselves (one batched free),
        # so both fork policies leave an identical frame census behind.
        self.space.page_table.release()

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, alive={self.alive})"
