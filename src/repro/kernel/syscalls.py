"""Syscall layer: the user/kernel boundary with its crossing costs.

Every call charges ``syscall_entry_ns`` + ``syscall_exit_ns`` around the
kernel work, because the boundary itself is part of what the paper
measures — e.g. the observation that a ``read()`` system call can beat
touching cold mapped memory (§3.2) only holds when both sides' fixed
costs are accounted.

The mmap path reproduces the semantics Figure 1 measures: MAP_PRIVATE
returns after VMA setup (constant time), MAP_POPULATE pre-fills every PTE
(linear), and mapping a DAX file charges the extra setup that makes the
student-report's DAX mmap ~15 us vs tmpfs's ~8 us.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import MappingError
from repro.fs.dax import mmap_setup_extra_ns
from repro.fs.vfs import FileSystem
from repro.lint import complexity, o1
from repro.units import PAGE_SIZE
from repro.vm.vma import AnonBacking, MapFlags, Protection, Vma

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


class Syscalls:
    """POSIX-ish syscall interface bound to one process."""

    def __init__(self, kernel: "Kernel", process: "Process") -> None:
        self._kernel = kernel
        self._process = process

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _enter(self, name: str) -> None:
        self._kernel.clock.advance(self._kernel.costs.syscall_entry_ns)
        qos = getattr(self._kernel.counters, "qos", None)
        if qos is not None:
            # Kernel work done on this call bills the caller's cgroup.
            qos.enter_pid(self._process.pid)
        self._kernel.counters.bump(f"sys_{name}")
        tracer = self._kernel.tracer
        if tracer.enabled:
            tracer.current_pid = self._process.pid
            tracer.begin(f"sys_{name}", "kernel", pid=self._process.pid)

    def _exit(self) -> None:
        self._kernel.clock.advance(self._kernel.costs.syscall_exit_ns)
        if self._kernel.tracer.enabled:
            self._kernel.tracer.end()

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    @complexity("n", note="path walk, plus the extent preallocation on create")
    def open(
        self,
        fs: FileSystem,
        path: str,
        create: bool = False,
        size: int = 0,
    ) -> int:
        """Open (optionally create+preallocate) a file; returns an fd."""
        self._enter("open")
        try:
            handle = fs.open(path, create=create, size=size)
            return self._process.install_fd(handle)
        finally:
            self._exit()

    def close(self, fd: int) -> None:
        """Close a descriptor."""
        self._enter("close")
        try:
            self._process.remove_fd(fd).close()
        finally:
            self._exit()

    @complexity("n", note="per page copied through the kernel")
    def read(self, fd: int, length: int) -> bytes:
        """Read from the descriptor's offset."""
        self._enter("read")
        try:
            self._kernel.clock.advance(self._kernel.costs.fd_lookup_ns)
            return self._process.fd(fd).read(length)
        finally:
            self._exit()

    @complexity("n", note="per page copied through the kernel")
    def write(self, fd: int, data: bytes) -> int:
        """Write at the descriptor's offset."""
        self._enter("write")
        try:
            self._kernel.clock.advance(self._kernel.costs.fd_lookup_ns)
            return self._process.fd(fd).write(data)
        finally:
            self._exit()

    @complexity("n", note="per page copied through the kernel")
    def pread(self, fd: int, offset: int, length: int) -> bytes:
        """Positioned read."""
        self._enter("pread")
        try:
            self._kernel.clock.advance(self._kernel.costs.fd_lookup_ns)
            return self._process.fd(fd).pread(offset, length)
        finally:
            self._exit()

    @complexity("n", note="per page copied through the kernel")
    def pwrite(self, fd: int, offset: int, data: bytes) -> int:
        """Positioned write."""
        self._enter("pwrite")
        try:
            self._kernel.clock.advance(self._kernel.costs.fd_lookup_ns)
            return self._process.fd(fd).pwrite(offset, data)
        finally:
            self._exit()

    @o1(note="whole-file reclamation: one journaled extent free")
    def unlink(self, fs: FileSystem, path: str) -> None:
        """Remove a file — whole-file reclamation."""
        self._enter("unlink")
        try:
            # o1: allow(flow-bounded) -- path depth, not file size; the free is one extent op
            fs.unlink(path)
        finally:
            self._exit()

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    @o1(note="VMA insert only; MAP_POPULATE opts into the linear pre-fill")
    def mmap(
        self,
        length: int,
        prot: Protection = Protection.rw(),
        flags: MapFlags = MapFlags.PRIVATE,
        fd: Optional[int] = None,
        offset: int = 0,
        addr: Optional[int] = None,
        name: str = "",
    ) -> int:
        """Map a file (via ``fd``) or anonymous memory; returns the VA.

        Mirrors Linux: MAP_ANONYMOUS is implied when no fd is given;
        MAP_POPULATE triggers the linear pre-fill; DAX files charge their
        extra setup.
        """
        self._enter("mmap")
        try:
            if offset % PAGE_SIZE:
                raise MappingError(f"mmap offset {offset:#x} not page-aligned")
            space = self._process.space
            if addr is None:
                addr = space.pick_address(length)
            if fd is None:
                flags |= MapFlags.ANONYMOUS
                backing = AnonBacking(
                    self._kernel.dram_buddy,
                    self._kernel.clock,
                    self._kernel.costs,
                    self._kernel.counters,
                    zeropool=self._kernel.zeropool,
                    swap=self._kernel.swap,
                )
                space.mmap(
                    length, prot, flags, backing, addr=addr, name=name or "anon"
                )
            else:
                handle = self._process.fd(fd)
                inode = handle.inode
                fs = inode.fs
                self._kernel.clock.advance(mmap_setup_extra_ns(fs))
                backing = fs.backing_for(inode)
                inode.refcount += 1
                space.mmap(
                    length,
                    prot,
                    flags,
                    backing,
                    addr=addr,
                    backing_offset=offset // PAGE_SIZE,
                    name=name or f"file:ino{inode.ino}",
                )
            return addr
        finally:
            self._exit()

    @o1(
        note=(
            "COW policy: per-VMA subtree shares, O(windows) not O(pages); "
            "the eager policy keeps the paper's linear baseline selectable"
        )
    )
    def fork(self):
        """Clone the calling process (COW); returns the child Process."""
        self._enter("fork")
        try:
            return self._kernel.fork(self._process)
        finally:
            self._exit()

    @o1(
        note=(
            "extent policy: one subtree unlink per 2 MiB window plus one "
            "batched TLB range invalidation; the page policy keeps the "
            "per-PTE baseline selectable"
        )
    )
    def munmap(self, addr: int, length: int) -> None:
        """Unmap a range."""
        self._enter("munmap")
        try:
            # o1: allow(flow-bounded) -- extent teardown; the per-page walk is the selectable baseline
            self._process.space.munmap(addr, length)
        finally:
            self._exit()

    @complexity("n", note="per page in the protected range")
    def mprotect(self, addr: int, length: int, prot: Protection) -> None:
        """Change a mapping's protection."""
        self._enter("mprotect")
        try:
            self._process.space.mprotect(addr, length, prot)
        finally:
            self._exit()
