"""Counters plus log-bucketed latency histograms.

:class:`MetricsRegistry` subsumes :class:`~repro.hw.clock.EventCounters`:
it *is* one (same ``bump``/``get``/``snapshot``/``delta_since``/``reset``
surface, accepted everywhere a plain counter bag is), and adds

* **latency histograms** — :meth:`observe` records a simulated-ns sample
  into a power-of-two-bucketed histogram with p50/p95/p99 summaries;
  the tracer feeds one sample per finished span, so enabling tracing
  yields latency distributions for every instrumented operation free;
* **strict naming** — ``MetricsRegistry(strict=True)`` rejects counter
  names outside :data:`repro.obs.names.CANONICAL_COUNTERS`, enforcing
  the ``subsystem_verb_object`` convention at run time.

Migration from ``EventCounters`` is a no-op for callers: ``Kernel``
constructs a ``MetricsRegistry`` as ``kernel.counters`` and every
component keeps calling ``bump()`` as before.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.hw.clock import EventCounters
from repro.lint.decorators import allocfree
from repro.obs.names import CANONICAL_COUNTERS


class UnknownCounterError(ValueError):
    """A strict registry saw a counter name outside the canonical list."""


class LatencyHistogram:
    """Power-of-two-bucketed histogram of non-negative integer samples.

    Bucket ``b`` holds samples whose value has ``b`` significant bits,
    i.e. the range ``[2**(b-1), 2**b)`` (bucket 0 holds exact zeros) — a
    log scale that spans one nanosecond to seconds in ~40 buckets.
    Percentiles are reported as the upper edge of the bucket holding the
    requested rank, clamped to the observed maximum, which bounds the
    relative error at 2x — plenty for "where did the time go" questions.

    >>> h = LatencyHistogram("demo")
    >>> for v in [1, 2, 3, 100]:
    ...     h.observe(v)
    >>> h.count, h.total
    (4, 106)
    >>> h.percentile(50)
    3
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max = 0
        self._buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        """Record one sample (negative values are clamped to zero)."""
        if value < 0:
            value = 0
        bucket = value.bit_length()
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        self.max = max(self.max, value)
        self.min = value if self.min is None else min(self.min, value)

    def percentile(self, p: float) -> int:
        """Approximate ``p``-th percentile (upper bucket edge, clamped)."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0
        rank = max(1, -(-int(p * self.count) // 100))  # ceil(p*n/100)
        cumulative = 0
        for bucket in sorted(self._buckets):
            cumulative += self._buckets[bucket]
            if cumulative >= rank:
                upper = 0 if bucket == 0 else (1 << bucket) - 1
                return min(upper, self.max)
        return self.max

    @property
    def p50(self) -> int:
        """Median sample (approximate)."""
        return self.percentile(50)

    @property
    def p95(self) -> int:
        """95th-percentile sample (approximate)."""
        return self.percentile(95)

    @property
    def p99(self) -> int:
        """99th-percentile sample (approximate)."""
        return self.percentile(99)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples."""
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """(bucket_upper_edge, count) pairs, ascending."""
        return [
            (0 if b == 0 else (1 << b) - 1, n)
            for b, n in sorted(self._buckets.items())
        ]

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram({self.name!r}, n={self.count}, "
            f"p50={self.p50}, p99={self.p99}, max={self.max})"
        )


class MetricsRegistry(EventCounters):
    """Drop-in :class:`EventCounters` superset with histograms.

    >>> reg = MetricsRegistry()
    >>> reg.bump("tlb_hit")
    >>> reg.observe("page_walk_ns", 45)
    >>> reg.get("tlb_hit"), reg.histogram("page_walk_ns").count
    (1, 1)
    """

    # No __slots__: instances carry a __dict__ so the tracer back-reference
    # (EventCounters.tracer class attribute) can be set per instance.

    def __init__(self, strict: bool = False) -> None:
        super().__init__()
        self._histograms: Dict[str, LatencyHistogram] = {}
        self.strict = strict

    # -- counter surface (EventCounters-compatible) --------------------
    @allocfree(note="set-membership check plus the base increment")
    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``; strict registries validate it."""
        if self.strict and name not in CANONICAL_COUNTERS:
            raise UnknownCounterError(
                f"counter {name!r} is not in repro.obs.names.CANONICAL_COUNTERS; "
                "declare it there (subsystem_verb_object convention)"
            )
        super().bump(name, amount)

    # -- histogram surface ----------------------------------------------
    def histogram(self, name: str) -> LatencyHistogram:
        """The histogram named ``name`` (created on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram(name)
        return hist

    def observe(self, name: str, value: int) -> None:
        """Record one latency sample into histogram ``name``."""
        self.histogram(name).observe(value)

    def histograms(self) -> Dict[str, LatencyHistogram]:
        """All histograms, keyed by name."""
        return dict(self._histograms)

    def iter_histograms(self) -> Iterator[LatencyHistogram]:
        """Histograms in name order."""
        for name in sorted(self._histograms):
            yield self._histograms[name]

    def reset(self) -> None:
        """Zero every counter and drop every histogram."""
        super().reset()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={sum(1 for _ in self)}, "
            f"histograms={len(self._histograms)})"
        )
