"""Trace exporters: Chrome ``trace_event`` JSON and text attribution.

The JSON form loads directly in ``chrome://tracing`` and in Perfetto
(https://ui.perfetto.dev): one track per simulated process, spans nested
by subsystem, timestamps in microseconds of *simulated* time.

The text form is the top-down cost-attribution report printed by
``repro-o1 trace`` / ``repro-o1 stats`` and embeddable in analysis
output: simulated nanoseconds charged per subsystem (and per process),
as a share of a measured total.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import EventKind, TraceEvent, Tracer

#: Chrome trace_event phase codes for our three event kinds.
_PHASES = {
    EventKind.SPAN_BEGIN: "B",
    EventKind.SPAN_END: "E",
    EventKind.INSTANT: "i",
}

#: pid the histogram counter tracks render under (its own track group,
#: so latency percentiles don't interleave with per-process span tracks).
COUNTER_TRACK_PID = 0


def counter_track_events(
    metrics: MetricsRegistry,
    end_ts_ns: int,
    pid: int = COUNTER_TRACK_PID,
) -> List[Dict[str, object]]:
    """Chrome ``ph: "C"`` counter samples for the registry's histograms.

    One counter track per histogram, named ``hist:<name>``, with p50/p95/
    p99 as its three series.  Histograms are cumulative over the whole
    trace, so each track gets two samples — one at ts 0 and one at the
    trace's end — which Perfetto renders as a level band spanning the
    run rather than a single invisible point.
    """
    records: List[Dict[str, object]] = []
    for hist in metrics.iter_histograms():
        if hist.count == 0:
            continue
        args = {"p50": hist.p50, "p95": hist.p95, "p99": hist.p99}
        for ts_ns in (0, end_ts_ns) if end_ts_ns > 0 else (0,):
            records.append(
                {
                    "name": f"hist:{hist.name}",
                    "ph": "C",
                    "ts": ts_ns / 1000.0,
                    "pid": pid,
                    "args": dict(args),
                }
            )
    return records


def chrome_trace(
    events: Iterable[TraceEvent],
    process_names: Optional[Dict[int, str]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Build a Chrome ``trace_event`` document from trace events.

    Timestamps convert from simulated ns to the microseconds the format
    expects (fractional µs are allowed and preserved by Perfetto).  When
    ``metrics`` is given, its latency histograms are appended as counter
    tracks (see :func:`counter_track_events`).
    """
    trace_events: List[Dict[str, object]] = []
    for pid, name in sorted((process_names or {}).items()):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": name},
            }
        )
    end_ts_ns = 0
    for event in events:
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.subsystem,
            "ph": _PHASES[event.kind],
            "ts": event.ts_ns / 1000.0,
            "pid": event.pid,
            "tid": event.pid,
        }
        if event.kind is EventKind.INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = dict(event.args)
        trace_events.append(record)
        if event.ts_ns > end_ts_ns:
            end_ts_ns = event.ts_ns
    if metrics is not None:
        trace_events.extend(counter_track_events(metrics, end_ts_ns))
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def write_chrome_trace(
    path: str,
    events: Iterable[TraceEvent],
    process_names: Optional[Dict[int, str]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Write a Chrome-trace JSON file; returns the event count written."""
    document = chrome_trace(events, process_names, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return len(document["traceEvents"])  # type: ignore[arg-type]


def export_tracer(path: str, tracer: Tracer) -> int:
    """Write everything a :class:`Tracer` buffered to ``path``.

    Includes counter tracks for the machine's latency histograms when
    the tracer is wired to a :class:`MetricsRegistry`.
    """
    metrics = tracer.metrics
    if not isinstance(metrics, MetricsRegistry):
        metrics = None
    return write_chrome_trace(
        path, tracer.events(), tracer.process_names, metrics
    )


# ----------------------------------------------------------------------
# Self-time recomputation (for verifying exported traces)
# ----------------------------------------------------------------------
def subsystem_self_times(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """Per-subsystem self time recomputed from a span event stream.

    Mirrors the tracer's live attribution: each span's elapsed minus its
    children's elapsed is charged to its subsystem.  Unmatched
    ``span_end`` events (their begins fell off the ring) are skipped;
    spans never closed contribute nothing.  Tests use this to check that
    an exported trace reproduces ``measure().elapsed_ns``.
    """
    totals: Dict[str, int] = {}
    stack: List[Tuple[str, int, int]] = []  # (subsystem, start_ns, child_ns)
    for event in events:
        if event.kind is EventKind.SPAN_BEGIN:
            stack.append((event.subsystem, event.ts_ns, 0))
        elif event.kind is EventKind.SPAN_END:
            if not stack:
                continue
            subsystem, start_ns, child_ns = stack.pop()
            elapsed = event.ts_ns - start_ns
            totals[subsystem] = totals.get(subsystem, 0) + elapsed - child_ns
            if stack:
                parent = stack[-1]
                stack[-1] = (parent[0], parent[1], parent[2] + elapsed)
    return totals


def load_chrome_trace(path: str) -> List[TraceEvent]:
    """Parse a Chrome-trace JSON file back into :class:`TraceEvent` s.

    Metadata records are skipped; timestamps round back to integer ns.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    kinds = {code: kind for kind, code in _PHASES.items()}
    events: List[TraceEvent] = []
    for record in document.get("traceEvents", []):
        kind = kinds.get(record.get("ph"))
        if kind is None:
            continue
        events.append(
            TraceEvent(
                kind=kind,
                name=record["name"],
                ts_ns=round(record["ts"] * 1000),
                pid=record.get("pid", 0),
                subsystem=record.get("cat", ""),
                args=record.get("args"),
            )
        )
    return events


# ----------------------------------------------------------------------
# Text attribution report
# ----------------------------------------------------------------------
def attribution_rows(
    attribution: Dict[Tuple[int, str], int],
    process_names: Optional[Dict[int, str]] = None,
) -> List[Tuple[str, str, int]]:
    """(subsystem, process, self_ns) rows, largest subsystems first."""
    by_subsystem: Dict[str, Dict[int, int]] = {}
    for (pid, subsystem), ns in attribution.items():
        by_subsystem.setdefault(subsystem, {})[pid] = (
            by_subsystem.setdefault(subsystem, {}).get(pid, 0) + ns
        )
    names = process_names or {}
    rows: List[Tuple[str, str, int]] = []
    for subsystem, pids in sorted(
        by_subsystem.items(), key=lambda item: -sum(item[1].values())
    ):
        for pid, ns in sorted(pids.items(), key=lambda item: -item[1]):
            rows.append((subsystem, names.get(pid, f"pid {pid}"), ns))
    return rows
