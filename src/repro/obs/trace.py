"""Typed trace events over the simulated clock, with cost attribution.

:class:`Tracer` records ``span_begin`` / ``span_end`` / ``instant``
events into a **bounded ring buffer**.  Timestamps are
:class:`~repro.hw.clock.SimClock` nanoseconds — never wall time — so
traces are exactly reproducible run to run and legal inside the
deterministic simulator.

Beyond the event stream, the tracer maintains a live **attribution
table**: when a span ends, its *self time* (elapsed minus time covered
by nested spans) is charged to the ``(pid, subsystem)`` pair that opened
it.  Because self times are disjoint by construction, summing the table
over a window that was covered by one root span reproduces the window's
elapsed nanoseconds exactly — the invariant
``Kernel.measure(trace=True)`` exposes and tests assert.

The tracer is *disabled* by default; every instrumentation hook in the
hot paths guards on :attr:`Tracer.enabled` (one attribute check), so an
untraced run pays nothing measurable.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.hw.clock import SimClock

#: Default ring capacity: enough for ~16k spans before the oldest drop.
DEFAULT_RING_CAPACITY = 65536


class EventKind(enum.Enum):
    """The three typed trace-event kinds."""

    SPAN_BEGIN = "span_begin"
    SPAN_END = "span_end"
    INSTANT = "instant"


@dataclass(frozen=True)
class TraceEvent:
    """One trace record, stamped with simulated nanoseconds."""

    kind: EventKind
    name: str
    ts_ns: int
    pid: int
    subsystem: str
    args: Optional[Dict[str, object]] = None


@dataclass
class _OpenSpan:
    """Bookkeeping for a span on the tracer's stack."""

    name: str
    subsystem: str
    pid: int
    start_ns: int
    child_ns: int = 0
    args: Optional[Dict[str, object]] = None


class _SpanContext:
    """Context manager closing one tracer span (or nothing, if disabled)."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: Optional["Tracer"]) -> None:
        self._tracer = tracer

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._tracer is not None:
            self._tracer.end()


_NULL_SPAN = _SpanContext(None)


class Tracer:
    """Bounded-ring trace recorder and (pid, subsystem) cost attributor."""

    def __init__(
        self,
        clock: SimClock,
        capacity: int = DEFAULT_RING_CAPACITY,
        metrics: Optional[object] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self._clock = clock
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Registry receiving one latency sample per finished span
        #: (``observe(span_name, elapsed_ns)``); optional.
        self._metrics = metrics
        #: Armed :class:`repro.perf.profiler.WallProfiler` mirroring the
        #: span stack on the wall clock; ``None`` (the default) costs one
        #: attribute check per begin/end — and begin/end themselves only
        #: run while tracing is enabled, so unarmed hot paths are
        #: untouched.  Set by ``Kernel.arm_profiler``.
        self.profiler = None
        self.enabled = False
        #: Pid stamped on spans/instants that don't pass one explicitly;
        #: kernel entry points set it on context switch.
        self.current_pid = 0
        self._stack: List[_OpenSpan] = []
        #: Simulated ns attributed per (pid, subsystem): span self times.
        self.attribution: Dict[Tuple[int, str], int] = {}
        #: Events recorded over the tracer's lifetime (including dropped).
        self.total_events = 0
        #: Events lost to ring overflow.
        self.dropped_events = 0
        #: pid -> human name, exported as Chrome process_name metadata.
        self.process_names: Dict[int, str] = {0: "kernel"}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Start recording events (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; open spans stay on the stack until ended."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all buffered events and attribution (keeps enablement)."""
        self._ring.clear()
        self._stack.clear()
        self.attribution.clear()
        self.total_events = 0
        self.dropped_events = 0

    @property
    def capacity(self) -> int:
        """Maximum events the ring retains."""
        return self._ring.maxlen or 0

    @property
    def metrics(self) -> Optional[object]:
        """The registry this tracer feeds span latencies into (or None)."""
        return self._metrics

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(self, event: TraceEvent) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped_events += 1
        self._ring.append(event)
        self.total_events += 1

    def begin(
        self,
        name: str,
        subsystem: str,
        pid: Optional[int] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Open a span; every ``begin`` must be matched by one ``end``."""
        if not self.enabled:
            return
        if pid is None:
            pid = self.current_pid
        now = self._clock.now
        self._stack.append(_OpenSpan(name, subsystem, pid, now, 0, args))
        self._append(
            TraceEvent(EventKind.SPAN_BEGIN, name, now, pid, subsystem, args)
        )
        if self.profiler is not None:
            self.profiler.on_begin(name, subsystem, pid)

    def end(self, args: Optional[Dict[str, object]] = None) -> None:
        """Close the innermost open span, attributing its self time."""
        if not self._stack:
            return
        span = self._stack.pop()
        now = self._clock.now
        elapsed = now - span.start_ns
        self_ns = elapsed - span.child_ns
        key = (span.pid, span.subsystem)
        self.attribution[key] = self.attribution.get(key, 0) + self_ns
        if self._stack:
            self._stack[-1].child_ns += elapsed
        if self._metrics is not None:
            self._metrics.observe(span.name, elapsed)
        self._append(
            TraceEvent(
                EventKind.SPAN_END, span.name, now, span.pid, span.subsystem, args
            )
        )
        if self.profiler is not None:
            self.profiler.on_end()

    def span(
        self,
        name: str,
        subsystem: str,
        pid: Optional[int] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> _SpanContext:
        """``with tracer.span("page_walk", "paging"): ...`` convenience."""
        if not self.enabled:
            return _NULL_SPAN
        self.begin(name, subsystem, pid=pid, args=args)
        return _SpanContext(self)

    def instant(
        self,
        name: str,
        subsystem: str,
        pid: Optional[int] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        if pid is None:
            pid = self.current_pid
        self._append(
            TraceEvent(
                EventKind.INSTANT, name, self._clock.now, pid, subsystem, args
            )
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """All buffered events, oldest first."""
        return list(self._ring)

    def events_since(self, total_before: int) -> List[TraceEvent]:
        """Events recorded after ``total_events`` read ``total_before``.

        Clipped to what the ring still holds (oldest may have dropped).
        """
        fresh = self.total_events - total_before
        if fresh <= 0:
            return []
        buffered = list(self._ring)
        return buffered[-fresh:] if fresh < len(buffered) else buffered

    def attribution_since(
        self, snapshot: Dict[Tuple[int, str], int]
    ) -> Dict[Tuple[int, str], int]:
        """Attribution growth since a ``dict(tracer.attribution)`` copy."""
        out: Dict[Tuple[int, str], int] = {}
        for key, value in self.attribution.items():
            change = value - snapshot.get(key, 0)
            if change:
                out[key] = change
        return out

    def subsystem_totals(self) -> Dict[str, int]:
        """Attributed self time per subsystem, summed over pids."""
        totals: Dict[str, int] = {}
        for (_pid, subsystem), ns in self.attribution.items():
            totals[subsystem] = totals.get(subsystem, 0) + ns
        return totals

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended."""
        return len(self._stack)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"Tracer({state}, events={len(self._ring)}/{self.capacity}, "
            f"dropped={self.dropped_events}, open={self.open_spans})"
        )
