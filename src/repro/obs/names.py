"""Canonical event-counter names and the naming convention they follow.

Every :meth:`~repro.obs.metrics.MetricsRegistry.bump` site in the
simulator uses a name from :data:`CANONICAL_COUNTERS`.  The convention is
``subsystem_verb_object``: the first token is a subsystem prefix from
:data:`COUNTER_PREFIXES`, the rest name the event (verb and optional
object), e.g. ``fault_minor``, ``tlb_hit``, ``journal_commit``,
``buddy_split``.  A test (``tests/test_obs_names.py``) scans the source
tree and rejects any ``bump()`` literal not in the canonical list, so the
list below is the single place a new counter is declared.

Trace spans carry a coarser *subsystem* tag from :data:`SUBSYSTEMS`; the
cost-attribution report groups simulated nanoseconds by it.
"""

from __future__ import annotations

from typing import FrozenSet

#: Subsystem tags for trace spans and cost attribution (coarse: one per
#: architectural layer, not one per module).
SUBSYSTEMS: FrozenSet[str] = frozenset(
    {
        "cpu",  # access front-end: TLB probes, cache references
        "paging",  # hardware page-table walks
        "fault",  # trap, OS fault handling, COW copies
        "vm",  # mmap/munmap/populate, VMA bookkeeping
        "fs",  # file systems: extents, journal, page cache
        "mem",  # physical allocators: buddy, slab, zeropool
        "reclaim",  # page-reclaim scanning and eviction
        "kernel",  # syscall dispatch, fork, crash, measurement root
        "runtime",  # user-level runtimes (object heap, log structure)
    }
)

#: Counter-name prefixes in use; the first ``_``-separated token of every
#: canonical counter is one of these.
COUNTER_PREFIXES: FrozenSet[str] = frozenset(
    {
        "anon",
        "buddy",
        "cache",
        "chaos",
        "cow",
        "cr3",
        "crypto",
        "dma",
        "extent",
        "fault",
        "file",
        "fom",
        "fork",
        "frame",
        "inode",
        "iommu",
        "journal",
        "machine",
        "mmap",
        "munmap",
        "nested",
        "pagecache",
        "pbm",
        "populate",
        "premap",
        "pt",
        "pte",
        "qos",
        "range",
        "ras",
        "reclaim",
        "recovery",
        "rte",
        "rtlb",
        "sanitize",
        "slab",
        "swap",
        "sys",
        "tlb",
        "userfault",
        "vm",
        "vma",
        "walk",
        "zero",
        "zeropool",
    }
)

#: Every counter the simulator may bump.  Grouped by subsystem prefix;
#: keep sorted within each group.
CANONICAL_COUNTERS: FrozenSet[str] = frozenset(
    {
        # cpu / tlb front-end
        "cr3_switch",
        "rtlb_hit",
        "rtlb_miss",
        "tlb_hit",
        "tlb_miss",
        "tlb_shootdown_ipi",
        "tlb_shootdown_retry",
        # chaos fault injection
        "chaos_fault_injected",
        "chaos_site_hit",
        # cache hierarchy
        "cache_l1_hit",
        "cache_llc_hit",
        "cache_miss",
        # page walks
        "nested_walk_ref",
        "walk_ref",
        "walk_start",
        # faults
        "fault_cow",
        "fault_major",
        "fault_minor",
        "fault_trap",
        "cow_copy",
        "cow_break",
        # vm layer
        "anon_page_alloc",
        "mmap_call",
        "munmap_call",
        "populate_pages",
        "vm_evict_pinned",
        "vm_page_evict",
        "vma_insert",
        "vma_merge",
        "vma_remove",
        # page tables
        "pt_node_alloc",
        "pt_node_clone",
        "pte_write",
        # physical allocators
        "buddy_alloc",
        "buddy_free",
        "buddy_merge",
        "buddy_retire",
        "buddy_split",
        "frame_meta_touch",
        "slab_alloc",
        "slab_free",
        "slab_grow_retry",
        "zeropool_hit",
        "zeropool_miss",
        "zeropool_refill_frames",
        "zero_alloc_retry",
        "zero_eager_pages",
        # file systems
        "extent_alloc",
        "extent_free",
        "extent_lookup",
        "file_copy_bytes",
        "inode_create",
        "inode_unlink",
        "journal_commit",
        "journal_corrupt_skipped",
        "journal_record",
        "journal_replay",
        "pagecache_alloc",
        "pagecache_free",
        "pagecache_lookup",
        # RAS: media faults, scrubbing, retirement (repro.ras)
        "ras_badblock_persisted",
        "ras_dram_badblock_adopted",
        "ras_extent_migrated",
        "ras_frame_retired",
        "ras_io_retry",
        "ras_poison_cleared",
        "ras_poison_trap",
        "ras_read_eio",
        "ras_recovered_access",
        "ras_scrub_busy",
        "ras_scrub_frame",
        "ras_sigbus_kill",
        # QoS memory controller (repro.qos): all breach-slow-path only
        "qos_oom_kill",
        "qos_oom_victimless",
        "qos_reclaim_batch",
        "qos_reclaim_error",
        "qos_throttle_stall",
        "qos_watermark_high",
        "qos_watermark_max",
        # reclaim & swap
        "reclaim_evicted",
        "reclaim_scanned",
        "swap_in",
        "swap_out",
        # kernel events
        "fork_call",
        "fork_cow",
        "machine_crash",
        # sanitizer suite (repro.sanitize)
        "sanitize_violation",
        # syscall dispatch (sys_<name> per entry point)
        "sys_close",
        "sys_fork",
        "sys_mmap",
        "sys_mprotect",
        "sys_munmap",
        "sys_open",
        "sys_pread",
        "sys_pwrite",
        "sys_read",
        "sys_unlink",
        "sys_write",
        # core.o1 / fom / pbm / rangetrans
        "fom_allocate",
        "fom_grow",
        "fom_grow_relocated",
        "fom_mark_persistent",
        "fom_mark_volatile",
        "fom_open",
        "fom_premap_fallback",
        "fom_recover",
        "fom_release",
        "pbm_private_pages",
        "pbm_shared_link",
        "pbm_subtree_build",
        "pbm_subtree_hit",
        "pbm_unmap",
        "premap_attach",
        "premap_build",
        "premap_cache_hit",
        "premap_crash_dropped",
        "premap_detach",
        "premap_invalidate",
        "premap_persist",
        "range_table_lookup",
        "range_unmap",
        "rte_remove",
        "rte_write",
        "recovery_scrub_blocks",
        "recovery_zero_pages",
        # device extensions
        "crypto_key_create",
        "crypto_key_destroy",
        "dma_extent_mapped",
        "dma_extent_unmapped",
        "dma_page_pinned",
        "dma_page_unpinned",
        "dma_transfer",
        "iommu_pri_fault",
        # userfaultfd extension
        "userfault_copy",
        "userfault_evict",
        "userfault_upcall",
        "userfault_zeropage",
    }
)


def is_canonical(name: str) -> bool:
    """True if ``name`` is a declared counter name."""
    return name in CANONICAL_COUNTERS


def check_convention(name: str) -> bool:
    """True if ``name`` follows ``subsystem_verb_object`` shape.

    The first token must be a known prefix and the name must have at
    least two tokens (a bare subsystem is not an event).
    """
    tokens = name.split("_")
    return len(tokens) >= 2 and tokens[0] in COUNTER_PREFIXES
