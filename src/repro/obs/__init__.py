"""Observability: typed tracing, metrics and cost attribution.

The instrument panel for the simulator — see DESIGN.md §Observability.

* :class:`~repro.obs.trace.Tracer` — span/instant events in a bounded
  ring, stamped with simulated ns, attributing self time per
  (process, subsystem);
* :class:`~repro.obs.metrics.MetricsRegistry` — event counters (an
  :class:`~repro.hw.clock.EventCounters` superset) plus log-bucketed
  latency histograms with p50/p95/p99 summaries;
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON and the text
  attribution report;
* :mod:`~repro.obs.names` — the canonical counter-name list and the
  ``subsystem_verb_object`` convention.
"""

from repro.obs.export import (
    attribution_rows,
    chrome_trace,
    export_tracer,
    load_chrome_trace,
    subsystem_self_times,
    write_chrome_trace,
)
from repro.obs.metrics import LatencyHistogram, MetricsRegistry, UnknownCounterError
from repro.obs.names import CANONICAL_COUNTERS, SUBSYSTEMS, check_convention, is_canonical
from repro.obs.trace import (
    DEFAULT_RING_CAPACITY,
    EventKind,
    TraceEvent,
    Tracer,
)

__all__ = [
    "CANONICAL_COUNTERS",
    "DEFAULT_RING_CAPACITY",
    "EventKind",
    "LatencyHistogram",
    "MetricsRegistry",
    "SUBSYSTEMS",
    "TraceEvent",
    "Tracer",
    "UnknownCounterError",
    "attribution_rows",
    "check_convention",
    "chrome_trace",
    "export_tracer",
    "is_canonical",
    "load_chrome_trace",
    "subsystem_self_times",
    "write_chrome_trace",
]
