"""Binary-buddy page-frame allocator over one physical region.

This is the baseline kernel allocator (Linux's ``alloc_pages``): free
frames are kept on per-order free lists; allocation of order *k* splits a
larger block if needed and frees coalesce with their buddy.  Costs mirror
the real fast/slow path: a hit on the exact order costs one
``frame_alloc_ns``; every split adds ``buddy_split_ns``.

The paper's §3.1 notes that "Linux manages pages in the buddy allocator,
but does not aggressively merge pages, so there may be contiguity present
that is not available for use" and suggests slab-style extent allocation
instead — the comparison appears in the extent-allocation ablation bench.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import OutOfMemoryError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.lint import complexity, o1
from repro.mem.physical import MemoryRegion
from repro.units import PAGE_SIZE


class BuddyAllocator:
    """Buddy allocator managing the frames of a single region.

    Orders run from 0 (one 4 KiB frame) to ``max_order`` inclusive
    (Linux's default ``MAX_ORDER - 1`` is 10, i.e. 4 MiB blocks).
    """

    def __init__(
        self,
        region: MemoryRegion,
        max_order: int = 10,
        clock: Optional[SimClock] = None,
        costs: Optional[CostModel] = None,
        counters: Optional[EventCounters] = None,
    ) -> None:
        if max_order < 0:
            raise ValueError(f"max_order must be >= 0, got {max_order}")
        self._region = region
        self._max_order = max_order
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._free_lists: List[Set[int]] = [set() for _ in range(max_order + 1)]
        #: pfn -> order for blocks handed out (needed to free by pfn alone).
        self._allocated: Dict[int, int] = {}
        #: Frames permanently removed from service (RAS retirement); they
        #: are carried in ``_allocated`` at order 0 so the region still
        #: tiles, but can never be freed or handed out again.
        self._retired: Set[int] = set()
        self._free_frames = 0
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        """Carve the region into maximal aligned blocks."""
        pfn = self._region.first_pfn
        remaining = self._region.frame_count
        while remaining > 0:
            order = min(
                self._max_order,
                remaining.bit_length() - 1,
                (pfn & -pfn).bit_length() - 1 if pfn else self._max_order,
            )
            self._free_lists[order].add(pfn)
            pfn += 1 << order
            remaining -= 1 << order
        self._free_frames = self._region.frame_count

    # ------------------------------------------------------------------
    # Properties / helpers
    # ------------------------------------------------------------------
    @property
    def region(self) -> MemoryRegion:
        """The physical region this allocator manages."""
        return self._region

    @property
    def max_order(self) -> int:
        """Largest allocation order supported."""
        return self._max_order

    @property
    def free_frames(self) -> int:
        """Number of free 4 KiB frames."""
        return self._free_frames

    def _describe(self) -> str:
        """Region name for error messages (falls back to its address)."""
        return self._region.name or f"{self._region.start:#x}"

    def _charge(self, ns: int, event: str) -> None:
        if self._clock is not None:
            self._clock.advance(ns)
        if self._counters is not None:
            self._counters.bump(event)

    @staticmethod
    @o1(note="bit_length, no search")
    def order_for_pages(npages: int) -> int:
        """Smallest order whose block covers ``npages`` frames."""
        if npages <= 0:
            raise ValueError(f"npages must be positive, got {npages}")
        return (npages - 1).bit_length()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @complexity("log n", note="<= max_order splits; exact-order hits are O(1)")
    def alloc(self, order: int = 0) -> int:
        """Allocate a block of 2**order frames; returns its first PFN."""
        if not 0 <= order <= self._max_order:
            raise ValueError(
                f"order {order} outside supported range 0..{self._max_order}"
            )
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None and chaos.hit("buddy.alloc") == "error":
            raise OutOfMemoryError(
                f"chaos: injected exhaustion in region {self._describe()}"
            )
        source = order
        # o1: allow(flow-bounded) -- climbs at most max_order orders, the declared log factor
        while source <= self._max_order and not self._free_lists[source]:
            source += 1
        if source > self._max_order:
            raise OutOfMemoryError(
                f"no free block of order {order} in region "
                f"{self._describe()} "
                f"({self._free_frames} frames free but fragmented)"
            )
        costs = self._costs
        self._charge(costs.frame_alloc_ns if costs else 0, "buddy_alloc")
        pfn = self._free_lists[source].pop()
        # Split down to the requested order, freeing the upper halves.
        # o1: allow(flow-bounded) -- at most max_order splits, the declared log factor
        while source > order:
            source -= 1
            self._free_lists[source].add(pfn + (1 << source))
            self._charge(costs.buddy_split_ns if costs else 0, "buddy_split")
        self._allocated[pfn] = order
        self._free_frames -= 1 << order
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_frame_alloc(self, pfn, order)
        qos = getattr(self._counters, "qos", None)
        if qos is not None:
            qos.on_frames_alloc(pfn, 1 << order)
        return pfn

    @complexity("log n", note="one power-of-two block, however many pages")
    def alloc_pages(self, npages: int) -> int:
        """Allocate a contiguous run covering ``npages`` frames.

        Rounds up to a power of two, like the kernel's higher-order
        allocations; the extra frames are tracked as part of the block
        (space traded for time, exactly the paper's O(1) bargain).
        """
        return self.alloc(self.order_for_pages(npages))

    # ------------------------------------------------------------------
    # Freeing
    # ------------------------------------------------------------------
    @o1(note="frees charge once; the merge chain charges 0 ns")
    def free(self, pfn: int) -> None:
        """Free a previously allocated block, coalescing with buddies."""
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_frame_free(self, pfn)
        self._free_block(pfn, self._costs.frame_free_ns if self._costs else 0)

    @o1(note="one charged update for the whole batch; per-block work charges 0 ns")
    def free_many(self, pfns: Sequence[int]) -> None:
        """Region free: return a batch of blocks for one charged update.

        Models a scatter-gather free interface — the allocator ingests
        the whole list in a single bookkeeping pass, so the simulated
        cost is one ``frame_free_ns`` however many blocks come back
        (the per-block ``buddy_free`` events still count).  This is
        what lets :meth:`CryptoErase.return_frames
        <repro.core.o1.zeroing.CryptoErase.return_frames>` be O(1) like
        the key destruction itself.
        """
        if not pfns:
            return
        san = getattr(self._counters, "sanitize", None)
        charge = self._costs.frame_free_ns if self._costs else 0
        # o1: allow(o1-size-loop) -- batch charges one frame_free_ns; rest 0 ns
        for pfn in pfns:
            if san is not None:
                san.on_frame_free(self, pfn)
            self._free_block(pfn, charge)
            charge = 0

    @o1(note="coalescing climbs at most max_order orders, a config constant")
    def _free_block(self, pfn: int, charge_ns: int) -> None:
        """Uncharged-core free: ledger pop, coalesce, free-list insert."""
        if pfn in self._retired:
            raise ValueError(f"pfn {pfn} is retired and can never be freed")
        order = self._allocated.pop(pfn, None)
        if order is None:
            raise ValueError(f"pfn {pfn} was not allocated by this allocator")
        qos = getattr(self._counters, "qos", None)
        if qos is not None:
            qos.on_frames_free(pfn)
        self._charge(charge_ns, "buddy_free")
        self._free_frames += 1 << order
        first = self._region.first_pfn
        # o1: allow(o1-size-loop, o1-charge-in-loop) -- merge chain is capped at max_order steps
        while order < self._max_order:
            buddy = first + ((pfn - first) ^ (1 << order))
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].remove(buddy)
            pfn = min(pfn, buddy)
            order += 1
            self._charge(0, "buddy_merge")
        self._free_lists[order].add(pfn)

    # ------------------------------------------------------------------
    # Retirement (RAS)
    # ------------------------------------------------------------------
    @complexity("log n", note="<= max_order splits, like alloc")
    def retire(self, pfn: int) -> bool:
        """Permanently remove one *free* frame from service.

        Finds the free block containing ``pfn``, splits it down keeping
        every sibling half free, and quarantines the frame as an
        order-0 allocation that :meth:`free` refuses and :meth:`alloc`
        can never return.  Returns False when the frame is currently
        allocated — the caller (the patrol scrubber) retries after it
        frees.  Retiring an already-retired frame is a no-op.
        """
        first = self._region.first_pfn
        if not first <= pfn < first + self._region.frame_count:
            raise ValueError(
                f"pfn {pfn:#x} outside region {self._describe()}"
            )
        if pfn in self._retired:
            return True
        # o1: allow(flow-bounded) -- probes max_order + 1 orders, the declared log factor
        for order in range(self._max_order + 1):
            start = first + (((pfn - first) >> order) << order)
            if start not in self._free_lists[order]:
                continue
            self._free_lists[order].remove(start)
            # Split down, keeping every half that does not contain pfn.
            # o1: allow(flow-bounded) -- at most max_order splits, the declared log factor
            while order > 0:
                order -= 1
                half = 1 << order
                if pfn < start + half:
                    self._free_lists[order].add(start + half)
                else:
                    self._free_lists[order].add(start)
                    start += half
            self._allocated[pfn] = 0
            self._retired.add(pfn)
            self._free_frames -= 1
            self._charge(0, "buddy_retire")
            san = getattr(self._counters, "sanitize", None)
            if san is not None:
                san.on_frame_retired(self, pfn)
            return True
        return False  # frame is inside a live allocation: busy

    @property
    def retired_frames(self) -> frozenset:
        """Frames permanently retired from this region."""
        return frozenset(self._retired)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def free_blocks_by_order(self) -> Dict[int, int]:
        """order -> number of free blocks (buddyinfo)."""
        return {
            order: len(blocks)
            for order, blocks in enumerate(self._free_lists)
            if blocks
        }

    def largest_free_order(self) -> Optional[int]:
        """Largest order with at least one free block, or None if full."""
        for order in range(self._max_order, -1, -1):
            if self._free_lists[order]:
                return order
        return None

    def is_allocated(self, pfn: int) -> bool:
        """True if ``pfn`` is the start of a live allocation."""
        return pfn in self._allocated

    def fragmentation_index(self) -> float:
        """0.0 = perfectly coalesced, 1.0 = maximally fragmented.

        Defined as 1 - (largest free block / total free frames); 0 when
        nothing is free.
        """
        if self._free_frames == 0:
            return 0.0
        largest = self.largest_free_order()
        if largest is None:
            return 0.0
        return 1.0 - (1 << largest) / self._free_frames
