"""Slab allocator for fixed-size objects (Bonwick-style).

Two roles in this reproduction.  First, it is the kernel-object allocator
the baseline uses for VMAs, inodes and page-table bookkeeping.  Second, the
paper's §3.1 proposes slab techniques as the way to allocate *physical
memory extents* with very little overhead ("we propose using techniques
from heaps, such as slab allocators, to manage physical memory"); the
file-only-memory extent allocator builds on this cache.

Slabs are backed by buddy blocks; a cache grows one slab at a time and
returns whole slabs to the buddy when they empty.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import OutOfMemoryError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.lint import complexity, o1
from repro.mem.buddy import BuddyAllocator
from repro.units import PAGE_SIZE


class _Slab:
    """One backing block carved into equal-size object slots.

    Free slots are a LIFO stack so a just-freed (cache-warm) slot is the
    next one handed out, as real slab allocators do.
    """

    __slots__ = ("base_pfn", "order", "free_slots", "total_slots")

    def __init__(self, base_pfn: int, order: int, total_slots: int) -> None:
        self.base_pfn = base_pfn
        self.order = order
        self.total_slots = total_slots
        self.free_slots: List[int] = list(range(total_slots - 1, -1, -1))


class SlabCache:
    """Cache of fixed-size objects carved from buddy pages.

    >>> # doctest setup elided; see tests/test_mem_slab.py
    """

    def __init__(
        self,
        name: str,
        object_size: int,
        buddy: BuddyAllocator,
        slab_order: int = 0,
        clock: Optional[SimClock] = None,
        costs: Optional[CostModel] = None,
        counters: Optional[EventCounters] = None,
    ) -> None:
        if object_size <= 0:
            raise ValueError(f"object_size must be positive, got {object_size}")
        slab_bytes = PAGE_SIZE << slab_order
        if object_size > slab_bytes:
            raise ValueError(
                f"object_size {object_size} exceeds slab of {slab_bytes} bytes"
            )
        self.name = name
        self._object_size = object_size
        self._buddy = buddy
        self._slab_order = slab_order
        self._slots_per_slab = slab_bytes // object_size
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._slabs: Dict[int, _Slab] = {}  # base_pfn -> slab
        self._partial: List[int] = []  # base_pfns with free slots
        #: address -> base_pfn, for O(1) free.
        self._live: Dict[int, int] = {}

    @property
    def object_size(self) -> int:
        """Size in bytes of each object slot."""
        return self._object_size

    @property
    def live_objects(self) -> int:
        """Number of currently allocated objects."""
        return len(self._live)

    @property
    def slab_count(self) -> int:
        """Number of backing slabs currently held."""
        return len(self._slabs)

    def _charge(self, event: str) -> None:
        # Slab fast path is a couple of pointer operations: price it as a
        # fraction of the buddy fast path.
        if self._clock is not None and self._costs is not None:
            self._clock.advance(self._costs.frame_alloc_ns // 4)
        if self._counters is not None:
            self._counters.bump(event)

    @o1(note="LIFO slot pop; growth is amortized over a whole slab")
    def alloc(self) -> int:
        """Allocate one object; returns its physical address."""
        self._charge("slab_alloc")
        if not self._partial:
            # o1: allow(flow-bounded) -- slow path runs once per slab of allocations
            self._grow()
        base_pfn = self._partial[-1]
        slab = self._slabs[base_pfn]
        slot = slab.free_slots.pop()
        if not slab.free_slots:
            self._partial.pop()
        addr = base_pfn * PAGE_SIZE + slot * self._object_size
        self._live[addr] = base_pfn
        return addr

    @o1(note="slot push; empty-slab reaping is one buddy free")
    def free(self, addr: int) -> None:
        """Return the object at ``addr`` to the cache."""
        base_pfn = self._live.pop(addr, None)
        if base_pfn is None:
            raise ValueError(f"address {addr:#x} not allocated from cache {self.name!r}")
        self._charge("slab_free")
        slab = self._slabs[base_pfn]
        slot = (addr - base_pfn * PAGE_SIZE) // self._object_size
        was_full = not slab.free_slots
        slab.free_slots.append(slot)
        if was_full:
            self._partial.append(base_pfn)
        if len(slab.free_slots) == slab.total_slots:
            self._reap(base_pfn)

    @complexity("log n", note="one buddy alloc with bounded retry")
    def _grow(self, attempts: int = 3) -> None:
        """Add one slab from the buddy allocator, with bounded retry.

        Transient exhaustion (reclaim racing the allocation) is retried
        up to ``attempts`` times before giving up — the injected-fault
        hardening the chaos explorer exercises.
        """
        chaos = getattr(self._counters, "chaos", None)
        last_error: Optional[OutOfMemoryError] = None
        # o1: allow(flow-bounded) -- retry cap is a small constant, not operand-sized
        for attempt in range(attempts):
            if attempt and self._counters is not None:
                self._counters.bump("slab_grow_retry")
            try:
                if chaos is not None and chaos.hit("slab.grow") == "error":
                    raise OutOfMemoryError(
                        f"chaos: injected exhaustion growing {self.name!r}"
                    )
                base_pfn = self._buddy.alloc(self._slab_order)
                break
            except OutOfMemoryError as exc:
                last_error = exc
        else:
            raise OutOfMemoryError(
                f"slab cache {self.name!r} cannot grow: {last_error}"
            ) from last_error
        self._slabs[base_pfn] = _Slab(base_pfn, self._slab_order, self._slots_per_slab)
        self._partial.append(base_pfn)
        qos = getattr(self._counters, "qos", None)
        if qos is not None:
            # Kernel-memory attribution (cgroup v2 kmem): the buddy
            # charge above billed the frames; this tags them as slab.
            qos.on_slab_grow(1 << self._slab_order)

    def _reap(self, base_pfn: int) -> None:
        """Return an empty slab to the buddy allocator."""
        del self._slabs[base_pfn]
        self._partial.remove(base_pfn)
        self._buddy.free(base_pfn)
        qos = getattr(self._counters, "qos", None)
        if qos is not None:
            qos.on_slab_reap(1 << self._slab_order)

    def stats(self) -> Dict[str, int]:
        """Occupancy statistics (slabinfo-style)."""
        capacity = len(self._slabs) * self._slots_per_slab
        return {
            "live_objects": len(self._live),
            "capacity": capacity,
            "slabs": len(self._slabs),
            "slots_per_slab": self._slots_per_slab,
            "wasted_slots": capacity - len(self._live),
        }
