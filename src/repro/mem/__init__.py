"""Physical-memory substrate: regions, frame metadata, and allocators.

This package models the machine's physical memory the way a kernel sees
it: a set of technology-typed regions (DRAM, NVM), a per-frame metadata
table (Linux's ``struct page`` — whose cost the paper's §2 calls out), a
buddy allocator for page frames, a slab allocator for kernel objects, a
block bitmap for file-system allocation, and a pre-zeroed frame pool used
by the O(1) erase strategies.
"""

from repro.mem.physical import MemoryRegion, PhysicalMemory
from repro.mem.frame_meta import FrameMeta, FrameTable, PageFlags
from repro.mem.bitmap import Bitmap
from repro.mem.buddy import BuddyAllocator
from repro.mem.slab import SlabCache
from repro.mem.zeropool import ZeroPool

__all__ = [
    "Bitmap",
    "BuddyAllocator",
    "FrameMeta",
    "FrameTable",
    "MemoryRegion",
    "PageFlags",
    "PhysicalMemory",
    "SlabCache",
    "ZeroPool",
]
