"""Physical address space: technology-typed memory regions.

The simulated machine exposes physical memory as a sorted list of
non-overlapping regions, each backed by one technology (DRAM or NVM).
Everything above — allocators, page tables, file systems — deals in
physical frame numbers (PFNs) carved from these regions; the cache model
asks :meth:`PhysicalMemory.tech_of` to price misses correctly (NVM reads
are ~4x DRAM in the default cost model).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError, InvalidAddressError
from repro.hw.costmodel import MemoryTechnology
from repro.units import PAGE_SIZE, fmt_bytes


@dataclass(frozen=True)
class MemoryRegion:
    """One contiguous physical region of a single memory technology."""

    start: int
    size: int
    tech: MemoryTechnology
    name: str = ""

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"region start must be >= 0, got {self.start}")
        if self.size <= 0 or self.size % PAGE_SIZE:
            raise ConfigurationError(
                f"region size must be a positive multiple of {PAGE_SIZE}, "
                f"got {self.size}"
            )
        if self.start % PAGE_SIZE:
            raise ConfigurationError(
                f"region start must be page-aligned, got {self.start:#x}"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.start + self.size

    @property
    def first_pfn(self) -> int:
        """First page-frame number in the region."""
        return self.start // PAGE_SIZE

    @property
    def frame_count(self) -> int:
        """Number of 4 KiB frames in the region."""
        return self.size // PAGE_SIZE

    def contains(self, paddr: int) -> bool:
        """True if ``paddr`` falls inside this region."""
        return self.start <= paddr < self.end

    def __repr__(self) -> str:
        label = self.name or self.tech.value
        return (
            f"MemoryRegion({label}: {self.start:#x}..{self.end:#x}, "
            f"{fmt_bytes(self.size)})"
        )


class PhysicalMemory:
    """The machine's physical address map.

    >>> from repro.units import GIB
    >>> pm = PhysicalMemory()
    >>> dram = pm.add_region(1 * GIB, MemoryTechnology.DRAM, name="dram0")
    >>> nvm = pm.add_region(4 * GIB, MemoryTechnology.NVM, name="nvm0")
    >>> pm.tech_of(dram.start) is MemoryTechnology.DRAM
    True
    """

    def __init__(self) -> None:
        self._regions: List[MemoryRegion] = []
        self._starts: List[int] = []
        self._next_start = 0

    @property
    def regions(self) -> List[MemoryRegion]:
        """All regions, sorted by start address."""
        return list(self._regions)

    def add_region(
        self,
        size: int,
        tech: MemoryTechnology,
        name: str = "",
        start: Optional[int] = None,
    ) -> MemoryRegion:
        """Append a region; defaults to packing after the last one."""
        if start is None:
            start = self._next_start
        region = MemoryRegion(start=start, size=size, tech=tech, name=name)
        for existing in self._regions:
            if region.start < existing.end and existing.start < region.end:
                raise ConfigurationError(
                    f"region {region!r} overlaps existing {existing!r}"
                )
        index = bisect.bisect_left(self._starts, region.start)
        self._regions.insert(index, region)
        self._starts.insert(index, region.start)
        self._next_start = max(self._next_start, region.end)
        return region

    def region_of(self, paddr: int) -> MemoryRegion:
        """Region containing ``paddr``; raises if it maps nowhere."""
        index = bisect.bisect_right(self._starts, paddr) - 1
        if index >= 0 and self._regions[index].contains(paddr):
            return self._regions[index]
        raise InvalidAddressError(
            f"physical address {paddr:#x} is outside all memory regions"
        )

    def tech_of(self, paddr: int) -> MemoryTechnology:
        """Backing technology at ``paddr`` (DRAM if the address is hole —
        holes arise only from modeling artifacts like MMIO, so default
        cheap rather than raising on the hot cache path)."""
        index = bisect.bisect_right(self._starts, paddr) - 1
        if index >= 0 and self._regions[index].contains(paddr):
            return self._regions[index].tech
        return MemoryTechnology.DRAM

    def total_size(self, tech: Optional[MemoryTechnology] = None) -> int:
        """Total bytes, optionally restricted to one technology."""
        return sum(
            region.size
            for region in self._regions
            if tech is None or region.tech is tech
        )

    def total_frames(self, tech: Optional[MemoryTechnology] = None) -> int:
        """Total 4 KiB frames, optionally restricted to one technology."""
        return self.total_size(tech) // PAGE_SIZE

    def __repr__(self) -> str:
        return f"PhysicalMemory({len(self._regions)} regions, {fmt_bytes(self.total_size())})"
