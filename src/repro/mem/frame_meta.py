"""Per-frame metadata: the simulator's ``struct page``.

Paper §2 motivates O(1) memory with the observation that "the Linux PAGE
structure has 25 separate flags to track memory status and 38 fields", and
that maintaining this per 4 KiB frame makes many kernel paths linear in
memory size.  This module reproduces that baseline faithfully: a
:class:`PageFlags` set modeled on Linux's ``enum pageflags`` and a
:class:`FrameTable` that charges the cost-model's metadata-update price for
every touched frame — so benchmarks can measure exactly the linear costs
the paper argues against, and the file-only-memory path can show them
disappearing (one bit per block in a bitmap instead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel


class PageFlags(enum.IntFlag):
    """Frame status flags, mirroring Linux's 25-flag ``enum pageflags``."""

    LOCKED = enum.auto()
    ERROR = enum.auto()
    REFERENCED = enum.auto()
    UPTODATE = enum.auto()
    DIRTY = enum.auto()
    LRU = enum.auto()
    ACTIVE = enum.auto()
    SLAB = enum.auto()
    OWNER_PRIV = enum.auto()
    ARCH = enum.auto()
    RESERVED = enum.auto()
    PRIVATE = enum.auto()
    PRIVATE_2 = enum.auto()
    WRITEBACK = enum.auto()
    HEAD = enum.auto()
    SWAPCACHE = enum.auto()
    MAPPEDTODISK = enum.auto()
    RECLAIM = enum.auto()
    SWAPBACKED = enum.auto()
    UNEVICTABLE = enum.auto()
    MLOCKED = enum.auto()
    UNCACHED = enum.auto()
    HWPOISON = enum.auto()
    YOUNG = enum.auto()
    IDLE = enum.auto()

    @classmethod
    def flag_count(cls) -> int:
        """Number of distinct flags (the paper counts 25 in Linux)."""
        return len(cls.__members__)


@dataclass
class FrameMeta:
    """Metadata for one physical frame.

    A condensed ``struct page``: flags, reference/map counts, the owning
    mapping (file or anon) and offset within it, LRU linkage, and the
    buddy/slab private word.  Linux packs 38 fields into unions; we keep
    the ones kernel paths in this simulator actually read or write.
    """

    pfn: int
    flags: PageFlags = PageFlags(0)
    refcount: int = 0
    mapcount: int = 0
    #: Owning object (an inode or anon-region token) and page index in it.
    mapping: Optional[object] = None
    index: int = 0
    #: Buddy order while free, or slab bookkeeping while PageFlags.SLAB.
    private: int = 0
    #: LRU list the frame is on ("active", "inactive", or "") — the state
    #: page-reclaim scans maintain and file-only memory eliminates.
    lru_list: str = ""

    def set_flag(self, flag: PageFlags) -> None:
        """Set ``flag`` on this frame."""
        self.flags |= flag

    def clear_flag(self, flag: PageFlags) -> None:
        """Clear ``flag`` on this frame."""
        self.flags &= ~flag

    def has_flag(self, flag: PageFlags) -> bool:
        """True if ``flag`` is set."""
        return bool(self.flags & flag)


class FrameTable:
    """The kernel's frame-metadata array (Linux's ``mem_map``).

    Entries are created lazily but *every access charges*
    ``frame_meta_update_ns``, because on real hardware the array is
    physically resident and touching an entry is a cache line reference
    plus read-modify-write.  The charging is what makes per-page kernel
    work visibly linear in the benchmarks.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        costs: Optional[CostModel] = None,
        counters: Optional[EventCounters] = None,
    ) -> None:
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._frames: Dict[int, FrameMeta] = {}

    def _charge(self) -> None:
        if self._clock is not None and self._costs is not None:
            self._clock.advance(self._costs.frame_meta_update_ns)
        if self._counters is not None:
            self._counters.bump("frame_meta_touch")

    def touch(self, pfn: int) -> FrameMeta:
        """Metadata for frame ``pfn``, charging one metadata update."""
        if pfn < 0:
            raise ValueError(f"pfn must be non-negative, got {pfn}")
        self._charge()
        meta = self._frames.get(pfn)
        if meta is None:
            meta = FrameMeta(pfn=pfn)
            self._frames[pfn] = meta
        return meta

    def peek(self, pfn: int) -> Optional[FrameMeta]:
        """Read metadata without charging (for tests/introspection)."""
        return self._frames.get(pfn)

    def get_ref(self, pfn: int) -> FrameMeta:
        """Increment the frame's refcount (charged)."""
        meta = self.touch(pfn)
        meta.refcount += 1
        return meta

    def put_ref(self, pfn: int) -> int:
        """Decrement refcount (charged); returns the new count."""
        meta = self.touch(pfn)
        if meta.refcount <= 0:
            raise ValueError(f"refcount underflow on pfn {pfn}")
        meta.refcount -= 1
        return meta.refcount

    def scan(self, pfns: Iterator[int]) -> Iterator[FrameMeta]:
        """Iterate metadata for ``pfns``, charging per frame.

        This is the primitive behind reclaim scans (clock hand, LRU aging)
        whose linear cost the paper's §3.1 eliminates.
        """
        for pfn in pfns:
            yield self.touch(pfn)

    def tracked_count(self) -> int:
        """Number of frames with instantiated metadata."""
        return len(self._frames)

    def items(self) -> Iterator[Tuple[int, FrameMeta]]:
        """(pfn, meta) pairs, uncharged, for assertions."""
        return iter(self._frames.items())
