"""Block bitmap with run-oriented operations.

File systems represent free space with one bit per block — the paper's §3.1
contrasts this ("unused blocks are represented by a single bit in a bitmap")
with the kernel's heavyweight per-page metadata.  The operations here are
run-oriented (``set_range``, ``find_clear_run``) because extent-based
allocation wants contiguous runs, and because run operations touch
O(run/word) memory rather than O(run) — part of what makes file-system
allocation cheap at scale.

The backing store is a single Python int used as a bitset, which makes the
word-level operations fast and the structure trivially copyable.
"""

from __future__ import annotations

from typing import Optional

from repro.lint.decorators import complexity


class Bitmap:
    """Fixed-size bitmap; bit i set means block i is allocated."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"bitmap size must be positive, got {size}")
        self._size = size
        self._bits = 0
        self._set_count = 0

    @property
    def size(self) -> int:
        """Number of bits tracked."""
        return self._size

    @property
    def set_count(self) -> int:
        """Number of set (allocated) bits."""
        return self._set_count

    @property
    def clear_count(self) -> int:
        """Number of clear (free) bits."""
        return self._size - self._set_count

    def _check_range(self, start: int, length: int) -> None:
        if start < 0 or length < 0 or start + length > self._size:
            raise IndexError(
                f"range [{start}, {start + length}) outside bitmap of "
                f"size {self._size}"
            )

    # ------------------------------------------------------------------
    # Single-bit operations
    # ------------------------------------------------------------------
    def test(self, index: int) -> bool:
        """True if bit ``index`` is set."""
        self._check_range(index, 1)
        return bool(self._bits >> index & 1)

    # ------------------------------------------------------------------
    # Run operations
    # ------------------------------------------------------------------
    def set_range(self, start: int, length: int) -> None:
        """Set ``length`` bits from ``start``; all must currently be clear."""
        self._check_range(start, length)
        if length == 0:
            return
        mask = (1 << length) - 1 << start
        if self._bits & mask:
            raise ValueError(
                f"set_range([{start}, {start + length})) overlaps set bits"
            )
        self._bits |= mask
        self._set_count += length

    def clear_range(self, start: int, length: int) -> None:
        """Clear ``length`` bits from ``start``; all must currently be set."""
        self._check_range(start, length)
        if length == 0:
            return
        mask = (1 << length) - 1 << start
        if self._bits & mask != mask:
            raise ValueError(
                f"clear_range([{start}, {start + length})) covers clear bits"
            )
        self._bits &= ~mask
        self._set_count -= length

    def run_is_clear(self, start: int, length: int) -> bool:
        """True if every bit in ``[start, start + length)`` is clear."""
        self._check_range(start, length)
        if length == 0:
            return True
        mask = (1 << length) - 1 << start
        return not self._bits & mask

    @complexity("n", note="next-fit scan across the bitmap")
    def find_clear_run(self, length: int, start_hint: int = 0) -> Optional[int]:
        """First index of ``length`` consecutive clear bits, or None.

        Searches from ``start_hint`` and wraps; allocators pass the last
        allocation point as the hint to approximate next-fit.
        """
        if length <= 0:
            raise ValueError(f"run length must be positive, got {length}")
        if length > self._size:
            return None
        hint = start_hint % self._size
        found = self._scan(hint, self._size, length)
        if found is None and hint:
            found = self._scan(0, hint + length - 1, length)
        return found

    @complexity("n", note="skips whole clear/set runs, worst case one pass")
    def _scan(self, lo: int, hi: int, length: int) -> Optional[int]:
        """Find a clear run of ``length`` within ``[lo, min(hi, size))``."""
        hi = min(hi, self._size)
        index = lo
        while index + length <= hi:
            if self._bits >> index & 1:
                index += 1
                continue
            # Found a clear bit: the clear run extends to the next set bit.
            window = self._bits >> index
            if window == 0:
                return index  # everything from here up is clear
            lowest_set = window & -window
            next_set = lowest_set.bit_length() - 1
            if next_set >= length:
                return index
            index += next_set + 1
        return None

    def largest_clear_run(self) -> int:
        """Length of the longest run of clear bits (fragmentation metric)."""
        best = 0
        current = 0
        bits = self._bits
        for index in range(self._size):
            if bits >> index & 1:
                current = 0
            else:
                current += 1
                if current > best:
                    best = current
        return best

    def __repr__(self) -> str:
        return f"Bitmap(size={self._size}, set={self._set_count})"
