"""Pre-zeroed frame pool: the O(1) erase strategy (paper §3.1).

Storing volatile data in persistent memory means frames must be zeroed
before reuse "for security purposes", and the paper notes this "is
currently a linear-time operation and suggests the need for new techniques
to efficiently erase memory in constant time".

The pool implements the standard answer: keep a reserve of frames zeroed
*off the critical path*.  Foreground allocation takes a pre-zeroed frame in
O(1); zeroing work is charged to a separate background-time account so
experiments can report both the foreground win and the true total work
(the space-for-time ledger the paper's principle requires).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import OutOfMemoryError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.lint import complexity, o1
from repro.mem.buddy import BuddyAllocator
from repro.units import PAGE_SIZE


class ZeroPool:
    """Reserve of pre-zeroed 4 KiB frames with background refill.

    Parameters
    ----------
    buddy:
        Source of raw frames.
    target_size:
        Frames the pool tries to keep ready; sizing it is the
        space-for-time knob studied in the zero-pool ablation bench.
    """

    def __init__(
        self,
        buddy: BuddyAllocator,
        target_size: int,
        clock: Optional[SimClock] = None,
        costs: Optional[CostModel] = None,
        counters: Optional[EventCounters] = None,
    ) -> None:
        if target_size < 0:
            raise ValueError(f"target_size must be >= 0, got {target_size}")
        self._buddy = buddy
        self._target_size = target_size
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._pool: Deque[int] = deque()
        #: Simulated ns of zeroing done off the critical path.
        self._background_ns = 0
        #: Simulated ns of zeroing that had to happen in the foreground
        #: because the pool was empty.
        self._foreground_zero_ns = 0

    # ------------------------------------------------------------------
    # Foreground path
    # ------------------------------------------------------------------
    @o1(note="popleft when stocked; misses fall back to foreground zeroing")
    def take(self) -> int:
        """Take one zeroed frame.

        O(1) when the pool is stocked.  If the pool is empty, falls back
        to allocate-and-zero in the foreground (the linear baseline),
        which the ledger records separately.
        """
        san = getattr(self._counters, "sanitize", None)
        if self._pool:
            pfn = self._pool.popleft()
            if self._counters is not None:
                self._counters.bump("zeropool_hit")
            if san is not None:
                # The fast path skips zeroing: the frame must be clean.
                san.on_zeropool_take(pfn)
            qos = getattr(self._counters, "qos", None)
            if qos is not None:
                # The charge moves from the pool (root) to the taker.
                qos.on_frame_claimed(pfn)
            return pfn
        if self._counters is not None:
            self._counters.bump("zeropool_miss")
        # o1: allow(flow-bounded) -- pool-miss fallback; the stocked fast path never gets here
        pfn = self._buddy.alloc(0)
        zero_ns = self._zero_cost()
        if self._clock is not None:
            self._clock.advance(zero_ns)
        self._foreground_zero_ns += zero_ns
        if san is not None:
            san.on_frames_zeroed((pfn,))
        return pfn

    @o1(note="one buddy free")
    def give_back(self, pfn: int) -> None:
        """Return a dirty frame to the buddy (it must be re-zeroed later)."""
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_frames_tainted((pfn,))
        self._buddy.free(pfn)

    # ------------------------------------------------------------------
    # Background path
    # ------------------------------------------------------------------
    @complexity("n", note="background work, off the foreground clock")
    def refill(self, max_frames: Optional[int] = None) -> int:
        """Zero frames in the background up to the target; returns count.

        Runs "between requests": zeroing cost accrues to the background
        ledger, not the foreground clock, modeling a kzerod-style thread
        on an otherwise idle core.
        """
        added = 0
        while len(self._pool) < self._target_size:
            if max_frames is not None and added >= max_frames:
                break
            try:
                # o1: allow(flow-bounded) -- order-0 alloc per refilled frame; the loop is the declared n
                pfn = self._buddy.alloc(0)
            except OutOfMemoryError:
                break
            self._background_ns += self._zero_cost()
            self._pool.append(pfn)
            san = getattr(self._counters, "sanitize", None)
            if san is not None:
                san.on_frames_zeroed((pfn,))
            qos = getattr(self._counters, "qos", None)
            if qos is not None:
                # Pooled frames park on the root cgroup: background
                # zeroing is not billed to whoever triggered the refill.
                qos.on_frame_pooled(pfn)
            added += 1
        if added and self._counters is not None:
            self._counters.bump("zeropool_refill_frames", added)
        return added

    def _zero_cost(self) -> int:
        costs = self._costs or CostModel()
        return costs.zero_page_ns(PAGE_SIZE)

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------
    @property
    def available(self) -> int:
        """Zeroed frames ready to hand out."""
        return len(self._pool)

    @property
    def target_size(self) -> int:
        """Frames the pool aims to keep stocked."""
        return self._target_size

    def ledger(self) -> Dict[str, int]:
        """Where zeroing time went: foreground vs background ns."""
        return {
            "background_zero_ns": self._background_ns,
            "foreground_zero_ns": self._foreground_zero_ns,
            "pooled_frames": len(self._pool),
            "reserved_bytes": len(self._pool) * PAGE_SIZE,
        }
