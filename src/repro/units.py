"""Size and time units used throughout the simulator.

All sizes are in bytes and all simulated times are in nanoseconds, carried
as plain ints so arithmetic stays exact and hashable.  The helpers here keep
call sites readable (``4 * KIB`` instead of ``4096``) and centralise the
page-geometry constants of the simulated x86-64-like machine.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Sizes (bytes)
# ---------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: Base (small) page size, as on x86-64.
PAGE_SIZE = 4 * KIB

#: Huge-page sizes supported by the simulated processor.  x86-64 pages are
#: powers of 512 times larger than 4 KiB.
HUGE_PAGE_2M = 2 * MIB
HUGE_PAGE_1G = 1 * GIB

#: Number of entries in one page-table node (9 translated bits per level).
PTES_PER_TABLE = 512

#: Cache-line size used by the cache model.
CACHE_LINE = 64

# ---------------------------------------------------------------------------
# Times (nanoseconds)
# ---------------------------------------------------------------------------

NSEC = 1
USEC = 1000
MSEC = 1000 * USEC
SEC = 1000 * MSEC


def pages_for(size: int, page_size: int = PAGE_SIZE) -> int:
    """Number of pages of ``page_size`` needed to cover ``size`` bytes.

    >>> pages_for(1)
    1
    >>> pages_for(4096)
    1
    >>> pages_for(4097)
    2
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if page_size <= 0:
        raise ValueError(f"page_size must be positive, got {page_size}")
    return -(-size // page_size)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """True if ``value`` is a multiple of ``alignment`` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value & (alignment - 1)) == 0


def fmt_bytes(size: int) -> str:
    """Human-readable size, e.g. ``fmt_bytes(2 * MIB) == '2.0 MiB'``."""
    if size < 0:
        return "-" + fmt_bytes(-size)
    for unit, name in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if size >= unit:
            return f"{size / unit:.1f} {name}"
    return f"{size} B"


def fmt_ns(ns: int) -> str:
    """Human-readable simulated time, e.g. ``fmt_ns(2500) == '2.50 us'``."""
    if ns < 0:
        return "-" + fmt_ns(-ns)
    if ns >= SEC:
        return f"{ns / SEC:.3f} s"
    if ns >= MSEC:
        return f"{ns / MSEC:.3f} ms"
    if ns >= USEC:
        return f"{ns / USEC:.2f} us"
    return f"{ns} ns"
