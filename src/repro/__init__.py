"""repro: a reproduction of "Towards O(1) Memory" (HotOS '17, M. Swift).

The library simulates an OS memory-management stack — physical memory,
buddy/slab allocators, multi-level page tables, TLBs, demand paging,
tmpfs/PMFS/DAX file systems — with a calibrated cost model, and implements
the paper's three O(1) designs on top:

* :mod:`repro.core.fom` — file-only memory,
* :mod:`repro.core.pbm` — physically based mappings,
* :mod:`repro.core.rangetrans` — range translations,
* :mod:`repro.core.o1` — O(1) policies (erase, pre-created page tables).

Entry point for most users::

    from repro.kernel import Kernel
    kernel = Kernel.standard()

See README.md for a tour and benchmarks/ for the paper's figures.
"""

from repro.kernel.kernel import Kernel, MachineConfig

__version__ = "1.0.0"

__all__ = ["Kernel", "MachineConfig", "__version__"]
