"""Exception hierarchy for the O(1)-memory simulator.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  Subsystems raise the most specific subclass;
messages always include the offending operands so failures are debuggable
without a stack-trace spelunk.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class OutOfMemoryError(ReproError):
    """Physical memory (or a specific region/pool) is exhausted."""


class InvalidAddressError(ReproError):
    """A virtual or physical address is outside any valid mapping/region."""


class AlignmentError(ReproError):
    """An address or size violates a required alignment."""


class ProtectionError(ReproError):
    """An access violates the permissions of its mapping (SIGSEGV-like)."""


class MappingError(ReproError):
    """mmap/munmap/mprotect request is malformed or conflicts with state."""


class FileSystemError(ReproError):
    """Generic file-system failure (bad path, exhausted blocks, ...)."""


class FileNotFoundError_(FileSystemError):
    """Named file does not exist.  Underscore avoids shadowing the builtin."""


class FileExistsError_(FileSystemError):
    """Named file already exists where exclusive creation was requested."""


class NoSpaceError(FileSystemError):
    """File system has no free blocks/extents for the request (ENOSPC)."""


class BadFileDescriptorError(FileSystemError):
    """Operation on a closed or never-opened file descriptor (EBADF)."""


class MemoryPoisonError(ReproError):
    """Machine-check-style trap: an access consumed poisoned media.

    Carries the physical location so the kernel's degradation policy can
    classify the backing (anonymous vs file-backed) and repair or kill.
    """

    def __init__(
        self,
        message: str,
        pfn: "int | None" = None,
        paddr: "int | None" = None,
        write: bool = False,
    ) -> None:
        super().__init__(message)
        self.pfn = pfn
        self.paddr = paddr
        self.write = write


class MediaError(FileSystemError):
    """Uncorrectable media error surfaced through the file API (EIO)."""

    def __init__(self, message: str, pfn: "int | None" = None) -> None:
        super().__init__(message)
        self.pfn = pfn


class ProcessError(ReproError):
    """Invalid process operation (double exit, unknown pid, ...)."""


class OomKilledError(ProcessError):
    """The calling process was killed by the QoS OOM killer.

    Raised at the victim's next syscall/access entry — the sim's analogue
    of SIGKILL delivery on return to userspace.  The allocation that
    triggered the kill itself succeeds (memory-reserve semantics), so the
    killer never tears down a process mid-fault.
    """


class SimulatedCrashError(ReproError):
    """Raised at an injected crash point (power failure mid-operation)."""


class ConfigurationError(ReproError):
    """Simulator was constructed with inconsistent parameters."""
