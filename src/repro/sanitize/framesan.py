"""FrameSan: frame-lifetime detector.

Shadow state, per allocator:

* **DRAM (buddy)** — a full mirror of the allocator's outstanding
  blocks (``pfn -> order``), lazily seeded from the allocator's own
  ledger at the first armed event so allocations made before arming
  (e.g. the zero pool refilled inside ``Kernel.__init__``) are known.
* **NVM (PMFS block allocator)** — event-based: the sets of blocks
  allocated and freed *since arming*.  The bitmap's pre-arm contents
  are unknown and stay unjudged; a block freed twice since arming is a
  double free regardless.
* **Taint** — frames whose contents are not zero (crypto-erased or
  returned dirty).  The zero pool's fast path must only ever hand out
  frames that were zeroed since they were last dirtied.

Checks: double free / free of an unallocated block, use-after-free on
every CPU data access, read-of-non-zeroed-frame on the zero-pool fast
path, and leak accounting surfaced in the report (not a violation —
the simulator deliberately drops some COW frames at teardown).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Set, Tuple

from repro.lint.decorators import complexity, o1
from repro.units import PAGE_SIZE

Report = Callable[[str, str, Dict[str, Any]], None]


class FrameSan:
    """Frame-lifetime shadow ledgers and checks."""

    def __init__(self, report: Report) -> None:
        self._report = report
        #: id(buddy) -> {block pfn -> order} mirror of outstanding blocks.
        self._dram: Dict[int, Dict[int, int]] = {}
        #: id(buddy) -> (first_pfn, frame_count, max_order) for UAF lookup.
        self._dram_regions: Dict[int, Tuple[int, int, int]] = {}
        #: id(nvm allocator) -> set of blocks allocated since arming.
        self._nvm_allocated: Dict[int, Set[int]] = {}
        #: id(nvm allocator) -> set of blocks freed (and not re-allocated).
        self._nvm_freed: Dict[int, Set[int]] = {}
        #: id(nvm allocator) -> (first_pfn, block_count) for UAF lookup.
        self._nvm_regions: Dict[int, Tuple[int, int]] = {}
        #: 4 KiB frames whose contents are known non-zero.
        self._tainted: Set[int] = set()
        #: Frames permanently retired by RAS — any later allocation,
        #: free, or access of one is a violation.  PFNs are globally
        #: unique across regions, so one set covers DRAM and NVM.
        self._retired: Set[int] = set()

    # ------------------------------------------------------------------
    # DRAM buddy ledger
    # ------------------------------------------------------------------
    def _dram_ledger(self, allocator: Any) -> Dict[int, int]:
        key = id(allocator)
        ledger = self._dram.get(key)
        if ledger is None:
            # Lazy seed: everything the allocator already holds as
            # allocated predates arming and is taken on faith.
            ledger = dict(allocator._allocated)
            self._dram[key] = ledger
            region = allocator._region
            self._dram_regions[key] = (
                region.first_pfn,
                region.frame_count,
                allocator._max_order,
            )
        return ledger

    @o1(note="probes the retired set, not the block")
    def on_dram_alloc(self, allocator: Any, pfn: int, order: int) -> None:
        """Buddy handed out a block."""
        end = pfn + (1 << order)
        # Iterate the (small) retired set, not the (possibly huge) block.
        # o1: allow(o1-size-loop) -- the retired set holds the few frames RAS pulled, not operand data
        if any(pfn <= retired < end for retired in self._retired):
            self._report(
                "retired-frame-realloc",
                f"buddy handed out block pfn {pfn:#x} order {order} "
                "containing a permanently retired frame",
                {"pfn": pfn, "order": order},
            )
        self._dram_ledger(allocator)[pfn] = order

    def on_dram_free(self, allocator: Any, pfn: int) -> None:
        """Buddy is about to free a block: it must be outstanding."""
        if pfn in self._retired:
            self._report(
                "retired-frame-free",
                f"free of permanently retired frame {pfn:#x}",
                {"pfn": pfn},
            )
            return
        ledger = self._dram_ledger(allocator)
        if pfn not in ledger:
            self._report(
                "double-free",
                f"buddy free of block pfn {pfn:#x} which is not an "
                "outstanding allocation (double free, or free of an "
                "interior/never-allocated frame)",
                {"pfn": pfn},
            )
            return
        del ledger[pfn]

    @o1(note="probes max_order + 1 candidate block starts")
    def dram_block_allocated(self, allocator_key: int, frame: int) -> bool:
        """Is the 4 KiB ``frame`` inside some outstanding buddy block?"""
        ledger = self._dram.get(allocator_key)
        region = self._dram_regions.get(allocator_key)
        if ledger is None or region is None:
            return True
        first, _, max_order = region
        offset = frame - first
        # o1: allow(o1-size-loop) -- max_order is a config constant
        for order in range(max_order + 1):
            start = first + ((offset >> order) << order)
            if ledger.get(start) == order:
                return True
        return False

    # ------------------------------------------------------------------
    # NVM block ledger
    # ------------------------------------------------------------------
    def _nvm_sets(self, allocator: Any) -> Tuple[Set[int], Set[int]]:
        key = id(allocator)
        allocated = self._nvm_allocated.get(key)
        if allocated is None:
            allocated = set()
            self._nvm_allocated[key] = allocated
            self._nvm_freed[key] = set()
            region = allocator._region
            self._nvm_regions[key] = (region.first_pfn, region.frame_count)
        return allocated, self._nvm_freed[key]

    @complexity("n", note="one ledger update per block of the extent")
    def on_nvm_alloc(self, allocator: Any, first_block: int, block_count: int) -> None:
        """PMFS allocated an extent of blocks."""
        end = first_block + block_count
        # o1: allow(o1-size-loop) -- the retired set holds the few frames RAS pulled, not operand data
        if any(first_block <= retired < end for retired in self._retired):
            self._report(
                "retired-frame-realloc",
                f"NVM extent [{first_block:#x}, {end:#x}) contains a "
                "permanently retired block",
                {"pfn": first_block, "count": block_count},
            )
        allocated, freed = self._nvm_sets(allocator)
        for block in range(first_block, first_block + block_count):
            freed.discard(block)
            allocated.add(block)

    @complexity("n", note="one ledger update per block of the extent")
    def on_nvm_free(
        self, allocator: Any, first_block: int, block_count: int, check: bool
    ) -> None:
        """PMFS freed an extent.  ``check=False`` for fsck scrubbing."""
        allocated, freed = self._nvm_sets(allocator)
        for block in range(first_block, first_block + block_count):
            if check and block in freed:
                self._report(
                    "double-free",
                    f"NVM block {block:#x} freed twice (second free without "
                    "an intervening allocation)",
                    {"pfn": block},
                )
                return
            allocated.discard(block)
            freed.add(block)

    # ------------------------------------------------------------------
    # Use-after-free at access time
    # ------------------------------------------------------------------
    @o1(note="scans the machine's handful of memory regions")
    def check_access(self, paddr: int) -> None:
        """A CPU data access resolved to ``paddr``: the frame must be live."""
        frame = paddr // PAGE_SIZE
        if frame in self._retired:
            self._report(
                "retired-frame-access",
                f"data access at pa {paddr:#x} landed in permanently "
                f"retired frame {frame:#x}",
                {"paddr": paddr, "pfn": frame},
            )
            return
        # o1: allow(o1-size-loop) -- region list is machine topology, a config constant
        for key, (first, count, _) in self._dram_regions.items():
            if first <= frame < first + count:
                if not self.dram_block_allocated(key, frame):
                    self._report(
                        "use-after-free",
                        f"data access at pa {paddr:#x} landed in freed DRAM "
                        f"frame {frame:#x}",
                        {"paddr": paddr, "pfn": frame},
                    )
                return
        # o1: allow(o1-size-loop) -- region list is machine topology, a config constant
        for key, (first, count) in self._nvm_regions.items():
            if first <= frame < first + count:
                if frame in self._nvm_freed.get(key, set()):
                    self._report(
                        "use-after-free",
                        f"data access at pa {paddr:#x} landed in freed NVM "
                        f"block {frame:#x}",
                        {"paddr": paddr, "pfn": frame},
                    )
                return

    # ------------------------------------------------------------------
    # RAS retirement
    # ------------------------------------------------------------------
    def on_dram_retired(self, allocator: Any, pfn: int) -> None:
        """RAS retired a free DRAM frame: the buddy now carries it as an
        order-0 allocation it will never hand out; mirror that and mark
        the frame permanently unusable."""
        self._dram_ledger(allocator)[pfn] = 0
        self._retired.add(pfn)

    @complexity("n", note="one ledger update per retired block")
    def on_nvm_retired(self, allocator: Any, first_block: int, block_count: int) -> None:
        """RAS retired NVM blocks (badblock adoption or migration): the
        bitmap keeps them allocated forever; mark them unusable."""
        allocated, _freed = self._nvm_sets(allocator)
        for block in range(first_block, first_block + block_count):
            allocated.add(block)
            self._retired.add(block)

    # ------------------------------------------------------------------
    # Zeroing taint
    # ------------------------------------------------------------------
    def taint(self, frames: Any) -> None:
        """These frames' contents are no longer zero."""
        self._tainted.update(frames)

    def untaint(self, frames: Any) -> None:
        """These frames were zeroed (eagerly, pooled, or by fresh key)."""
        self._tainted.difference_update(frames)

    def check_zeroed_handout(self, pfn: int) -> None:
        """The zero pool's fast path handed out ``pfn``: must be clean."""
        if pfn in self._tainted:
            self._report(
                "non-zeroed-frame",
                f"zero-pool fast path handed out frame {pfn:#x} whose "
                "contents were never re-zeroed after being dirtied",
                {"pfn": pfn},
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Leak-accounting counts for ``sanitize_report.json``."""
        return {
            "dram_blocks_outstanding": sum(len(lg) for lg in self._dram.values()),
            "nvm_blocks_outstanding_since_arming": sum(
                len(s) for s in self._nvm_allocated.values()
            ),
            "tainted_frames": len(self._tainted),
            "retired_frames": len(self._retired),
        }
