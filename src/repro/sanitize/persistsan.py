"""PersistSan: NVM persist-ordering detector.

Epoch/fence model over the PMFS journal: every metadata mutation opens
a journal record (epoch begin), the commit write is the fence, and the
mutation may only be *applied* — made visible in the extent trees and
block bitmap — after its record is durably committed.  Likewise no
file data may become visible through the VFS write path while the
inode has an open, uncommitted record: the journal commit must be
durable before dependent data is.

The dynamic checks here are cross-checked statically by the
``persist-outside-txn`` rule in :mod:`repro.lint.astcheck`, which flags
call sites of the ``_apply_*`` family in functions that never issued a
journal commit beforehand.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

Report = Callable[[str, str, Dict[str, Any]], None]


class PersistSan:
    """Journal epoch tracking and apply/visibility ordering checks."""

    def __init__(self, report: Report) -> None:
        self._report = report
        #: ino -> count of open (begun, not committed/aborted) records.
        self._open: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------
    def on_begin(self, record: Any) -> None:
        """A journal record was appended (epoch opened)."""
        self._open[record.ino] = self._open.get(record.ino, 0) + 1

    def on_commit(self, record: Any) -> None:
        """The record's commit write completed (fence passed)."""
        self._close(record.ino)

    def on_abort(self, record: Any) -> None:
        """The transaction failed before commit (e.g. allocation failure)."""
        self._close(record.ino)

    def _close(self, ino: int) -> None:
        count = self._open.get(ino, 0)
        if count <= 1:
            self._open.pop(ino, None)
        else:
            self._open[ino] = count - 1

    def reset(self) -> None:
        """Power failure: open epochs die with the volatile state."""
        self._open.clear()

    # ------------------------------------------------------------------
    # Ordering checks
    # ------------------------------------------------------------------
    def check_apply(self, record: Any) -> None:
        """A journaled mutation is being applied: its fence must have passed."""
        if not record.committed or record.corrupted:
            state = "corrupted" if record.corrupted else "uncommitted"
            self._report(
                "apply-before-commit",
                f"journal record (op={record.op!r} ino={record.ino}) applied "
                f"while {state} — metadata became visible before its commit "
                "was durable",
                {"ino": record.ino, "op": record.op, "committed": record.committed},
            )

    def check_data_visible(self, inode: Any) -> None:
        """File data is being stored: the inode may hold no open epoch."""
        open_count = self._open.get(inode.ino, 0)
        if open_count:
            self._report(
                "data-before-commit",
                f"data written to ino {inode.ino} while {open_count} journal "
                "record(s) are still uncommitted — dependent data became "
                "visible before the journal fence",
                {"ino": inode.ino, "open_records": open_count},
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Open-epoch count for ``sanitize_report.json``."""
        return {"open_journal_records": sum(self._open.values())}
