"""The armable sanitizer suite: hook dispatch, arming, and reporting.

``SanitizerSuite`` is the single object the machine sees.  Arming
mirrors the chaos engine: ``kernel.arm_sanitizers(suite)`` binds the
suite to the kernel's counters registry, and every instrumented hot
path guards its hook behind one attribute probe::

    san = getattr(self._counters, "sanitize", None)
    if san is not None:
        san.on_frame_free(self, pfn)

Unarmed cost is that single ``getattr`` — no simulated-clock charge,
no counter bump — so every ``@o1`` declaration holds with sanitizers
compiled out of the picture.  Armed, the hooks maintain pure-Python
shadow state and never touch the simulated clock either: a fully
armed run produces bit-identical simulated timings (the golden-figure
tier enforces this).

Violations are surfaced three ways at once: collected on
``suite.violations``, counted as the ``sanitize_violation`` event plus
a typed obs trace instant, and — in halt mode (the default) — raised
immediately as :class:`~repro.sanitize.violations.SanitizerError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.decorators import o1
from repro.sanitize.framesan import FrameSan
from repro.sanitize.persistsan import PersistSan
from repro.sanitize.transsan import TransSan
from repro.sanitize.violations import SanitizerError, SanitizerViolation
from repro.units import PAGE_SIZE

#: All detector names, in report order.
DETECTORS: Tuple[str, ...] = ("trans", "frame", "persist")


class SanitizerSuite:
    """Shadow-state sanitizers for the simulated machine."""

    def __init__(
        self,
        detectors: Sequence[str] = DETECTORS,
        halt: bool = True,
    ) -> None:
        unknown = set(detectors) - set(DETECTORS)
        if unknown:
            raise ValueError(
                f"unknown detector(s) {sorted(unknown)}; valid: {list(DETECTORS)}"
            )
        if not detectors:
            raise ValueError("at least one detector must be armed")
        self.detectors: Tuple[str, ...] = tuple(d for d in DETECTORS if d in set(detectors))
        self.halt = halt
        self.violations: List[SanitizerViolation] = []
        self.checks: Dict[str, int] = {}
        self._counters: Optional[Any] = None
        self._trans: Optional[TransSan] = (
            TransSan(self._make_report("trans")) if "trans" in self.detectors else None
        )
        self._frame: Optional[FrameSan] = (
            FrameSan(self._make_report("frame")) if "frame" in self.detectors else None
        )
        self._persist: Optional[PersistSan] = (
            PersistSan(self._make_report("persist")) if "persist" in self.detectors else None
        )

    # ------------------------------------------------------------------
    # Arming / violation sink
    # ------------------------------------------------------------------
    def bind(self, counters: Any) -> None:
        """Attach to a kernel's counters registry (called by arm_sanitizers)."""
        self._counters = counters

    def _make_report(self, detector: str) -> Any:
        def report(kind: str, message: str, details: Dict[str, Any]) -> None:
            self._violate(detector, kind, message, details)

        return report

    def _violate(
        self, detector: str, kind: str, message: str, details: Dict[str, Any]
    ) -> None:
        violation = SanitizerViolation(
            detector=detector, kind=kind, message=message, details=details
        )
        self.violations.append(violation)
        counters = self._counters
        if counters is not None:
            counters.bump("sanitize_violation")
            tracer = getattr(counters, "tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.instant(
                    "sanitize_violation",
                    "kernel",
                    args={"detector": detector, "kind": kind, "message": message},
                )
        if self.halt:
            raise SanitizerError(violation.format())

    def _count(self, check: str) -> None:
        self.checks[check] = self.checks.get(check, 0) + 1

    # ------------------------------------------------------------------
    # TransSan hooks (paging / hw / pbm)
    # ------------------------------------------------------------------
    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_pte_map(self, pte: Any) -> None:
        """A PTE was installed in some page table (incl. donor tables)."""
        if self._trans is not None:
            # o1: allow(flow-bounded) -- shadow refcount walk; audit work is off the charged path
            self._trans.register_pte(pte)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_pte_unmap(self, pte: Any) -> None:
        """A PTE was removed."""
        if self._trans is not None:
            # o1: allow(flow-bounded) -- shadow refcount walk; audit work is off the charged path
            self._trans.unregister_pte(pte)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_subtree_dead(self, node: Any) -> None:
        """A shared subtree's last reference was unlinked."""
        if self._trans is not None:
            # o1: allow(flow-bounded) -- shadow teardown of a dead subtree; audit work is off the charged path
            self._trans.unregister_subtree(node)

    def check_tlb_hit(self, space: Any, vaddr: int, entry: Any, write: bool) -> None:
        """Validate a page-TLB hit against the page table."""
        if self._trans is not None:
            self._count("tlb_hit")
            self._trans.check_tlb_hit(space, vaddr, entry, write)

    def check_rtlb_hit(self, space: Any, vaddr: int, entry: Any, write: bool) -> None:
        """Validate a range-TLB hit against the range table."""
        if self._trans is not None:
            self._count("rtlb_hit")
            self._trans.check_rtlb_hit(space, vaddr, entry, write)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_pbm_claim(self, ino: int, first_frame: int, frame_count: int) -> None:
        """A PBM mapping claimed a physical extent for ``ino``."""
        if self._trans is not None:
            self._count("pbm_claim")
            # o1: allow(flow-bounded) -- shadow claim walk; audit work is off the charged path
            self._trans.claim_frames(ino, first_frame, frame_count)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_pbm_release(self, ino: int, first_frame: int, frame_count: int) -> None:
        """A PBM mapping released a physical extent."""
        if self._trans is not None:
            # o1: allow(flow-bounded) -- shadow release walk; audit work is off the charged path
            self._trans.release_frames(ino, first_frame, frame_count)

    # ------------------------------------------------------------------
    # FrameSan hooks (mem / zeroing / cpu)
    # ------------------------------------------------------------------
    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_frame_alloc(self, allocator: Any, pfn: int, order: int) -> None:
        """The buddy allocator handed out a block."""
        if self._frame is not None:
            self._frame.on_dram_alloc(allocator, pfn, order)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_frame_free(self, allocator: Any, pfn: int) -> None:
        """The buddy allocator is freeing a block."""
        if self._frame is not None:
            self._count("dram_free")
            self._frame.on_dram_free(allocator, pfn)
        if self._trans is not None:
            order = allocator._allocated.get(pfn)
            frames = 1 << order if order is not None else 1
            # o1: allow(flow-bounded) -- dangling-translation audit; off the charged path
            self._trans.check_frames_freed(pfn, frames, "buddy")

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_nvm_alloc(self, allocator: Any, first_block: int, block_count: int) -> None:
        """The PMFS block allocator carved out an extent."""
        if self._frame is not None:
            # o1: allow(flow-bounded) -- shadow ledger walk; audit work is off the charged path
            self._frame.on_nvm_alloc(allocator, first_block, block_count)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_nvm_free(
        self,
        allocator: Any,
        first_block: int,
        block_count: int,
        check: bool = True,
    ) -> None:
        """The PMFS block allocator released an extent.

        ``check=False`` marks fsck's leak scrub, which reclaims blocks
        the bitmap holds without an extent-tree owner — not a free of a
        live allocation, so the double-free check is skipped.
        """
        if self._frame is not None:
            self._count("nvm_free")
            # o1: allow(flow-bounded) -- shadow ledger walk; audit work is off the charged path
            self._frame.on_nvm_free(allocator, first_block, block_count, check)
        if self._trans is not None and check:
            # o1: allow(flow-bounded) -- dangling-translation audit; off the charged path
            self._trans.check_frames_freed(first_block, block_count, "pmfs")

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_frame_access(self, paddr: int) -> None:
        """A CPU data access resolved to ``paddr``."""
        if self._frame is not None:
            self._count("frame_access")
            self._frame.check_access(paddr)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_frames_tainted(self, frames: Sequence[int]) -> None:
        """These frames now hold non-zero (or unrecoverable) contents."""
        if self._frame is not None:
            self._frame.taint(frames)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_frames_zeroed(self, frames: Sequence[int]) -> None:
        """These frames were zeroed."""
        if self._frame is not None:
            self._frame.untaint(frames)

    def on_zeropool_take(self, pfn: int) -> None:
        """The zero pool's pre-zeroed fast path handed out ``pfn``."""
        if self._frame is not None:
            self._count("zeropool_take")
            self._frame.check_zeroed_handout(pfn)

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_frame_retired(self, allocator: Any, pfn: int) -> None:
        """RAS permanently retired a DRAM frame from the buddy allocator.

        Retirement implies the frame left service: any page-table entry
        still translating to it is a dangling translation (a migration
        or kill path forgot its TLB/PTE teardown).
        """
        if self._frame is not None:
            self._count("frame_retired")
            self._frame.on_dram_retired(allocator, pfn)
        if self._trans is not None:
            # o1: allow(flow-bounded) -- single-frame dangling-translation audit; off the charged path
            self._trans.check_frames_freed(pfn, 1, "ras")

    @o1(note="clock-neutral shadow audit, compiled out when unarmed")
    def on_nvm_retired(self, allocator: Any, first_block: int, block_count: int) -> None:
        """RAS retired NVM blocks onto the persisted badblock list."""
        if self._frame is not None:
            self._count("nvm_retired")
            # o1: allow(flow-bounded) -- shadow ledger walk; audit work is off the charged path
            self._frame.on_nvm_retired(allocator, first_block, block_count)
        if self._trans is not None:
            # o1: allow(flow-bounded) -- dangling-translation audit; off the charged path
            self._trans.check_frames_freed(first_block, block_count, "ras")

    # ------------------------------------------------------------------
    # PersistSan hooks (fs)
    # ------------------------------------------------------------------
    def on_journal_begin(self, fs: Any, record: Any) -> None:
        """A journal record was appended."""
        if self._persist is not None:
            self._persist.on_begin(record)

    def on_journal_commit(self, fs: Any, record: Any) -> None:
        """A journal record's commit write completed."""
        if self._persist is not None:
            self._persist.on_commit(record)

    def on_journal_abort(self, fs: Any, record: Any) -> None:
        """A journaled transaction failed before its commit."""
        if self._persist is not None:
            self._persist.on_abort(record)

    def on_journal_apply(self, fs: Any, record: Any) -> None:
        """A journaled mutation is being applied to the FS structures."""
        if self._persist is not None:
            self._count("journal_apply")
            self._persist.check_apply(record)

    def on_data_visible(self, inode: Any) -> None:
        """File data is being stored through the VFS write path."""
        if self._persist is not None:
            self._count("data_visible")
            self._persist.check_data_visible(inode)

    # ------------------------------------------------------------------
    # Crash lifecycle
    # ------------------------------------------------------------------
    def on_machine_crash(self) -> None:
        """Power failure: volatile shadow state (translations, epochs) dies."""
        if self._trans is not None:
            self._trans.reset()
        if self._persist is not None:
            self._persist.reset()

    def on_fs_crash(self, fs: Any) -> None:
        """PMFS-level crash/replay (also reached via machine crash)."""
        self.on_machine_crash()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Machine-readable summary (the ``sanitize_report.json`` payload)."""
        shadow: Dict[str, Any] = {}
        if self._trans is not None:
            shadow["trans"] = self._trans.stats()
        if self._frame is not None:
            shadow["frame"] = self._frame.stats()
        if self._persist is not None:
            shadow["persist"] = self._persist.stats()
        return {
            "version": 1,
            "tool": "repro-o1 sanitize",
            "armed_detectors": list(self.detectors),
            "halt": self.halt,
            "violation_count": len(self.violations),
            "violations": [v.to_dict() for v in self.violations],
            "checks": dict(sorted(self.checks.items())),
            "shadow": shadow,
            "page_size": PAGE_SIZE,
        }

    def write_report(self, path: Path) -> None:
        """Write :meth:`report` as JSON to ``path``."""
        path.write_text(json.dumps(self.report(), indent=2) + "\n")
