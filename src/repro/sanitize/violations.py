"""Violation records and the halt-mode error for the sanitizer suite.

A violation is a frozen, serializable fact: which detector fired, a
stable ``kind`` tag (machine-matchable in tests and reports), a human
message, and free-form details.  ``SanitizerError`` derives from
``AssertionError`` so a tripped sanitizer reads as a failed invariant
assertion in pytest output and never masquerades as a simulator error
(``OutOfMemoryError``, ``NoSpaceError``, ...) that kernel code might
legitimately catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


class SanitizerError(AssertionError):
    """Raised in halt mode when a detector observes a violation."""


@dataclass(frozen=True)
class SanitizerViolation:
    """One observed invariant violation."""

    #: Detector that fired: "trans", "frame", or "persist".
    detector: str
    #: Stable machine-matchable tag, e.g. "stale-tlb-entry".
    kind: str
    #: Human-readable description of what was observed.
    message: str
    #: Free-form context (addresses, pfns, inos) for the report.
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form for ``sanitize_report.json``."""
        return {
            "detector": self.detector,
            "kind": self.kind,
            "message": self.message,
            "details": dict(self.details),
        }

    def format(self) -> str:
        """One-line rendering for CLI output."""
        return f"[{self.detector}] {self.kind}: {self.message}"
