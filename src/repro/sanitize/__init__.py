"""Shadow-state sanitizers for the simulated machine (``repro.sanitize``).

Three armable detectors validate the semantic invariants the paper's
O(1) shortcuts must preserve:

* :class:`TransSan` — translation coherence: stale TLB/rTLB entries
  used after a mutation without shootdown, dangling translations into
  freed frames, PBM alias violations.
* :class:`FrameSan` — frame lifetime: double free, use-after-free,
  leak accounting, read of a non-zeroed frame.
* :class:`PersistSan` — NVM persist ordering: journal commit must be
  durable before dependent metadata or data becomes visible.

Arm with ``kernel.arm_sanitizers(SanitizerSuite())``; see DESIGN.md
("Shadow-state sanitizers") and TESTING.md for usage.
"""

from repro.sanitize.framesan import FrameSan
from repro.sanitize.persistsan import PersistSan
from repro.sanitize.suite import DETECTORS, SanitizerSuite
from repro.sanitize.transsan import TransSan
from repro.sanitize.violations import SanitizerError, SanitizerViolation

__all__ = [
    "DETECTORS",
    "FrameSan",
    "PersistSan",
    "SanitizerError",
    "SanitizerSuite",
    "SanitizerViolation",
    "TransSan",
]
