"""TransSan: translation-coherence detector.

Shadow state: a refcount per 4 KiB physical frame of how many live
translations (PTEs, including donor tables for premap/PBM sharing)
point into it.  The authoritative VA->PA truth is the machine's own
page table / range table — deliberately so: the detector's job is to
catch the *caches* (TLB, range TLB) disagreeing with that truth at use
time, and frames being freed while the truth still reaches them.

Checks:

* **stale TLB / rTLB entry used** — on every TLB or range-TLB hit the
  entry is compared against the architectural structure it caches; a
  mismatch means a PTE or range mutation happened without a shootdown.
* **dangling translation into a freed frame** — on every frame free
  (buddy or PMFS extent) the shadow refcount for the covered frames
  must be zero.
* **PBM alias violation** — no physical frame may be claimed by PBM
  mappings of two distinct files at once.

All bookkeeping is pure Python dict traffic: no simulated-clock
charges, no counter bumps on the success path.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Tuple

from repro.lint.decorators import complexity
from repro.units import PAGE_SIZE

#: Signature of the suite's violation sink: (kind, message, details).
Report = Callable[[str, str, Dict[str, Any]], None]


class TransSan:
    """Translation-coherence shadow state and checks."""

    def __init__(self, report: Report) -> None:
        self._report = report
        #: 4 KiB frame number -> number of live translations into it.
        self._refs: Dict[int, int] = {}
        #: PBM claims: 4 KiB frame number -> (ino, claim count).
        self._claims: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Shadow maintenance (PTE installs / removals)
    # ------------------------------------------------------------------
    @complexity("n", note="one shadow ref per 4 KiB frame of the PTE")
    def register_pte(self, pte: Any) -> None:
        """A PTE was installed: count its frames as translated."""
        first = pte.paddr // PAGE_SIZE
        for frame in range(first, first + pte.page_size // PAGE_SIZE):
            self._refs[frame] = self._refs.get(frame, 0) + 1

    @complexity("n", note="one shadow ref per 4 KiB frame of the PTE")
    def unregister_pte(self, pte: Any) -> None:
        """A PTE was removed.

        Forgiving on unbalanced removals: a machine crash resets the
        shadow wholesale, so teardown that runs afterwards (process
        exits inside ``Kernel.crash``) legitimately unmaps entries the
        shadow no longer tracks.
        """
        first = pte.paddr // PAGE_SIZE
        for frame in range(first, first + pte.page_size // PAGE_SIZE):
            count = self._refs.get(frame, 0)
            if count <= 1:
                self._refs.pop(frame, None)
            else:
                self._refs[frame] = count - 1

    @complexity("n", note="one visit per live entry under the dead subtree")
    def unregister_subtree(self, node: Any) -> None:
        """A shared subtree's last reference dropped: unregister its leaves.

        Child nodes still referenced elsewhere (``refs > 1``) keep their
        translations registered — they remain reachable through the
        surviving owner.
        """
        for entry in node.entries.values():
            if hasattr(entry, "entries"):
                if getattr(entry, "refs", 1) <= 1:
                    # o1: allow(flow-bounded) -- recursion depth is the fixed radix level count
                    self.unregister_subtree(entry)
            else:
                # o1: allow(flow-bounded) -- per-leaf unregister; the subtree walk is the declared n
                self.unregister_pte(entry)

    def reset(self) -> None:
        """Machine crash: volatile translations (and PBM claims) vanish."""
        self._refs.clear()
        self._claims.clear()

    # ------------------------------------------------------------------
    # Use-time cache coherence
    # ------------------------------------------------------------------
    def check_tlb_hit(self, space: Any, vaddr: int, entry: Any, write: bool) -> None:
        """Validate a page-TLB hit against the architectural page table."""
        page_table = getattr(space, "page_table", None)
        if page_table is None:
            return
        pte = page_table.lookup(vaddr)
        stale: str = ""
        if pte is None:
            stale = "no PTE backs the cached translation"
        elif pte.page_size != entry.page_size or pte.paddr != entry.paddr:
            stale = (
                f"PTE maps to {pte.paddr:#x}/{pte.page_size} but the TLB "
                f"cached {entry.paddr:#x}/{entry.page_size}"
            )
        elif write and entry.writable and not pte.writable:
            stale = "write through a TLB entry whose PTE was downgraded read-only"
        if stale:
            self._report(
                "stale-tlb-entry",
                f"TLB hit at va {vaddr:#x} used a stale translation "
                f"(missing shootdown?): {stale}",
                {"vaddr": vaddr, "asid": getattr(space, "asid", None), "write": write},
            )

    def check_rtlb_hit(self, space: Any, vaddr: int, entry: Any, write: bool) -> None:
        """Validate a range-TLB hit against the architectural range table.

        The authoritative lookup goes through the range table's sorted
        internals directly: ``space.lookup_range`` charges simulated
        time, and sanitizer checks must stay clock-neutral.
        """
        provider = getattr(space, "range_provider", None)
        table = getattr(provider, "__self__", None)
        bases = getattr(table, "_bases", None)
        entries = getattr(table, "_entries", None)
        if bases is None or entries is None:
            return
        index = bisect.bisect_right(bases, vaddr) - 1
        truth = entries[index] if 0 <= index < len(entries) else None
        if truth is not None and not truth.covers(vaddr):
            truth = None
        stale: str = ""
        if truth is None:
            stale = "no range-table entry backs the cached range"
        elif (
            truth.base != entry.base
            or truth.limit != entry.limit
            or truth.offset != entry.offset
        ):
            stale = (
                f"range table holds base={truth.base:#x} limit={truth.limit:#x} "
                f"offset={truth.offset:#x} but the rTLB cached "
                f"base={entry.base:#x} limit={entry.limit:#x} offset={entry.offset:#x}"
            )
        elif write and entry.writable and not truth.writable:
            stale = "write through an rTLB entry whose RTE was downgraded read-only"
        if stale:
            self._report(
                "stale-rtlb-entry",
                f"range-TLB hit at va {vaddr:#x} used a stale range "
                f"(missing invalidation?): {stale}",
                {"vaddr": vaddr, "asid": getattr(space, "asid", None), "write": write},
            )

    # ------------------------------------------------------------------
    # Frame-free coherence
    # ------------------------------------------------------------------
    @complexity("n", note="one shadow check per freed frame")
    def check_frames_freed(self, first_frame: int, frame_count: int, origin: str) -> None:
        """Frames are being freed: no live translation may reach them."""
        for frame in range(first_frame, first_frame + frame_count):
            count = self._refs.get(frame, 0)
            if count:
                self._report(
                    "dangling-translation",
                    f"{origin} freed frame {frame:#x} while {count} live "
                    "translation(s) still point into it",
                    {"pfn": frame, "translations": count, "origin": origin},
                )
                return

    # ------------------------------------------------------------------
    # PBM aliasing
    # ------------------------------------------------------------------
    @complexity("n", note="one shadow claim per frame of the extent")
    def claim_frames(self, ino: int, first_frame: int, frame_count: int) -> None:
        """A PBM mapping of file ``ino`` claims these frames."""
        for frame in range(first_frame, first_frame + frame_count):
            owner, count = self._claims.get(frame, (ino, 0))
            if owner != ino:
                self._report(
                    "pbm-alias",
                    f"PBM mapped frame {frame:#x} for ino {ino} but it is "
                    f"already claimed by ino {owner} — two files aliased "
                    "onto one frame",
                    {"pfn": frame, "ino": ino, "claimed_by": owner},
                )
                return
            self._claims[frame] = (ino, count + 1)

    @complexity("n", note="one shadow release per frame of the extent")
    def release_frames(self, ino: int, first_frame: int, frame_count: int) -> None:
        """A PBM mapping of file ``ino`` released these frames."""
        for frame in range(first_frame, first_frame + frame_count):
            owner, count = self._claims.get(frame, (ino, 0))
            if owner != ino or count <= 1:
                self._claims.pop(frame, None)
            else:
                self._claims[frame] = (owner, count - 1)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Live shadow-state sizes for ``sanitize_report.json``."""
        return {
            "translated_frames": len(self._refs),
            "pbm_claimed_frames": len(self._claims),
        }
