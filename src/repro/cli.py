"""Command-line interface: quick demos without writing any code.

Installed as ``repro-o1`` (see pyproject.toml)::

    repro-o1 demo        # the quickstart comparison, one command
    repro-o1 meminfo     # a fresh machine's memory accounting
    repro-o1 figures     # how to regenerate the paper's figures
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_meminfo, smaps
from repro.core.fom import FileOnlyMemory
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, fmt_ns


def _cmd_demo(args: argparse.Namespace) -> int:
    kernel = Kernel(
        MachineConfig(
            dram_bytes=1 * GIB, nvm_bytes=4 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    size = args.mib * MIB
    baseline = kernel.spawn("baseline")
    sys_calls = kernel.syscalls(baseline)
    va = sys_calls.mmap(size)
    with kernel.measure() as demand:
        kernel.access_range(baseline, va, size)
    fom = FileOnlyMemory(kernel)
    app = kernel.spawn("fom")
    with kernel.measure() as o1:
        region = fom.allocate(app, size)
        kernel.access_range(app, region.vaddr, size)
    print(f"touch {args.mib} MiB, demand paging:    {fmt_ns(demand.elapsed_ns)} "
          f"({demand.counter_delta.get('fault_minor', 0)} faults)")
    print(f"touch {args.mib} MiB, file-only memory: {fmt_ns(o1.elapsed_ns)} "
          f"({o1.counter_delta.get('pte_write', 0)} PTE writes, 0 faults)")
    print()
    print(smaps(app))
    return 0


def _cmd_meminfo(args: argparse.Namespace) -> int:
    kernel = Kernel(
        MachineConfig(dram_bytes=args.dram_gib * GIB, nvm_bytes=args.nvm_gib * GIB)
    )
    print(format_meminfo(kernel))
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    print("Regenerate every figure of the paper with:")
    print()
    print("    pytest benchmarks/ --benchmark-only")
    print()
    print("Tables land in benchmarks/results/*.txt; EXPERIMENTS.md maps")
    print("each one to its figure and the paper's claims.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro-o1 argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-o1",
        description="Towards O(1) Memory (HotOS '17) — simulator demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="demand paging vs file-only memory")
    demo.add_argument("--mib", type=int, default=16, help="region size in MiB")
    demo.set_defaults(func=_cmd_demo)
    meminfo = sub.add_parser("meminfo", help="fresh machine accounting")
    meminfo.add_argument("--dram-gib", type=int, default=4)
    meminfo.add_argument("--nvm-gib", type=int, default=16)
    meminfo.set_defaults(func=_cmd_meminfo)
    figures = sub.add_parser("figures", help="how to regenerate the figures")
    figures.set_defaults(func=_cmd_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
