"""Command-line interface: quick demos without writing any code.

Installed as ``repro-o1`` (see pyproject.toml)::

    repro-o1 demo        # the quickstart comparison, one command
    repro-o1 demo --trace out.json   # ... with a Chrome-trace recording
    repro-o1 trace       # record a trace + cost-attribution report
    repro-o1 stats       # counters and latency histograms for a workload
    repro-o1 meminfo     # a fresh machine's memory accounting
    repro-o1 figures     # how to regenerate the paper's figures
    repro-o1 chaos       # crash-at-any-point exploration with recovery oracles
    repro-o1 sanitize    # run a workload with shadow-state sanitizers armed
    repro-o1 ras         # seeded media-fault sweep: scrub, retire, migrate
    repro-o1 ras --sweep 10   # ... across workload seeds 0..9
    repro-o1 lint        # O(1) conformance: AST cost-shape check
    repro-o1 lint --fit  # ... plus the empirical complexity fitter
    repro-o1 lint --interproc   # ... plus call-graph cost summaries
    repro-o1 lint --interproc --dot callgraph.dot   # ... and the graph
    repro-o1 bench       # tier-1 wall-clock microbenchmarks
    repro-o1 bench --quick --compare BENCH_tier1.json   # CI regression gate
    repro-o1 profile     # wall-clock profile of the demo workload
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import (
    attribution_report,
    counters_report,
    format_meminfo,
    histogram_report,
    smaps,
)
from repro.core.fom import FileOnlyMemory
from repro.kernel import Kernel, MachineConfig
from repro.obs.export import export_tracer
from repro.units import GIB, MIB, fmt_ns


def _demo_kernel() -> Kernel:
    return Kernel(
        MachineConfig(
            dram_bytes=1 * GIB, nvm_bytes=4 * GIB,
            pmfs_extent_align_frames=512,
        )
    )


def _run_demo_workload(kernel: Kernel, mib: int, trace: bool = False):
    """The quickstart comparison; returns (demand, o1, app) measurements.

    With ``trace=True`` both measured phases record into the kernel's
    tracer under root spans, so attribution and Chrome-trace export work.
    """
    size = mib * MIB
    baseline = kernel.spawn("baseline")
    sys_calls = kernel.syscalls(baseline)
    va = sys_calls.mmap(size)
    with kernel.measure(trace=trace) as demand:
        kernel.access_range(baseline, va, size)
    fom = FileOnlyMemory(kernel)
    app = kernel.spawn("fom")
    with kernel.measure(trace=trace) as o1:
        region = fom.allocate(app, size)
        kernel.access_range(app, region.vaddr, size)
    return demand, o1, app


def _cmd_demo(args: argparse.Namespace) -> int:
    kernel = _demo_kernel()
    trace_path = getattr(args, "trace", None)
    demand, o1, app = _run_demo_workload(
        kernel, args.mib, trace=trace_path is not None
    )
    print(f"touch {args.mib} MiB, demand paging:    {fmt_ns(demand.elapsed_ns)} "
          f"({demand.counter_delta.get('fault_minor', 0)} faults)")
    print(f"touch {args.mib} MiB, file-only memory: {fmt_ns(o1.elapsed_ns)} "
          f"({o1.counter_delta.get('pte_write', 0)} PTE writes, 0 faults)")
    print()
    print(smaps(app))
    if trace_path is not None:
        count = export_tracer(trace_path, kernel.tracer)
        print()
        print(f"wrote {count} trace events to {trace_path} "
              "(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    kernel = _demo_kernel()
    demand, o1, _app = _run_demo_workload(kernel, args.mib, trace=True)
    count = export_tracer(args.out, kernel.tracer)
    total = demand.elapsed_ns + o1.elapsed_ns
    print(f"wrote {count} trace events to {args.out} "
          "(open in chrome://tracing or https://ui.perfetto.dev)")
    print()
    print("cost attribution, demand-paging phase:")
    print(attribution_report(
        demand.attribution, demand.elapsed_ns, kernel.tracer.process_names
    ))
    print()
    print("cost attribution, file-only-memory phase:")
    print(attribution_report(
        o1.attribution, o1.elapsed_ns, kernel.tracer.process_names
    ))
    print()
    print(f"measured total: {fmt_ns(total)} "
          f"(ring dropped {kernel.tracer.dropped_events} events)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    kernel = _demo_kernel()
    _run_demo_workload(kernel, args.mib, trace=True)
    print("latency histograms (simulated time per traced span):")
    print(histogram_report(kernel.counters))
    print()
    print("event counters:")
    print(counters_report(kernel.counters))
    return 0


def _cmd_meminfo(args: argparse.Namespace) -> int:
    kernel = Kernel(
        MachineConfig(dram_bytes=args.dram_gib * GIB, nvm_bytes=args.nvm_gib * GIB)
    )
    print(format_meminfo(kernel))
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    print("Regenerate every figure of the paper with:")
    print()
    print("    pytest benchmarks/ --benchmark-only")
    print()
    print("Tables land in benchmarks/results/*.txt (plus machine-readable")
    print(".json siblings); EXPERIMENTS.md maps each one to its figure and")
    print("the paper's claims.")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import explore, make_builder

    print(f"chaos: crash-at-any-point exploration, workload seed {args.seed}")
    progress = print if args.verbose else None
    report = explore(make_builder(seed=args.seed), progress=progress)
    print(report.summary())
    print()
    if report.ok():
        print(f"all {report.crash_points} crash points recover cleanly")
    else:
        print(f"{len(report.failures)} of {report.crash_points} crash points "
              "FAILED recovery (details above)")
    print(f"reproduce with: repro-o1 chaos --seed {args.seed}")
    return 0 if report.ok() else 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.sanitize import DETECTORS, SanitizerSuite

    if args.detectors:
        detectors = tuple(
            name.strip() for name in args.detectors.split(",") if name.strip()
        )
    else:
        detectors = DETECTORS

    if args.chaos:
        from repro.chaos import explore, make_builder

        print(
            f"sanitize: chaos sweep with detectors {','.join(detectors)}, "
            f"workload seed {args.seed}"
        )
        build = make_builder(seed=args.seed)
        suites: List[SanitizerSuite] = []

        def armed_build():
            kernel, run = build()
            suite = kernel.arm_sanitizers(
                SanitizerSuite(detectors=detectors, halt=False)
            )
            suites.append(suite)
            return kernel, run

        progress = print if args.verbose else None
        chaos_report = explore(armed_build, progress=progress)
        print(chaos_report.summary())
        violations = [v for suite in suites for v in suite.violations]
        checks: dict = {}
        for suite in suites:
            for name, count in suite.checks.items():
                checks[name] = checks.get(name, 0) + count
        report = {
            "version": 1,
            "tool": "repro-o1 sanitize",
            "mode": "chaos",
            "seed": args.seed,
            "armed_detectors": list(detectors),
            "crash_points": chaos_report.crash_points,
            "chaos_failures": len(chaos_report.failures),
            "violation_count": len(violations),
            "violations": [v.to_dict() for v in violations],
            "checks": dict(sorted(checks.items())),
        }
        failed = bool(violations) or not chaos_report.ok()
    else:
        kernel = _demo_kernel()
        suite = kernel.arm_sanitizers(
            SanitizerSuite(detectors=detectors, halt=False)
        )
        print(
            f"sanitize: demo workload ({args.mib} MiB) with detectors "
            f"{','.join(detectors)}"
        )
        _run_demo_workload(kernel, args.mib)
        violations = suite.violations
        checks = suite.checks
        report = suite.report()
        report["mode"] = "demo"
        failed = bool(violations)

    total_checks = sum(checks.values())
    print(f"{total_checks} shadow-state checks, {len(violations)} violation(s)")
    for violation in violations:
        print(f"  VIOLATION {violation.format()}")
    if args.json is not None:
        path = Path(args.json)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote sanitize report to {path}")
    if not failed:
        print("no shadow-state violations")
    return 1 if failed else 0


def _run_ras_seed(seed: int, verbose: bool = False) -> dict:
    """One RAS sweep iteration: Fig-2 workload under seeded media faults.

    Arms sanitizers (collecting) and a seeded fault model, patrol-scrubs
    the whole machine before and after the workload, and returns a
    machine-readable verdict: sanitizer violations, RAS audit problems,
    and the recovery oracles' findings must all be empty.
    """
    from repro.chaos.oracles import run_oracles
    from repro.chaos.workloads import fig2_workload
    from repro.ras import FaultKind, MediaFaultModel
    from repro.sanitize import SanitizerSuite

    kernel, run = fig2_workload(seed)
    suite = kernel.arm_sanitizers(SanitizerSuite(halt=False))
    ras = kernel.arm_ras(model=MediaFaultModel(seed=seed))
    sampled_dead = sorted(
        fault.pfn
        for fault in ras.model.faults()
        if fault.kind is FaultKind.DEAD
    )
    if verbose:
        print(f"  seed {seed}: {len(ras.model.faults())} sampled faults, "
              f"{len(sampled_dead)} dead")
    # Patrol pass 1: retire every sampled dead frame and clear sticky
    # poison before the workload allocates on top of the faults.
    ras.scrubber.scrub_full()
    # The workload injects two more permanent faults mid-run (one free
    # block, one live file block), retires them, then crashes the
    # machine and recovers — retirement and migration under fire.
    run()
    # Patrol pass 2: anything that was busy on the first pass.
    ras.scrubber.scrub_full()
    ras_problems = ras.audit()
    oracle_problems = run_oracles(kernel)
    report = ras.report()
    report["workload_seed"] = seed
    report["sampled_dead"] = sampled_dead
    report["sanitizer_violations"] = [v.to_dict() for v in suite.violations]
    report["oracle_problems"] = oracle_problems
    report["ok"] = (
        not suite.violations and not ras_problems and not oracle_problems
    )
    return report


def _cmd_ras(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    seeds = list(range(args.sweep)) if args.sweep else [args.seed]
    print(f"ras: media-fault sweep over workload seed(s) "
          f"{seeds[0]}..{seeds[-1]}")
    results = []
    for seed in seeds:
        result = _run_ras_seed(seed, verbose=args.verbose)
        results.append(result)
        status = "ok" if result["ok"] else "FAILED"
        print(
            f"  seed {seed}: {len(result['sampled_dead'])} sampled dead, "
            f"{len(result['retired'])} retired, "
            f"{len(result['badblock_pfns'])} on the badblock list: {status}"
        )
        for problem in result["problems"] + result["oracle_problems"]:
            print(f"    PROBLEM {problem}")
        for violation in result["sanitizer_violations"]:
            print(f"    VIOLATION {violation}")
    failed = [r for r in results if not r["ok"]]
    if args.json is not None:
        payload = {
            "version": 1,
            "tool": "repro-o1 ras",
            "seeds": seeds,
            "failed_seeds": [r["workload_seed"] for r in failed],
            "results": results,
        }
        path = Path(args.json)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote ras report to {path}")
    if failed:
        print(f"{len(failed)} of {len(seeds)} seed(s) FAILED")
        return 1
    print(f"all {len(seeds)} seed(s) clean: every dead frame retired onto "
          "the persisted badblock list, no sanitizer violations")
    return 0


def _cmd_qos(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.workloads.tenants import run_tenants

    seeds = list(range(args.sweep)) if args.sweep else [args.seed]
    print(
        f"qos: {args.tenants}-tenant fleet at {args.oversubscribe:.1f}x "
        f"DRAM oversubscription, seed(s) {seeds[0]}..{seeds[-1]}"
    )
    reports = []
    for seed in seeds:
        report = run_tenants(
            tenants=args.tenants,
            seed=seed,
            oversubscribe=args.oversubscribe,
        )
        reports.append(report)
        done = sum(r.requests_done for r in report.results)
        total = sum(r.requests_total for r in report.results)
        status = "ok" if report.ok() else "FAILED"
        print(
            f"  seed {seed}: {done}/{total} requests, "
            f"{len(report.kills)} oom kill(s), "
            f"{report.counters.get('qos_throttle_stall', 0)} throttle "
            f"stall(s): {status}"
        )
        for problem in report.problems():
            print(f"    PROBLEM {problem}")
    failed = [r for r in reports if not r.ok()]
    if len(reports) == 1:
        print(reports[0].summary())
    if args.json is not None:
        payload = {
            "version": 1,
            "tool": "repro-o1 qos",
            "seeds": seeds,
            "failed_seeds": [r.seed for r in failed],
            "results": [r.to_json() for r in reports],
        }
        path = Path(args.json)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote qos report to {path}")
    if failed:
        print(f"{len(failed)} of {len(reports)} seed(s) FAILED")
        return 1
    print(
        f"all {len(reports)} seed(s) clean: throttled tenants progressed, "
        "every OOM kill stayed inside the offending cgroup"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint.astcheck import lint_tree
    from repro.lint.baseline import apply_baseline, load_baseline
    from repro.lint.report import build_report, render_text, write_json


    from repro.lint.baseline import DEFAULT_BASELINE

    root = Path(args.root) if args.root else Path(__file__).parent
    if not root.is_dir():
        print(f"lint root {root} is not a directory", file=sys.stderr)
        return 2
    result = lint_tree(root)
    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    baseline = load_baseline(baseline_path) if baseline_path.exists() else []
    outcome = apply_baseline(result.violations, baseline)

    flow = None
    flow_outcome = None
    if args.interproc:
        from repro.lint.flow import (
            ALLOWABLE_RULES,
            DEFAULT_FLOW_BASELINE,
            run_flow,
        )

        flow = run_flow(root, intra_used=result.used_allows)
        flow_baseline_path = (
            Path(args.flow_baseline)
            if args.flow_baseline
            else DEFAULT_FLOW_BASELINE
        )
        flow_baseline = load_baseline(
            flow_baseline_path, known_rules=ALLOWABLE_RULES
        )
        flow_outcome = apply_baseline(flow.findings, flow_baseline)
        if args.dot is not None:
            dot_path = Path(args.dot)
            dot_path.parent.mkdir(parents=True, exist_ok=True)
            dot_path.write_text(flow.graph.to_dot(), encoding="utf-8")
            print(f"wrote call graph to {args.dot}")

    alloc = None
    alloc_outcome = None
    allocfit_results = None
    if args.alloc:
        from repro.lint.alloc import (
            DEFAULT_ALLOC_BASELINE,
            load_alloc_baseline,
            run_alloc,
        )
        from repro.lint.allocfit import run_allocfit

        alloc = run_alloc(
            root, graph=flow.graph if flow is not None else None
        )
        alloc_baseline_path = (
            Path(args.alloc_baseline)
            if args.alloc_baseline
            else DEFAULT_ALLOC_BASELINE
        )
        alloc_baseline = (
            load_alloc_baseline(alloc_baseline_path)
            if alloc_baseline_path.exists()
            else []
        )
        alloc_outcome = apply_baseline(alloc.findings, alloc_baseline)
        allocfit_results = run_allocfit()

    fits = None
    sizes = None
    if args.fit:
        from repro.lint.ops import HEAVY_SIZES, LIGHT_SIZES, fit_all

        sizes = HEAVY_SIZES if args.sizes == "heavy" else LIGHT_SIZES
        fits = fit_all(sizes, names=args.op or None)

    print(render_text(
        result, outcome, fits,
        flow=flow, flow_outcome=flow_outcome,
        alloc=alloc, alloc_outcome=alloc_outcome,
        allocfit_results=allocfit_results,
    ))
    if args.json is not None:
        report = build_report(
            result, outcome, fits, sizes=sizes,
            flow=flow, flow_outcome=flow_outcome,
            alloc=alloc, alloc_outcome=alloc_outcome,
            allocfit_results=allocfit_results,
        )
        write_json(Path(args.json), report)
        print(f"wrote machine-readable report to {args.json}")

    failed = bool(outcome.new) or bool(outcome.stale)
    if flow_outcome is not None:
        assert flow is not None
        failed = (
            failed
            or bool(flow_outcome.new)
            or bool(flow_outcome.stale)
            or bool(flow.stale_suppressions)
        )
    if alloc_outcome is not None:
        assert alloc is not None
        failed = (
            failed
            or bool(alloc_outcome.new)
            or bool(alloc_outcome.stale)
            or bool(alloc.stale_suppressions)
        )
    if allocfit_results is not None:
        failed = failed or any(not r.ok for r in allocfit_results)
    if fits is not None:
        failed = failed or any(not f.ok for f in fits)
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf import (
        MissingBaselineError,
        build_document,
        compare_to_baseline,
        env_fingerprint,
        results_table,
        run_suite,
    )

    mode = "quick" if args.quick else "full"
    print(f"bench: tier-1 wall-clock microbenchmarks ({mode} mode)")
    results = run_suite(
        names=args.op or None,
        quick=args.quick,
        rounds=args.rounds,
        progress=print if args.verbose else None,
    )
    env = env_fingerprint()
    print()
    print(results_table(results))
    print()
    print(f"calibration: {env['calibration_ns']:,.0f} ns "
          f"({env['python']} on {env['machine']}, {env['cpus']} cpus)")
    if args.json is not None:
        from repro.perf import write_document

        document = build_document(results, env=env, mode=mode)
        write_document(args.json, document)
        print(f"wrote bench document to {args.json}")
    if args.compare is None:
        return 0
    print()
    try:
        report = compare_to_baseline(
            args.compare, results, env=env, mode=mode
        )
    except MissingBaselineError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    print(report.render_text())
    if not report.ok:
        print(f"reproduce with: repro-o1 bench --compare {args.compare}")
        return 1
    baseline_name = Path(args.compare).name
    print(f"no wall-clock regressions against {baseline_name}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.perf import correlation_report

    kernel = _demo_kernel()
    profiler = kernel.arm_profiler()
    demand, o1, _app = _run_demo_workload(kernel, args.mib, trace=True)
    total_sim = demand.elapsed_ns + o1.elapsed_ns
    print(f"profile: demo workload ({args.mib} MiB), "
          f"{profiler.spans} spans sampled on the wall clock")
    print()
    print("sim-cost vs wall-cost correlation:")
    print(correlation_report(
        kernel.tracer.attribution, profiler.attribution,
        kernel.tracer.process_names,
    ))
    print()
    print(f"simulated total: {fmt_ns(total_sim)}; "
          f"wall total attributed: {fmt_ns(profiler.total_ns)}")
    if args.folded is not None:
        count = profiler.write_collapsed(args.folded)
        print(f"wrote {count} collapsed stacks to {args.folded} "
              "(feed to flamegraph.pl or speedscope)")
    if args.pstats is not None:
        count = profiler.write_pstats(args.pstats)
        print(f"wrote {count} pstats entries to {args.pstats} "
              "(load with python -m pstats)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro-o1 argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-o1",
        description="Towards O(1) Memory (HotOS '17) — simulator demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="demand paging vs file-only memory")
    demo.add_argument("--mib", type=int, default=16, help="region size in MiB")
    demo.add_argument(
        "--trace", metavar="PATH", default=None,
        help="also record a Chrome-trace JSON of both measured phases",
    )
    demo.set_defaults(func=_cmd_demo)
    trace = sub.add_parser(
        "trace", help="record a trace and print cost attribution"
    )
    trace.add_argument("--mib", type=int, default=16, help="region size in MiB")
    trace.add_argument(
        "-o", "--out", default="trace.json", help="Chrome-trace JSON path"
    )
    trace.set_defaults(func=_cmd_trace)
    stats = sub.add_parser(
        "stats", help="counters and latency histograms for the demo workload"
    )
    stats.add_argument("--mib", type=int, default=16, help="region size in MiB")
    stats.set_defaults(func=_cmd_stats)
    meminfo = sub.add_parser("meminfo", help="fresh machine accounting")
    meminfo.add_argument("--dram-gib", type=int, default=4)
    meminfo.add_argument("--nvm-gib", type=int, default=16)
    meminfo.set_defaults(func=_cmd_meminfo)
    figures = sub.add_parser("figures", help="how to regenerate the figures")
    figures.set_defaults(func=_cmd_figures)
    chaos = sub.add_parser(
        "chaos",
        help="crash the Fig-2 workload at every fault site, check recovery",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="workload seed; the printed seed reproduces any failure",
    )
    chaos.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-crash-point progress",
    )
    chaos.set_defaults(func=_cmd_chaos)
    sanitize = sub.add_parser(
        "sanitize",
        help="run a workload with the shadow-state sanitizer suite armed",
    )
    sanitize.add_argument(
        "--mib", type=int, default=16, help="demo region size in MiB"
    )
    sanitize.add_argument(
        "--detectors", metavar="LIST", default=None,
        help="comma-separated subset of trans,frame,persist (default: all)",
    )
    sanitize.add_argument(
        "--chaos", action="store_true",
        help="run the chaos crash-point sweep fully armed instead of the demo",
    )
    sanitize.add_argument(
        "--seed", type=int, default=0,
        help="chaos workload seed (with --chaos)",
    )
    sanitize.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-crash-point progress (with --chaos)",
    )
    sanitize.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable sanitize_report.json here",
    )
    sanitize.set_defaults(func=_cmd_sanitize)
    ras = sub.add_parser(
        "ras",
        help="seeded NVM media-fault sweep: scrub, retire, migrate, audit",
    )
    ras.add_argument(
        "--seed", type=int, default=0,
        help="workload + fault-model seed (ignored with --sweep)",
    )
    ras.add_argument(
        "--sweep", type=int, default=None, metavar="N",
        help="run seeds 0..N-1 instead of a single seed",
    )
    ras.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-seed fault details",
    )
    ras.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable ras_report.json here",
    )
    ras.set_defaults(func=_cmd_ras)
    qos = sub.add_parser(
        "qos",
        help="oversubscribed multi-tenant fleet under memcg pressure",
    )
    qos.add_argument(
        "--tenants", type=int, default=64,
        help="number of tenant cgroups (default 64)",
    )
    qos.add_argument(
        "--seed", type=int, default=0,
        help="fleet seed (ignored with --sweep)",
    )
    qos.add_argument(
        "--sweep", type=int, default=None, metavar="N",
        help="run seeds 0..N-1 instead of a single seed",
    )
    qos.add_argument(
        "--oversubscribe", type=float, default=2.0,
        help="sum of working sets as a multiple of DRAM (default 2.0)",
    )
    qos.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable qos_report.json here",
    )
    qos.set_defaults(func=_cmd_qos)
    lint = sub.add_parser(
        "lint",
        help="O(1) conformance: AST cost-shape linter + complexity fitter",
    )
    lint.add_argument(
        "--root", default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline file of accepted violations "
             "(default: the checked-in repro/lint/o1_baseline.json)",
    )
    lint.add_argument(
        "--fit", action="store_true",
        help="also run registered operations and fit cost vs size",
    )
    lint.add_argument(
        "--sizes", choices=("light", "heavy"), default="light",
        help="operand-size ladder for --fit (default: light)",
    )
    lint.add_argument(
        "--op", action="append", metavar="NAME",
        help="fit only this operation (repeatable)",
    )
    lint.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable lint_report.json here",
    )
    lint.add_argument(
        "--interproc", action="store_true",
        help="also run the interprocedural pass: call-graph cost "
             "summaries, declaration coverage from hot-path entries, "
             "must-call protocols, stale-suppression detection",
    )
    lint.add_argument(
        "--flow-baseline", default=None,
        help="baseline file for --interproc findings "
             "(default: the checked-in repro/lint/flow_baseline.json)",
    )
    lint.add_argument(
        "--dot", metavar="PATH", default=None,
        help="with --interproc, write the call graph in Graphviz DOT "
             "format here",
    )
    lint.add_argument(
        "--alloc", action="store_true",
        help="also run AllocSan: allocation-shape analysis certifying "
             "@allocfree/@allocbound declarations over the hot-path "
             "closure, plus the tracemalloc empirical cross-check",
    )
    lint.add_argument(
        "--alloc-baseline", default=None,
        help="baseline file for --alloc findings "
             "(default: the checked-in repro/lint/alloc_baseline.json; "
             "hot-closure findings can never be baselined)",
    )
    lint.set_defaults(func=_cmd_lint)
    bench = sub.add_parser(
        "bench",
        help="tier-1 wall-clock microbenchmarks + regression gate",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="bounded rounds and smaller batches (the CI gate mode)",
    )
    bench.add_argument(
        "--rounds", type=int, default=None, metavar="N",
        help="override rounds per op (default: 15 full / 5 quick)",
    )
    bench.add_argument(
        "--op", action="append", metavar="NAME",
        help="run only this op (repeatable)",
    )
    bench.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the BENCH_tier1.json-schema document here",
    )
    bench.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="gate against a baseline document; exit 1 on regression, "
             "2 if the baseline file is missing",
    )
    bench.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-op progress as results land",
    )
    bench.set_defaults(func=_cmd_bench)
    profile = sub.add_parser(
        "profile",
        help="wall-clock profile of the demo workload (sim vs wall report)",
    )
    profile.add_argument(
        "--mib", type=int, default=16, help="region size in MiB"
    )
    profile.add_argument(
        "--folded", metavar="PATH", default=None,
        help="write flamegraph collapsed stacks here",
    )
    profile.add_argument(
        "--pstats", metavar="PATH", default=None,
        help="write a pstats.Stats-loadable profile here",
    )
    profile.set_defaults(func=_cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
