"""`repro.lint.flow` — interprocedural O(1) conformance.

Orchestrates the whole-package pass behind ``repro-o1 lint
--interproc``: builds the syntactic call graph
(:mod:`repro.lint.callgraph`), propagates transitive cost summaries
(:mod:`repro.lint.summaries`), evaluates the must-call protocols
(:mod:`repro.lint.protocols`), and turns the results into findings:

``flow-cost-exceeds-declared``
    a declared function's transitive summary is worse than its
    decorator, with the witness call chain down to the loop.
``flow-undeclared``
    a function reachable from a ``Syscalls.*`` / ``Kernel.*`` hot-path
    entry point is neither declared nor constant-shaped.
``flow-stale-translation``
    a syscall-boundary entry can return with a page-table mutation no
    invalidation ever covers.
``flow-persist-outside-txn``
    a journal apply can execute with no commit anywhere on the path
    from its protocol root.
``flow-control-missing``
    a planted control (:mod:`repro.lint.controls`) was *not* flagged —
    the pass itself is broken.

Findings ratchet through ``flow_baseline.json`` (same format and
stale-entry semantics as the intra baseline; ships empty).  The pass
also owns stale-suppression detection: every ``# o1: allow`` comment
that neither the intra pass nor this one consumed is reported, with
unused-``noqa`` semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.astcheck import ALL_RULES
from repro.lint.callgraph import CallGraph, build_callgraph
from repro.lint.protocols import (
    RULE_FLOW_PERSIST,
    RULE_STALE_TRANSLATION,
    ProtocolResult,
    compute_protocols,
    persist_roots,
)
from repro.lint.summaries import (
    RULE_BOUNDED,
    RULE_COST_EXCEEDS,
    RULE_UNDECLARED,
    Cost,
    Hop,
    SummaryTable,
    declared_cost,
)

RULE_CONTROL_MISSING = "flow-control-missing"

#: Reportable flow rules (RULE_BOUNDED is suppression-only).
FLOW_RULES = (
    RULE_COST_EXCEEDS,
    RULE_UNDECLARED,
    RULE_STALE_TRANSLATION,
    RULE_FLOW_PERSIST,
    RULE_CONTROL_MISSING,
)

#: Every rule an ``# o1: allow`` comment may legitimately name.
ALLOWABLE_RULES = (*ALL_RULES, *FLOW_RULES, RULE_BOUNDED)

#: Default ratcheting baseline for flow findings; ships empty and the
#: CI gate keeps it that way — new violations get fixed, not baselined.
DEFAULT_FLOW_BASELINE = Path(__file__).with_name("flow_baseline.json")

#: Planted controls the pass must flag on every run (function, rule).
CONTROLS: Tuple[Tuple[str, str], ...] = (
    ("repro.lint.controls.control_undeclared_callee_loop", RULE_COST_EXCEEDS),
    ("repro.lint.controls.control_persist_commit_elsewhere", RULE_FLOW_PERSIST),
)

#: ``Kernel`` methods treated as hot-path entry points alongside every
#: public ``Syscalls`` method.
_KERNEL_ENTRY_NAMES = frozenset(
    {"spawn", "fork", "access", "access_range", "crash"}
)


@dataclass(frozen=True)
class FlowFinding:
    """One interprocedural finding, addressable by (function, rule)."""

    path: str
    line: int
    module: str
    qualname: str
    rule: str
    message: str
    chain: Tuple[Hop, ...] = ()

    @property
    def function(self) -> str:
        """Dotted name used by baseline entries."""
        return f"{self.module}.{self.qualname}"

    def format(self) -> str:
        head = f"{self.path}:{self.line}: [{self.rule}] {self.function}: {self.message}"
        if not self.chain:
            return head
        steps = "\n".join(f"      {hop.format()}" for hop in self.chain)
        return f"{head}\n{steps}"


@dataclass(frozen=True)
class StaleSuppression:
    """An ``# o1: allow`` comment that suppressed nothing in either pass."""

    path: str
    line: int
    rules: Tuple[str, ...]

    def format(self) -> str:
        listed = ", ".join(self.rules)
        return f"{self.path}:{self.line}: stale suppression # o1: allow({listed})"


@dataclass
class FlowResult:
    """Everything ``lint --interproc`` reports."""

    findings: List[FlowFinding]
    controls_verified: List[FlowFinding]
    stale_suppressions: List[StaleSuppression]
    entries: List[str]
    files: int
    functions: int
    sites_total: int
    sites_resolved: int
    graph: CallGraph = field(repr=False)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def entry_points(graph: CallGraph) -> List[str]:
    """Hot-path entries: public ``Syscalls`` methods plus the ``Kernel``
    operations user programs hit on every access/fork/crash."""
    entries: List[str] = []
    for klass in graph.classes.values():
        if klass.name == "Syscalls":
            entries.extend(
                fid
                for name, fid in sorted(klass.methods.items())
                if not name.startswith("_")
            )
        elif klass.name == "Kernel":
            entries.extend(
                fid
                for name, fid in sorted(klass.methods.items())
                if name in _KERNEL_ENTRY_NAMES
            )
    return entries


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------
def _cost_findings(table: SummaryTable) -> List[FlowFinding]:
    graph = table.graph
    findings: List[FlowFinding] = []
    for fid in sorted(graph.functions):
        func = graph.functions[fid]
        if func.declared is None:
            continue
        summary = table.summaries[fid]
        if summary.cost <= declared_cost(func.declared):
            continue
        allowed = graph.allow_maps[func.path]
        if allowed.allow((func.lineno,), RULE_COST_EXCEEDS):
            continue
        chain = tuple(table.witness_chain(fid))
        line = chain[0].line if chain else func.lineno
        findings.append(
            FlowFinding(
                path=func.path,
                line=line,
                module=func.module,
                qualname=func.qualname,
                rule=RULE_COST_EXCEEDS,
                message=(
                    f"declared {func.declared} but the call graph reaches "
                    f"{summary.cost.label} work"
                ),
                chain=chain,
            )
        )
    return findings


def _coverage_findings(
    table: SummaryTable, entries: Sequence[str]
) -> List[FlowFinding]:
    graph = table.graph
    parent: Dict[str, Tuple[Optional[str], int]] = {}
    order: List[str] = []
    for entry in entries:
        if entry in parent:
            continue
        parent[entry] = (None, graph.functions[entry].lineno)
        queue = [entry]
        while queue:
            current = queue.pop(0)
            order.append(current)
            for site in graph.calls.get(current, ()):
                for target in site.targets:
                    if target in parent or target not in graph.functions:
                        continue
                    parent[target] = (current, site.line)
                    queue.append(target)
    findings: List[FlowFinding] = []
    for fid in order:
        func = graph.functions[fid]
        if func.declared is not None:
            continue
        summary = table.summaries[fid]
        if summary.cost is Cost.CONSTANT:
            continue
        allowed = graph.allow_maps[func.path]
        if allowed.allow((func.lineno,), RULE_UNDECLARED):
            continue
        hops: List[Hop] = []
        cursor: Optional[str] = fid
        while cursor is not None:
            origin, line = parent[cursor]
            hops.append(
                Hop(
                    fid=cursor,
                    path=graph.functions[cursor].path,
                    line=line,
                    note="" if origin is None else "called from here",
                )
            )
            cursor = origin
        hops.reverse()
        witness = summary.witness
        if witness is not None:
            hops.append(
                Hop(fid=fid, path=func.path, line=witness.line, note=witness.detail)
            )
        entry_fid = hops[0].fid
        findings.append(
            FlowFinding(
                path=func.path,
                line=func.lineno,
                module=func.module,
                qualname=func.qualname,
                rule=RULE_UNDECLARED,
                message=(
                    f"reachable from hot-path entry {entry_fid} with "
                    f"{summary.cost.label} shape but no @o1/@complexity "
                    "declaration"
                ),
                chain=tuple(hops[:12]),
            )
        )
    return findings


def _protocol_findings(
    graph: CallGraph, protocols: ProtocolResult, entries: Sequence[str]
) -> List[FlowFinding]:
    findings: List[FlowFinding] = []
    for entry in entries:
        effect = protocols.tlb.get(entry)
        if effect is None or not effect.gen:
            continue
        func = graph.functions[entry]
        allowed = graph.allow_maps[func.path]
        if allowed.allow((func.lineno,), RULE_STALE_TRANSLATION):
            continue
        line = effect.chain[0].line if effect.chain else func.lineno
        findings.append(
            FlowFinding(
                path=func.path,
                line=line,
                module=func.module,
                qualname=func.qualname,
                rule=RULE_STALE_TRANSLATION,
                message=(
                    "page-table mutation can reach the syscall return with "
                    "no TLB/rTLB/premap invalidation on any later path"
                ),
                chain=effect.chain,
            )
        )
    roots = set(persist_roots(graph, protocols)) | set(entries)
    seen: Set[Tuple[str, str, int]] = set()
    for root in sorted(roots):
        effect = protocols.persist.get(root)
        if effect is None or not effect.pre_applies:
            continue
        func = graph.functions[root]
        allowed = graph.allow_maps[func.path]
        if allowed.allow((func.lineno,), RULE_FLOW_PERSIST):
            continue
        for chain in effect.pre_applies:
            apply_hop = chain[-1]
            key = (root, apply_hop.path, apply_hop.line)
            if key in seen:
                continue
            seen.add(key)
            line = chain[0].line if chain else func.lineno
            findings.append(
                FlowFinding(
                    path=func.path,
                    line=line,
                    module=func.module,
                    qualname=func.qualname,
                    rule=RULE_FLOW_PERSIST,
                    message=(
                        "journaled mutation can apply with no "
                        "_journal_commit() anywhere on the path from this "
                        "protocol root"
                    ),
                    chain=chain,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Controls and stale suppressions
# ---------------------------------------------------------------------------
def _split_controls(
    findings: List[FlowFinding],
) -> Tuple[List[FlowFinding], List[FlowFinding]]:
    control_keys = set(CONTROLS)
    real: List[FlowFinding] = []
    verified: List[FlowFinding] = []
    for finding in findings:
        if (finding.function, finding.rule) in control_keys:
            verified.append(finding)
        else:
            real.append(finding)
    fired = {(f.function, f.rule) for f in verified}
    for function, rule in CONTROLS:
        if (function, rule) in fired:
            continue
        module, _, qualname = function.rpartition(".")
        real.append(
            FlowFinding(
                path="<flow>",
                line=0,
                module=module,
                qualname=qualname,
                rule=RULE_CONTROL_MISSING,
                message=(
                    f"planted control was not flagged for {rule}; the "
                    "flow pass is not detecting what it is built to detect"
                ),
            )
        )
    return real, verified


def _stale_suppressions(
    graph: CallGraph, intra_used: Optional[Dict[str, Set[int]]]
) -> List[StaleSuppression]:
    stale: List[StaleSuppression] = []
    for path in sorted(graph.allow_maps):
        allow_map = graph.allow_maps[path]
        used = set(allow_map.used)
        if intra_used is not None:
            used |= intra_used.get(path, set())
        for line in sorted(allow_map.comment_lines):
            if line in used:
                continue
            stale.append(
                StaleSuppression(
                    path=path,
                    line=line,
                    rules=tuple(sorted(allow_map.comment_lines[line])),
                )
            )
    return stale


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def run_flow(
    root: Path,
    package: str = "repro",
    intra_used: Optional[Dict[str, Set[int]]] = None,
) -> FlowResult:
    """Run the whole interprocedural pass over the package at ``root``."""
    graph = build_callgraph(root, package)
    table = SummaryTable(graph)
    protocols = compute_protocols(graph)
    entries = entry_points(graph)
    findings = (
        _cost_findings(table)
        + _coverage_findings(table, entries)
        + _protocol_findings(graph, protocols, entries)
    )
    findings, verified = _split_controls(findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.function))
    stale = _stale_suppressions(graph, intra_used)
    return FlowResult(
        findings=findings,
        controls_verified=verified,
        stale_suppressions=stale,
        entries=entries,
        files=graph.files_parsed,
        functions=len(graph.functions),
        sites_total=graph.sites_total,
        sites_resolved=graph.sites_resolved,
        graph=graph,
    )
