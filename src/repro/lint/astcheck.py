"""AST cost-shape linter: declared complexity vs. the shape of the code.

The linter parses every module under a package root, finds functions
decorated ``@o1`` / ``@complexity("...")`` (matched syntactically, so the
checked code is never imported), and flags constructs that contradict the
declared class:

========================  ==================================================
``o1-size-loop``          a loop that can scale with operand size in a
                          declared-O(1) function (or a loop over a
                          page/frame/extent collection in a declared-O(log n)
                          function)
``o1-charge-in-loop``     a cost charge (``clock.advance`` / ``bump`` /
                          ``_charge``) inside such a loop — the signature of
                          per-page cost creep
``o1-recursion``          self-recursion in a declared-O(1)/O(log n) function
``o1-nested-size-loop``   nested size-dependent loops in a declared-linear
                          function
``persist-outside-txn``   a journaled-write apply (``_apply_alloc`` /
                          ``_apply_shrink`` / ``_apply_free`` /
                          ``_apply_migrate``) in a function
                          that never issued ``_journal_commit`` first — the
                          static half of PersistSan's ordering check; applies
                          to *every* function, declared or not
========================  ==================================================

Loops the AST can prove constant-bounded (``range(4)``, iteration over a
literal tuple) never flag.  Everything else is a heuristic with two escape
hatches: an inline ``# o1: allow(rule) -- reason`` comment on the flagged
line, the line above it, or the ``def`` line, and the checked-in baseline
file
(:mod:`repro.lint.baseline`) for known-O(n)-by-design legacy paths.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.decorators import ComplexityClass

RULE_SIZE_LOOP = "o1-size-loop"
RULE_CHARGE_IN_LOOP = "o1-charge-in-loop"
RULE_RECURSION = "o1-recursion"
RULE_NESTED_SIZE_LOOP = "o1-nested-size-loop"
RULE_PERSIST_OUTSIDE_TXN = "persist-outside-txn"

ALL_RULES = (
    RULE_SIZE_LOOP,
    RULE_CHARGE_IN_LOOP,
    RULE_RECURSION,
    RULE_NESTED_SIZE_LOOP,
    RULE_PERSIST_OUTSIDE_TXN,
)

#: Journal *apply* methods: each mutates durable metadata and must be
#: ordered after a commit (PersistSan checks this dynamically; the rule
#: below is the static half).
_PERSIST_APPLY_ATTRS = frozenset(
    {"_apply_alloc", "_apply_shrink", "_apply_free", "_apply_migrate"}
)

#: The call that makes a journal record durable.
_PERSIST_COMMIT_ATTR = "_journal_commit"

#: Identifier fragments that suggest an iterable scales with operand size.
_SIZE_NAME_RE = re.compile(
    r"size|count|pages?|npages|frames?|ptes?|extents?|blocks?|bytes"
    r"|length|entries|items|windows|segments|runs?|slots|vmas|pieces",
    re.IGNORECASE,
)

#: Stricter subset: collections of per-page objects.  O(log n) functions
#: may loop over orders/levels/retries, but never over these.
_PAGE_COLLECTION_RE = re.compile(
    r"pages?|npages|frames?|ptes?|extents?|blocks?|entries|windows"
    r"|segments|vmas|pieces",
    re.IGNORECASE,
)

#: Method names that charge simulated cost; one of these inside a
#: size-dependent loop is per-operand cost by construction.
_CHARGE_ATTRS = frozenset({"advance", "bump", "_charge", "charge", "observe"})

_ALLOW_RE = re.compile(r"#\s*o1:\s*allow\(([^)]*)\)")

#: The AllocSan spelling; same grammar, separate namespace, so one line
#: can carry both an ``# o1: allow`` and an ``# alloc: allow`` comment
#: without the rule vocabularies colliding.
ALLOC_ALLOW_RE = re.compile(r"#\s*alloc:\s*allow\(([^)]*)\)")

_LoopNode = Union[
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
]

_LOOP_TYPES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)

_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass(frozen=True)
class Violation:
    """One conformance finding, addressable by (function, rule)."""

    path: str
    line: int
    module: str
    qualname: str
    declared: Optional[ComplexityClass]
    rule: str
    message: str

    @property
    def function(self) -> str:
        """Dotted name used by baseline entries."""
        return f"{self.module}.{self.qualname}"

    def format(self) -> str:
        """One-line human-readable rendering."""
        if self.declared is None:
            return (
                f"{self.path}:{self.line}: [{self.rule}] {self.function}: "
                f"{self.message}"
            )
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.function} "
            f"declared {self.declared}: {self.message}"
        )


@dataclass
class LintResult:
    """Outcome of linting a tree: findings plus coverage counts."""

    violations: List[Violation]
    inline_suppressed: int
    files_checked: int
    functions_checked: int
    #: path -> line numbers of ``# o1: allow`` comments that suppressed
    #: (or bounded) something; the stale-suppression detector subtracts
    #: these (plus the flow pass's set) from every allow comment found.
    used_allows: Dict[str, Set[int]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------
def _allowed_lines(
    source: str, pattern: "re.Pattern[str]" = _ALLOW_RE
) -> Dict[int, Set[str]]:
    """line number -> rules allowed by an ``# o1: allow(...)`` comment."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = pattern.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        allowed[lineno] = rules or {"*"}
    return allowed


def allow_comment_lines(
    source: str, pattern: "re.Pattern[str]" = _ALLOW_RE
) -> Dict[int, Set[str]]:
    """Like :func:`_allowed_lines`, but only *real* comments count.

    The plain line scan also matches ``o1: allow(...)`` text inside
    docstrings (this module's own header, for one); staleness reporting
    must not flag those, so it works from the token stream instead.
    Falls back to the line scan if the file does not tokenize.
    """
    allowed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = pattern.search(token.string)
            if match is None:
                continue
            rules = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            allowed[token.start[0]] = rules or {"*"}
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return _allowed_lines(source, pattern)
    return allowed


class AllowMap:
    """Inline-suppression map for one file, with usage tracking.

    ``allow()`` is the query the lint passes use: it returns True when
    one of the candidate lines carries an allow comment naming the rule
    (or ``*``), and records the matched line so unused comments can be
    reported as stale afterwards.  ``match()`` is the same lookup
    without the usage side effect, for callers that only commit to the
    suppression later (e.g. a ``flow-bounded`` call-site allow is *used*
    only if the callee was actually non-constant).

    The default ``pattern`` reads ``# o1: allow(...)`` comments; the
    AllocSan pass builds its maps with :data:`ALLOC_ALLOW_RE` so the two
    suppression namespaces stay disjoint.
    """

    def __init__(
        self, source: str, pattern: "re.Pattern[str]" = _ALLOW_RE
    ) -> None:
        self.rules_by_line = _allowed_lines(source, pattern)
        self.comment_lines = allow_comment_lines(source, pattern)
        self.used: Set[int] = set()

    def match(self, lines: Iterable[int], rule: str) -> Optional[int]:
        """First candidate line allowing ``rule``, or None; no marking."""
        for lineno in lines:
            rules = self.rules_by_line.get(lineno)
            if rules is not None and (rule in rules or "*" in rules):
                return lineno
        return None

    def allow(self, lines: Iterable[int], rule: str) -> bool:
        """True (and mark the comment used) if any line allows ``rule``."""
        lineno = self.match(lines, rule)
        if lineno is None:
            return False
        self.used.add(lineno)
        return True

    def mark_used(self, lineno: int) -> None:
        self.used.add(lineno)


# ---------------------------------------------------------------------------
# Declaration matching (syntactic — mirrors repro.lint.decorators)
# ---------------------------------------------------------------------------
def _decorator_name(node: ast.expr) -> Optional[str]:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def declared_class_of(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> Optional[ComplexityClass]:
    """The complexity class declared by the function's decorators, if any."""
    for decorator in func.decorator_list:
        name = _decorator_name(decorator)
        if name == "o1":
            return ComplexityClass.CONSTANT
        if name == "complexity" and isinstance(decorator, ast.Call):
            if decorator.args and isinstance(decorator.args[0], ast.Constant):
                value = decorator.args[0].value
                if isinstance(value, str):
                    try:
                        return ComplexityClass.parse(value)
                    except ValueError:
                        return None
    return None


# ---------------------------------------------------------------------------
# Loop shape heuristics
# ---------------------------------------------------------------------------
def _is_constant_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_constant_expr(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_constant_expr(node.left) and _is_constant_expr(node.right)
    return False


def _loop_iterables(loop: _LoopNode) -> List[ast.expr]:
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        return [loop.iter]
    if isinstance(loop, ast.While):
        return [loop.test]
    return [generator.iter for generator in loop.generators]


def _is_constant_bounded(loop: _LoopNode) -> bool:
    """True when the loop provably runs a compile-time-constant number of
    times: ``range(<literals>)``, or iteration over a literal collection."""
    if isinstance(loop, ast.While):
        return False
    for iterable in _loop_iterables(loop):
        if isinstance(iterable, ast.Call):
            name = _decorator_name(iterable)
            if name in {"range", "reversed", "enumerate"} and all(
                _is_constant_expr(arg)
                or (isinstance(arg, (ast.Tuple, ast.List)) and not arg.elts)
                for arg in iterable.args
            ):
                continue
            return False
        if isinstance(iterable, (ast.Tuple, ast.List, ast.Set)):
            if all(not isinstance(elt, ast.Starred) for elt in iterable.elts):
                continue
            return False
        return False
    return True


def _names_in(node: ast.AST) -> List[str]:
    names: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.append(child.id)
        elif isinstance(child, ast.Attribute):
            names.append(child.attr)
    return names


def _matches(loop: _LoopNode, pattern: "re.Pattern[str]") -> bool:
    for iterable in _loop_iterables(loop):
        for name in _names_in(iterable):
            if pattern.search(name):
                return True
    return False


def _contains_charge(loop: _LoopNode) -> bool:
    for child in ast.walk(loop):  # nested defs are rare inside loops; accept
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if child.func.attr in _CHARGE_ATTRS:
                return True
    return False


# ---------------------------------------------------------------------------
# Per-function analysis
# ---------------------------------------------------------------------------
class _FunctionChecker:
    """Applies the class-specific rules to one declared function."""

    def __init__(
        self,
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        declared: ComplexityClass,
        module: str,
        qualname: str,
        path: str,
        allowed: AllowMap,
    ) -> None:
        self._func = func
        self._declared = declared
        self._module = module
        self._qualname = qualname
        self._path = path
        self._allowed = allowed
        self.violations: List[Violation] = []
        self.suppressed = 0

    def run(self) -> None:
        self._check_loops(self._func.body, depth=0, flagged_ancestor=False)
        if self._declared in (ComplexityClass.CONSTANT, ComplexityClass.LOG):
            self._check_recursion()

    # -- loops ---------------------------------------------------------
    def _check_loops(
        self, body: Sequence[ast.stmt], depth: int, flagged_ancestor: bool
    ) -> None:
        for stmt in body:
            self._visit(stmt, depth, flagged_ancestor)

    def _visit(self, node: ast.AST, depth: int, flagged_ancestor: bool) -> None:
        if isinstance(node, _SCOPE_TYPES):
            return  # nested defs are separate declarations (or none)
        if isinstance(node, _LOOP_TYPES):
            flagged = False
            if not flagged_ancestor and not _is_constant_bounded(node):
                flagged = self._judge_loop(node, depth)
            for child in ast.iter_child_nodes(node):
                self._visit(child, depth + 1, flagged_ancestor or flagged)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, depth, flagged_ancestor)

    def _judge_loop(self, loop: _LoopNode, depth: int) -> bool:
        declared = self._declared
        if declared is ComplexityClass.CONSTANT:
            if _contains_charge(loop):
                return self._flag(
                    loop,
                    RULE_CHARGE_IN_LOOP,
                    "cost charged inside a loop the AST cannot bound",
                )
            return self._flag(
                loop, RULE_SIZE_LOOP, "loop the AST cannot bound to a constant"
            )
        if declared is ComplexityClass.LOG:
            if _matches(loop, _PAGE_COLLECTION_RE):
                rule = (
                    RULE_CHARGE_IN_LOOP
                    if _contains_charge(loop)
                    else RULE_SIZE_LOOP
                )
                return self._flag(
                    loop, rule, "loop over a page/frame/extent collection"
                )
            return False
        # LINEAR / LINEARITHMIC: one size loop is the contract; flag nests.
        if depth >= 1 and _matches(loop, _SIZE_NAME_RE):
            return self._flag(
                loop,
                RULE_NESTED_SIZE_LOOP,
                "size-dependent loop nested inside another loop",
            )
        return False

    def _flag(self, node: ast.AST, rule: str, message: str) -> bool:
        line = getattr(node, "lineno", self._func.lineno)
        if self._allowed.allow((line, line - 1, self._func.lineno), rule):
            self.suppressed += 1
            return False
        self.violations.append(
            Violation(
                path=self._path,
                line=line,
                module=self._module,
                qualname=self._qualname,
                declared=self._declared,
                rule=rule,
                message=message,
            )
        )
        return True

    # -- recursion -----------------------------------------------------
    def _check_recursion(self) -> None:
        name = self._func.name
        stack: List[ast.AST] = list(ast.iter_child_nodes(self._func))
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_TYPES):
                continue  # nested defs are separate declarations
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            is_self_call = (
                isinstance(callee, ast.Name) and callee.id == name
            ) or (
                isinstance(callee, ast.Attribute)
                and callee.attr == name
                and isinstance(callee.value, ast.Name)
                and callee.value.id in ("self", "cls")
            )
            if is_self_call:
                self._flag(node, RULE_RECURSION, f"recursive call to {name}()")


# ---------------------------------------------------------------------------
# Persist-ordering rule (applies to every function, declared or not)
# ---------------------------------------------------------------------------
def _check_persist_ordering(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    module: str,
    qualname: str,
    path: str,
    allowed: AllowMap,
) -> Tuple[List[Violation], int]:
    """Flag journaled-write applies with no preceding commit in scope.

    A call to one of :data:`_PERSIST_APPLY_ATTRS` mutates durable FS
    metadata, so it may only run after the journal record describing it
    has been committed.  Statically that means: within the calling
    function there must be a ``_journal_commit(...)`` call on an earlier
    line, or the site carries an explicit
    ``# o1: allow(persist-outside-txn)`` justification (e.g. crash
    recovery redoing records the *previous* boot committed).
    """
    if func.name in _PERSIST_APPLY_ATTRS:
        return [], 0  # the apply implementations themselves
    commit_line: Optional[int] = None
    applies: List[ast.Call] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_TYPES):
            continue  # nested defs are their own transaction scopes
        stack.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        attr = node.func.attr
        if attr == _PERSIST_COMMIT_ATTR:
            if commit_line is None or node.lineno < commit_line:
                commit_line = node.lineno
        elif attr in _PERSIST_APPLY_ATTRS:
            applies.append(node)
    violations: List[Violation] = []
    suppressed = 0
    for call in applies:
        if commit_line is not None and commit_line < call.lineno:
            continue
        if allowed.allow(
            (call.lineno, call.lineno - 1, func.lineno),
            RULE_PERSIST_OUTSIDE_TXN,
        ):
            suppressed += 1
            continue
        attr_name = call.func.attr if isinstance(call.func, ast.Attribute) else "?"
        violations.append(
            Violation(
                path=path,
                line=call.lineno,
                module=module,
                qualname=qualname,
                declared=None,
                rule=RULE_PERSIST_OUTSIDE_TXN,
                message=(
                    f"journaled mutation {attr_name}() applied with no "
                    "preceding _journal_commit() in scope"
                ),
            )
        )
    return violations, suppressed


# ---------------------------------------------------------------------------
# Module / tree walking
# ---------------------------------------------------------------------------
def lint_source(
    source: str,
    module: str,
    path: str = "<string>",
    allowed: Optional[AllowMap] = None,
) -> LintResult:
    """Lint one module's source text (exposed for tests).

    ``allowed`` lets a caller share one :class:`AllowMap` between this
    pass and the flow pass so suppression *usage* accumulates in one
    place; by default a private map is built from ``source``.
    """
    tree = ast.parse(source, filename=path)
    if allowed is None:
        allowed = AllowMap(source)
    violations: List[Violation] = []
    suppressed = 0
    functions = 0

    def walk(node: ast.AST, scope: Tuple[str, ...]) -> None:
        nonlocal suppressed, functions
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                declared = declared_class_of(child)
                qualname = ".".join(scope + (child.name,))
                if declared is not None:
                    functions += 1
                    checker = _FunctionChecker(
                        func=child,
                        declared=declared,
                        module=module,
                        qualname=qualname,
                        path=path,
                        allowed=allowed,
                    )
                    checker.run()
                    violations.extend(checker.violations)
                    suppressed += checker.suppressed
                persist_violations, persist_suppressed = _check_persist_ordering(
                    child, module, qualname, path, allowed
                )
                violations.extend(persist_violations)
                suppressed += persist_suppressed
                walk(child, scope + (child.name,))
            elif isinstance(child, ast.ClassDef):
                walk(child, scope + (child.name,))
            else:
                walk(child, scope)

    walk(tree, ())
    return LintResult(
        violations=violations,
        inline_suppressed=suppressed,
        files_checked=1,
        functions_checked=functions,
        used_allows={path: set(allowed.used)},
    )


def module_name_for(path: Path, root: Path, package: str) -> str:
    """Dotted module name for ``path`` under package root ``root``."""
    relative = path.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def lint_tree(root: Path, package: str = "repro") -> LintResult:
    """Lint every ``*.py`` file under ``root`` (the package directory)."""
    root = root.resolve()
    total = LintResult(
        violations=[], inline_suppressed=0, files_checked=0, functions_checked=0
    )
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        result = lint_source(
            source, module_name_for(path, root, package), str(path)
        )
        total.violations.extend(result.violations)
        total.inline_suppressed += result.inline_suppressed
        total.files_checked += 1
        total.functions_checked += result.functions_checked
        for used_path, lines in result.used_allows.items():
            total.used_allows.setdefault(used_path, set()).update(lines)
    total.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return total
