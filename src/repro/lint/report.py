"""Rendering for Order(1) conformance results.

Two consumers: humans (``render_text`` — what ``repro-o1 lint`` prints)
and machines (``build_report`` / ``write_json`` — the
``lint_report.json`` artifact CI archives next to benchmark results, so
fitted exponents can be tracked across commits).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.astcheck import LintResult
from repro.lint.baseline import BaselineOutcome
from repro.lint.ops import OperationFit

REPORT_VERSION = 1


def build_report(
    lint: LintResult,
    outcome: BaselineOutcome,
    fits: Optional[Sequence[OperationFit]] = None,
    *,
    sizes: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Assemble the machine-readable conformance report."""
    report: Dict[str, object] = {
        "version": REPORT_VERSION,
        "tool": "repro-o1 lint",
        "lint": {
            "files_checked": lint.files_checked,
            "functions_checked": lint.functions_checked,
            "inline_suppressed": lint.inline_suppressed,
            "baseline_suppressed": [
                {
                    "function": v.function,
                    "rule": v.rule,
                    "path": str(v.path),
                    "line": v.line,
                }
                for v in outcome.suppressed
            ],
            "violations": [
                {
                    "function": v.function,
                    "rule": v.rule,
                    "declared": str(v.declared) if v.declared is not None else None,
                    "path": str(v.path),
                    "line": v.line,
                    "message": v.message,
                }
                for v in outcome.new
            ],
            "stale_baseline_entries": [
                {"function": e.function, "rule": e.rule, "reason": e.reason}
                for e in outcome.stale
            ],
        },
    }
    if fits is not None:
        report["fit"] = {
            "sizes": list(sizes) if sizes is not None else None,
            "operations": [
                {
                    "name": f.operation.name,
                    "declared": str(f.operation.declared),
                    "fitted": str(f.fit.fitted),
                    "exponent": round(f.fit.exponent, 4),
                    "span": round(f.fit.span, 4)
                    if f.fit.span != float("inf")
                    else None,
                    "known_mismatch": f.operation.known_mismatch,
                    "ok": f.ok,
                    "note": f.operation.note,
                    "sizes": f.sizes,
                    "costs_ns": f.costs,
                }
                for f in fits
            ],
        }
    return report


def write_json(path: Path, report: Dict[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def render_text(
    lint: LintResult,
    outcome: BaselineOutcome,
    fits: Optional[Sequence[OperationFit]] = None,
) -> str:
    """Human-readable conformance summary."""
    lines: List[str] = []
    lines.append(
        f"o1 lint: {lint.functions_checked} declared functions across "
        f"{lint.files_checked} files"
    )
    lines.append(
        f"  {len(outcome.new)} violation(s), "
        f"{len(outcome.suppressed)} baseline-suppressed, "
        f"{lint.inline_suppressed} inline-suppressed, "
        f"{len(outcome.stale)} stale baseline entr"
        f"{'y' if len(outcome.stale) == 1 else 'ies'}"
    )
    for violation in outcome.new:
        lines.append(f"  VIOLATION {violation.format()}")
    for entry in outcome.stale:
        lines.append(
            f"  STALE baseline entry {entry.function} [{entry.rule}] — "
            "finding no longer occurs; remove it"
        )
    if fits is not None:
        lines.append("")
        lines.append(f"o1 fit: {len(fits)} operation(s)")
        for f in fits:
            span = (
                f"{f.fit.span:.2f}x" if f.fit.span != float("inf") else "inf"
            )
            status = "ok" if f.ok else "FAIL"
            verdict = (
                f"declared {f.operation.declared} fitted {f.fit.fitted} "
                f"(slope {f.fit.exponent:+.2f}, span {span})"
            )
            if f.operation.known_mismatch:
                verdict += " [control]"
            lines.append(f"  {status:4s} {f.operation.name:32s} {verdict}")
    return "\n".join(lines)
