"""Rendering for Order(1) conformance results.

Two consumers: humans (``render_text`` — what ``repro-o1 lint`` prints)
and machines (``build_report`` / ``write_json`` — the
``lint_report.json`` artifact CI archives next to benchmark results, so
fitted exponents can be tracked across commits).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.lint.astcheck import LintResult, Violation
from repro.lint.baseline import BaselineOutcome
from repro.lint.ops import OperationFit

if TYPE_CHECKING:
    from repro.lint.alloc import AllocFinding, AllocResult
    from repro.lint.allocfit import AllocFitResult
    from repro.lint.flow import FlowFinding, FlowResult

#: v2 added the ``flow`` section (``lint --interproc``); v3 added the
#: ``alloc`` section (``lint --alloc``: AllocSan + empirical cross-check).
REPORT_VERSION = 3


def _flow_finding_dict(finding: "FlowFinding") -> Dict[str, object]:
    return {
        "function": finding.function,
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "message": finding.message,
        "chain": [
            {
                "function": hop.fid,
                "path": hop.path,
                "line": hop.line,
                "note": hop.note,
            }
            for hop in finding.chain
        ],
    }


def _alloc_finding_dict(finding: "AllocFinding") -> Dict[str, object]:
    return {
        "function": finding.function,
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "message": finding.message,
        "chain": [
            {
                "function": hop.fid,
                "path": hop.path,
                "line": hop.line,
                "note": hop.note,
            }
            for hop in finding.chain
        ],
    }


def build_report(
    lint: LintResult,
    outcome: BaselineOutcome[Violation],
    fits: Optional[Sequence[OperationFit]] = None,
    *,
    sizes: Optional[Sequence[int]] = None,
    flow: Optional["FlowResult"] = None,
    flow_outcome: Optional["BaselineOutcome[FlowFinding]"] = None,
    alloc: Optional["AllocResult"] = None,
    alloc_outcome: Optional["BaselineOutcome[AllocFinding]"] = None,
    allocfit_results: Optional[Sequence["AllocFitResult"]] = None,
) -> Dict[str, object]:
    """Assemble the machine-readable conformance report."""
    report: Dict[str, object] = {
        "version": REPORT_VERSION,
        "tool": "repro-o1 lint",
        "lint": {
            "files_checked": lint.files_checked,
            "functions_checked": lint.functions_checked,
            "inline_suppressed": lint.inline_suppressed,
            "baseline_suppressed": [
                {
                    "function": v.function,
                    "rule": v.rule,
                    "path": str(v.path),
                    "line": v.line,
                }
                for v in outcome.suppressed
            ],
            "violations": [
                {
                    "function": v.function,
                    "rule": v.rule,
                    "declared": str(v.declared) if v.declared is not None else None,
                    "path": str(v.path),
                    "line": v.line,
                    "message": v.message,
                }
                for v in outcome.new
            ],
            "stale_baseline_entries": [
                {"function": e.function, "rule": e.rule, "reason": e.reason}
                for e in outcome.stale
            ],
        },
    }
    if flow is not None:
        flow_new = flow_outcome.new if flow_outcome is not None else flow.findings
        flow_suppressed = (
            flow_outcome.suppressed if flow_outcome is not None else []
        )
        flow_stale = flow_outcome.stale if flow_outcome is not None else []
        report["flow"] = {
            "entries": list(flow.entries),
            "files": flow.files,
            "functions": flow.functions,
            "call_sites": {
                "total": flow.sites_total,
                "resolved": flow.sites_resolved,
            },
            "findings": [_flow_finding_dict(f) for f in flow_new],
            "baseline_suppressed": [
                _flow_finding_dict(f) for f in flow_suppressed
            ],
            "stale_baseline_entries": [
                {"function": e.function, "rule": e.rule, "reason": e.reason}
                for e in flow_stale
            ],
            "controls_verified": [
                {"function": f.function, "rule": f.rule}
                for f in flow.controls_verified
            ],
            "stale_suppressions": [
                {
                    "path": s.path,
                    "line": s.line,
                    "rules": list(s.rules),
                }
                for s in flow.stale_suppressions
            ],
        }
    if alloc is not None:
        alloc_new = (
            alloc_outcome.new if alloc_outcome is not None else alloc.findings
        )
        alloc_suppressed = (
            alloc_outcome.suppressed if alloc_outcome is not None else []
        )
        alloc_stale = alloc_outcome.stale if alloc_outcome is not None else []
        alloc_section: Dict[str, object] = {
            "entries": list(alloc.entries),
            "files": alloc.files,
            "functions": alloc.functions,
            "hot_reachable": alloc.hot_reachable,
            "declared_allocfree": alloc.declared_allocfree,
            "declared_allocbound": alloc.declared_allocbound,
            "findings": [_alloc_finding_dict(f) for f in alloc_new],
            "baseline_suppressed": [
                _alloc_finding_dict(f) for f in alloc_suppressed
            ],
            "stale_baseline_entries": [
                {"function": e.function, "rule": e.rule, "reason": e.reason}
                for e in alloc_stale
            ],
            "controls_verified": [
                {"function": f.function, "rule": f.rule}
                for f in alloc.controls_verified
            ],
            "stale_suppressions": [
                {
                    "path": s.path,
                    "line": s.line,
                    "rules": list(s.rules),
                }
                for s in alloc.stale_suppressions
            ],
        }
        if allocfit_results is not None:
            alloc_section["allocfit"] = [
                {
                    "name": r.name,
                    "calls": r.calls,
                    "net_bytes": r.net_bytes,
                    "per_call_bytes": round(r.per_call_bytes, 4),
                    "gc_delta": list(r.gc_delta),
                    "expect_growth": r.expect_growth,
                    "grew": r.grew,
                    "uncertified": list(r.uncertified),
                    "ok": r.ok,
                    "note": r.note,
                }
                for r in allocfit_results
            ]
        report["alloc"] = alloc_section
    if fits is not None:
        report["fit"] = {
            "sizes": list(sizes) if sizes is not None else None,
            "operations": [
                {
                    "name": f.operation.name,
                    "declared": str(f.operation.declared),
                    "fitted": str(f.fit.fitted),
                    "exponent": round(f.fit.exponent, 4),
                    "span": round(f.fit.span, 4)
                    if f.fit.span != float("inf")
                    else None,
                    "known_mismatch": f.operation.known_mismatch,
                    "ok": f.ok,
                    "note": f.operation.note,
                    "sizes": f.sizes,
                    "costs_ns": f.costs,
                }
                for f in fits
            ],
        }
    return report


def write_json(path: Path, report: Dict[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def render_text(
    lint: LintResult,
    outcome: BaselineOutcome[Violation],
    fits: Optional[Sequence[OperationFit]] = None,
    *,
    flow: Optional["FlowResult"] = None,
    flow_outcome: Optional["BaselineOutcome[FlowFinding]"] = None,
    alloc: Optional["AllocResult"] = None,
    alloc_outcome: Optional["BaselineOutcome[AllocFinding]"] = None,
    allocfit_results: Optional[Sequence["AllocFitResult"]] = None,
) -> str:
    """Human-readable conformance summary."""
    lines: List[str] = []
    lines.append(
        f"o1 lint: {lint.functions_checked} declared functions across "
        f"{lint.files_checked} files"
    )
    lines.append(
        f"  {len(outcome.new)} violation(s), "
        f"{len(outcome.suppressed)} baseline-suppressed, "
        f"{lint.inline_suppressed} inline-suppressed, "
        f"{len(outcome.stale)} stale baseline entr"
        f"{'y' if len(outcome.stale) == 1 else 'ies'}"
    )
    for violation in outcome.new:
        lines.append(f"  VIOLATION {violation.format()}")
    for entry in outcome.stale:
        lines.append(
            f"  STALE baseline entry {entry.function} [{entry.rule}] — "
            "finding no longer occurs; remove it"
        )
    if flow is not None:
        from repro.lint.flow import CONTROLS

        flow_new = flow_outcome.new if flow_outcome is not None else flow.findings
        flow_suppressed = (
            flow_outcome.suppressed if flow_outcome is not None else []
        )
        flow_stale = flow_outcome.stale if flow_outcome is not None else []
        lines.append("")
        lines.append(
            f"o1 flow: {flow.functions} functions across {flow.files} files, "
            f"{flow.sites_resolved}/{flow.sites_total} call sites resolved, "
            f"{len(flow.entries)} hot-path entries"
        )
        lines.append(
            f"  {len(flow_new)} finding(s), "
            f"{len(flow_suppressed)} baseline-suppressed, "
            f"{len(flow_stale)} stale baseline entr"
            f"{'y' if len(flow_stale) == 1 else 'ies'}, "
            f"{len(flow.controls_verified)}/{len(CONTROLS)} controls verified, "
            f"{len(flow.stale_suppressions)} stale suppression(s)"
        )
        for finding in flow_new:
            lines.append(f"  FINDING {finding.format()}")
        for entry in flow_stale:
            lines.append(
                f"  STALE flow baseline entry {entry.function} "
                f"[{entry.rule}] — finding no longer occurs; remove it"
            )
        for suppression in flow.stale_suppressions:
            lines.append(f"  STALE {suppression.format()}")
    if alloc is not None:
        from repro.lint.alloc import ALLOC_CONTROLS

        alloc_new = (
            alloc_outcome.new if alloc_outcome is not None else alloc.findings
        )
        alloc_suppressed = (
            alloc_outcome.suppressed if alloc_outcome is not None else []
        )
        alloc_stale = alloc_outcome.stale if alloc_outcome is not None else []
        lines.append("")
        lines.append(
            f"o1 alloc: {alloc.hot_reachable} functions in the hot closure "
            f"of {len(alloc.entries)} entries, "
            f"{alloc.declared_allocfree} @allocfree + "
            f"{alloc.declared_allocbound} @allocbound declared"
        )
        lines.append(
            f"  {len(alloc_new)} finding(s), "
            f"{len(alloc_suppressed)} baseline-suppressed, "
            f"{len(alloc_stale)} stale baseline entr"
            f"{'y' if len(alloc_stale) == 1 else 'ies'}, "
            f"{len(alloc.controls_verified)}/{len(ALLOC_CONTROLS)} "
            f"controls verified, "
            f"{len(alloc.stale_suppressions)} stale suppression(s)"
        )
        for finding in alloc_new:
            lines.append(f"  FINDING {finding.format()}")
        for entry in alloc_stale:
            lines.append(
                f"  STALE alloc baseline entry {entry.function} "
                f"[{entry.rule}] — finding no longer occurs; remove it"
            )
        for suppression in alloc.stale_suppressions:
            lines.append(f"  STALE {suppression.format()}")
        if allocfit_results is not None:
            lines.append(
                f"  allocfit: {len(allocfit_results)} op(s) cross-checked"
            )
            for result in allocfit_results:
                lines.append(f"    {result.format()}")
    if fits is not None:
        lines.append("")
        lines.append(f"o1 fit: {len(fits)} operation(s)")
        for f in fits:
            span = (
                f"{f.fit.span:.2f}x" if f.fit.span != float("inf") else "inf"
            )
            status = "ok" if f.ok else "FAIL"
            verdict = (
                f"declared {f.operation.declared} fitted {f.fit.fitted} "
                f"(slope {f.fit.exponent:+.2f}, span {span})"
            )
            if f.operation.known_mismatch:
                verdict += " [control]"
            lines.append(f"  {status:4s} {f.operation.name:32s} {verdict}")
    return "\n".join(lines)
