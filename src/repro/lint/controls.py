"""Planted mislabeled controls for the interprocedural flow pass.

Mirrors the empirical fitter's ``fom.demand_touch`` control: each
function below is *deliberately* wrong in a way only whole-program
analysis can see, and :mod:`repro.lint.flow` must flag it on every run
— a flow pass that comes back clean on these is broken, and the gate
fails on the missing finding rather than on the finding itself.

Nothing imports this module at runtime and nothing here is reachable
from a hot-path entry point; the functions exist purely as lint
fixtures inside the real tree.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.lint.decorators import o1


@o1(note="control: deliberately mislabeled; the flow pass must flag this")
def control_undeclared_callee_loop(pages: Iterable[int]) -> int:
    """Declared O(1), but the undeclared helper walks every page.

    Intraprocedurally this body is a single call — clean.  The flow
    pass must report ``flow-cost-exceeds-declared`` with the chain down
    to the loop in :func:`_control_touch_all`.
    """
    return _control_touch_all(pages)


def _control_touch_all(pages: Iterable[int]) -> int:
    total = 0
    for page in pages:
        total += page
    return total


def control_persist_commit_elsewhere(fs: Any) -> None:
    """Applies a journaled mutation through a helper; nobody commits.

    The helper's apply site carries the *intra*-rule allow (the classic
    "caller commits" justification), so the old pass is silent — and no
    caller on this path ever commits.  The flow pass must report
    ``flow-persist-outside-txn`` here, at the protocol root.
    """
    _control_apply(fs)


def _control_apply(fs: Any) -> None:
    fs._apply_alloc(None)  # o1: allow(persist-outside-txn) -- control: caller commits
