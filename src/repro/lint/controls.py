"""Planted mislabeled controls for the interprocedural passes.

Mirrors the empirical fitter's ``fom.demand_touch`` control: each
function below is *deliberately* wrong in a way only whole-program
analysis can see, and :mod:`repro.lint.flow` (or AllocSan /
:mod:`repro.lint.allocfit` for the allocation controls) must flag it
on every run — a pass that comes back clean on these is broken, and
the gate fails on the missing finding rather than on the finding
itself.

Nothing imports this module at runtime and nothing here is reachable
from a hot-path entry point; the functions exist purely as lint
fixtures inside the real tree.
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.lint.decorators import allocfree, o1


@o1(note="control: deliberately mislabeled; the flow pass must flag this")
def control_undeclared_callee_loop(pages: Iterable[int]) -> int:
    """Declared O(1), but the undeclared helper walks every page.

    Intraprocedurally this body is a single call — clean.  The flow
    pass must report ``flow-cost-exceeds-declared`` with the chain down
    to the loop in :func:`_control_touch_all`.
    """
    return _control_touch_all(pages)


def _control_touch_all(pages: Iterable[int]) -> int:
    total = 0
    for page in pages:
        total += page
    return total


def control_persist_commit_elsewhere(fs: Any) -> None:
    """Applies a journaled mutation through a helper; nobody commits.

    The helper's apply site carries the *intra*-rule allow (the classic
    "caller commits" justification), so the old pass is silent — and no
    caller on this path ever commits.  The flow pass must report
    ``flow-persist-outside-txn`` here, at the protocol root.
    """
    _control_apply(fs)


def _control_apply(fs: Any) -> None:
    fs._apply_alloc(None)  # o1: allow(persist-outside-txn) -- control: caller commits


@allocfree(note="control: deliberately mislabeled; AllocSan must flag this")
def control_allocfree_hidden_comprehension(pages: Iterable[int]) -> List[int]:
    """Declared allocation-free, but the undeclared helper materializes.

    Intraprocedurally this body is a single allocation-shape-free call
    — clean.  AllocSan must report ``alloc-exceeds-declared`` with the
    chain down to the comprehension in :func:`_control_materialize`.
    """
    return _control_materialize(pages)


def _control_materialize(pages: Iterable[int]) -> List[int]:
    return [page * 2 for page in pages]


#: Retained by :func:`control_allocfree_retaining` on every call: the
#: leak the static prong cannot see and allocfit must.
_CONTROL_SINK: List[int] = []


@allocfree(note="control: retains memory per call; allocfit must flag this")
def control_allocfree_retaining(tick: int) -> int:
    """Statically clean — no display, no comprehension, no boxing call —
    yet every call retains an int in a module-level list.  The AST pass
    certifies it; the ``tracemalloc`` cross-check must fail it, which is
    exactly why the empirical prong exists.
    """
    _CONTROL_SINK.append(tick)
    return len(_CONTROL_SINK)
