"""Syntactic call graph over a package tree, for interprocedural lint.

The graph is built without importing the analyzed code: every module
under the package root is parsed, functions and classes are registered
under module-qualified names, and each call expression is resolved to
its possible targets with a deliberately conservative, type-hint-assisted
resolver:

* plain names resolve through the module's own defs and its imports
  (``from repro.vm.addrspace import AddressSpace`` makes ``AddressSpace``
  a constructor call);
* ``self.m()`` / ``cls.m()`` resolve through the enclosing class's MRO
  (in-package bases only) plus every in-package subclass override, so
  virtual dispatch contributes its worst case;
* ``obj.m()`` resolves when the receiver's class is recoverable from a
  parameter annotation, an annotated assignment, a constructor call, a
  module-level singleton assignment, a defaulting conditional
  (``x if x is not None else X()``), an attribute whose type was pinned
  in ``__init__``, or a property/method return annotation;
* as a last resort, an attribute call whose method name is defined by
  exactly one class in the package resolves there (never for common
  container-protocol names like ``get`` or ``append``).

Anything else stays an *unresolved* site: the cost analysis treats it as
free (the coverage gate is what forces hot-path code into the resolved
world) and the protocol checkers fall back to matching the raw attribute
name against their primitive sets, so an invalidation through an
untyped handle still counts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.astcheck import AllowMap, declared_class_of, module_name_for
from repro.lint.decorators import ComplexityClass

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Attribute names that belong to builtin container/string protocols;
#: the unique-method fallback never fires for these, no matter how few
#: classes define them, because the receiver is far more likely a dict
#: or a list than the one in-package class that happens to share the
#: name.
_COMMON_ATTRS = frozenset(
    {
        "add",
        "append",
        "clear",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "endswith",
        "extend",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "split",
        "startswith",
        "strip",
        "update",
        "values",
    }
)

#: Typing constructs unwrapped (``Optional[X]`` -> ``X``) or skipped
#: when reading annotations.
_OPTIONAL_NAMES = frozenset({"Optional"})


@dataclass
class FunctionNode:
    """One function or method definition in the analyzed package."""

    fid: str
    module: str
    qualname: str
    name: str
    path: str
    lineno: int
    node: FuncDef = field(repr=False)
    owner: Optional[str]
    declared: Optional[ComplexityClass]

    @property
    def function(self) -> str:
        """Dotted name as baseline files spell it (module.qualname)."""
        return self.fid


@dataclass
class ClassNode:
    """One class definition plus the type facts mined from it."""

    cid: str
    module: str
    name: str
    lineno: int
    bases_raw: List[str] = field(default_factory=list)
    base_ids: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    return_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    col: int
    raw: str
    attr: Optional[str]
    targets: Tuple[str, ...]
    node: ast.Call = field(repr=False)

    @property
    def resolved(self) -> bool:
        return bool(self.targets)


@dataclass
class _ModuleInfo:
    module: str
    path: str
    tree: ast.Module = field(repr=False)
    is_package: bool
    imports: Dict[str, str] = field(default_factory=dict)


class CallGraph:
    """Functions, classes, and resolved call edges for one package."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        self.allow_maps: Dict[str, AllowMap] = {}
        self.modules: Dict[str, _ModuleInfo] = {}
        #: module -> {global name -> class id} for module-level singletons
        #: (``_machine = Machine(...)``); consulted when a local name has
        #: no binding in the function's own environment.
        self.module_globals: Dict[str, Dict[str, str]] = {}
        self.files_parsed = 0
        self.sites_total = 0
        self.sites_resolved = 0
        self._class_by_simple: Dict[str, List[str]] = {}
        self._method_index: Dict[str, List[str]] = {}
        self._subclasses: Dict[str, List[str]] = {}

    # -- queries -------------------------------------------------------
    def callees(self, fid: str) -> Iterator[str]:
        """Every resolved target reachable in one hop from ``fid``."""
        for site in self.calls.get(fid, ()):
            yield from site.targets

    def mro(self, cid: str) -> List[str]:
        """In-package linearization: the class, then bases depth-first."""
        seen: List[str] = []
        stack = [cid]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.append(current)
            stack.extend(self.classes[current].base_ids)
        return seen

    def lookup_method(self, cid: str, name: str) -> Optional[str]:
        """Resolve ``name`` on ``cid`` through the in-package MRO."""
        for klass in self.mro(cid):
            fid = self.classes[klass].methods.get(name)
            if fid is not None:
                return fid
        return None

    def override_targets(self, cid: str, name: str) -> List[str]:
        """MRO hit plus every in-package subclass override of ``name``."""
        targets: List[str] = []
        primary = self.lookup_method(cid, name)
        if primary is not None:
            targets.append(primary)
        stack = list(self._subclasses.get(cid, ()))
        while stack:
            sub = stack.pop()
            stack.extend(self._subclasses.get(sub, ()))
            fid = self.classes[sub].methods.get(name)
            if fid is not None and fid not in targets:
                targets.append(fid)
        return targets

    def lookup_attr_type(self, cid: str, name: str) -> Optional[str]:
        for klass in self.mro(cid):
            hit = self.classes[klass].attr_types.get(name)
            if hit is not None:
                return hit
        return None

    def lookup_return_type(self, cid: str, name: str) -> Optional[str]:
        for klass in self.mro(cid):
            hit = self.classes[klass].return_types.get(name)
            if hit is not None:
                return hit
        return None

    def methods_named(self, name: str) -> List[str]:
        return list(self._method_index.get(name, ()))

    # -- dot export ----------------------------------------------------
    def to_dot(self) -> str:
        """Graphviz rendering: modules as clusters, declared nodes boxed."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [fontsize=9];"]
        by_module: Dict[str, List[FunctionNode]] = {}
        for info in self.functions.values():
            by_module.setdefault(info.module, []).append(info)
        for index, (module, funcs) in enumerate(sorted(by_module.items())):
            lines.append(f'  subgraph "cluster_{index}" {{')
            lines.append(f'    label="{module}";')
            for info in sorted(funcs, key=lambda f: f.lineno):
                shape = "box" if info.declared is not None else "ellipse"
                label = info.qualname
                if info.declared is not None:
                    label += f"\\n{info.declared}"
                lines.append(f'    "{info.fid}" [shape={shape}, label="{label}"];')
            lines.append("  }")
        for fid in sorted(self.calls):
            seen: Set[str] = set()
            for site in self.calls[fid]:
                for target in site.targets:
                    if target in seen:
                        continue
                    seen.add(target)
                    lines.append(f'  "{fid}" -> "{target}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------
def _dotted(node: ast.expr) -> Optional[str]:
    """Flatten a Name/Attribute chain to ``a.b.c``, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _render_call(call: ast.Call) -> str:
    target = _dotted(call.func)
    if target is None:
        try:
            target = ast.unparse(call.func)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            target = "<call>"
    if len(target) > 60:
        target = target[:57] + "..."
    return f"{target}(...)"


def resolve_class_name(
    graph: CallGraph, name: str, info: _ModuleInfo
) -> Optional[str]:
    """Map a (possibly dotted) source-level name to a class id.

    Shared by the builder's type miner and AllocSan's constructor-call
    detector (a resolved in-package constructor is an allocation even
    when the class has no source-level ``__init__`` to call into).
    """
    if name in graph.classes:
        return name
    head, _, rest = name.partition(".")
    expanded = info.imports.get(head)
    if expanded is not None:
        candidate = f"{expanded}.{rest}" if rest else expanded
        if candidate in graph.classes:
            return candidate
    candidate = f"{info.module}.{name}"
    if candidate in graph.classes:
        return candidate
    if "." not in name:
        hits = graph._class_by_simple.get(name, [])
        if len(hits) == 1:
            return hits[0]
    return None


class _Builder:
    def __init__(self, root: Path, package: str) -> None:
        self.root = root
        self.package = package
        self.graph = CallGraph()

    # -- pass 1: collect ----------------------------------------------
    def collect(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            module = module_name_for(path, self.root, self.package)
            tree = ast.parse(source, filename=str(path))
            info = _ModuleInfo(
                module=module,
                path=str(path),
                tree=tree,
                is_package=path.name == "__init__.py",
            )
            self.graph.modules[module] = info
            self.graph.allow_maps[str(path)] = AllowMap(source)
            self.graph.files_parsed += 1
            self._collect_imports(info)
            self._collect_defs(info, tree, scope=(), owner=None)
        for klass in self.graph.classes.values():
            self.graph._class_by_simple.setdefault(klass.name, []).append(
                klass.cid
            )
        for klass in self.graph.classes.values():
            for name, fid in klass.methods.items():
                self.graph._method_index.setdefault(name, []).append(fid)

    def _collect_imports(self, info: _ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _import_base(
        self, info: _ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        parts = info.module.split(".")
        if not info.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _collect_defs(
        self,
        info: _ModuleInfo,
        node: ast.AST,
        scope: Tuple[str, ...],
        owner: Optional[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(scope + (child.name,))
                fid = f"{info.module}.{qualname}"
                self.graph.functions[fid] = FunctionNode(
                    fid=fid,
                    module=info.module,
                    qualname=qualname,
                    name=child.name,
                    path=info.path,
                    lineno=child.lineno,
                    node=child,
                    owner=owner,
                    declared=declared_class_of(child),
                )
                if owner is not None and len(scope) == 1:
                    self.graph.classes[owner].methods[child.name] = fid
                self._collect_defs(info, child, scope + (child.name,), None)
            elif isinstance(child, ast.ClassDef):
                cid = f"{info.module}.{'.'.join(scope + (child.name,))}"
                klass = ClassNode(
                    cid=cid,
                    module=info.module,
                    name=child.name,
                    lineno=child.lineno,
                    bases_raw=[
                        dotted
                        for base in child.bases
                        if (dotted := _dotted(base)) is not None
                    ],
                )
                self.graph.classes[cid] = klass
                self._collect_defs(
                    info, child, scope + (child.name,), owner=cid
                )

    # -- pass 2: resolve types ----------------------------------------
    def link(self) -> None:
        for klass in self.graph.classes.values():
            info = self.graph.modules[klass.module]
            for raw in klass.bases_raw:
                cid = self._resolve_class_name(raw, info)
                if cid is not None:
                    klass.base_ids.append(cid)
                    self.graph._subclasses.setdefault(cid, []).append(
                        klass.cid
                    )
        for klass in self.graph.classes.values():
            self._mine_class_types(klass)
        for info in self.graph.modules.values():
            self._mine_module_globals(info)

    def _mine_module_globals(self, info: _ModuleInfo) -> None:
        """Pin types of module-level singletons (``x = ClassName(...)``)."""
        for stmt in info.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if not isinstance(target, ast.Name):
                continue
            cid = self._ann_to_cid(annotation, info)
            if cid is None and isinstance(value, ast.Call):
                callee = _dotted(value.func)
                if callee is not None:
                    cid = self._resolve_class_name(callee, info)
            if cid is not None:
                self.graph.module_globals.setdefault(info.module, {})[
                    target.id
                ] = cid

    def _resolve_class_name(
        self, name: str, info: _ModuleInfo
    ) -> Optional[str]:
        """Map a (possibly dotted) source-level name to a class id."""
        return resolve_class_name(self.graph, name, info)

    def _ann_to_cid(
        self, ann: Optional[ast.expr], info: _ModuleInfo
    ) -> Optional[str]:
        """Class id named by an annotation, unwrapping Optional/unions."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                parsed = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
            return self._ann_to_cid(parsed, info)
        if isinstance(ann, ast.Subscript):
            base = _dotted(ann.value)
            if base is not None and base.split(".")[-1] in _OPTIONAL_NAMES:
                return self._ann_to_cid(ann.slice, info)
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            left = self._ann_to_cid(ann.left, info)
            return left if left is not None else self._ann_to_cid(ann.right, info)
        dotted = _dotted(ann)
        if dotted is None or dotted == "None":
            return None
        return self._resolve_class_name(dotted, info)

    def _mine_class_types(self, klass: ClassNode) -> None:
        info = self.graph.modules[klass.module]
        body = self._class_body(klass)
        for stmt in body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                cid = self._ann_to_cid(stmt.annotation, info)
                if cid is not None:
                    klass.attr_types[stmt.target.id] = cid
        for name, fid in klass.methods.items():
            func = self.graph.functions[fid].node
            cid = self._ann_to_cid(func.returns, info)
            if cid is not None:
                klass.return_types[name] = cid
        init_fid = klass.methods.get("__init__")
        if init_fid is not None:
            self._mine_init(klass, self.graph.functions[init_fid].node, info)

    def _class_body(self, klass: ClassNode) -> Sequence[ast.stmt]:
        for node in ast.walk(self.graph.modules[klass.module].tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name == klass.name
                and node.lineno == klass.lineno
            ):
                return node.body
        return ()

    def _mine_init(
        self, klass: ClassNode, init: FuncDef, info: _ModuleInfo
    ) -> None:
        """Pin ``self.attr`` types from annotated params / ctor calls."""
        param_types: Dict[str, Optional[str]] = {}
        args = init.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            param_types[arg.arg] = self._ann_to_cid(arg.annotation, info)
        for stmt in ast.walk(init):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            cid = self._ann_to_cid(annotation, info)
            if cid is None and value is not None:
                cid = self._init_value_cid(value, param_types, info)
            if cid is not None and attr not in klass.attr_types:
                klass.attr_types[attr] = cid

    def _init_value_cid(
        self,
        value: ast.expr,
        param_types: Dict[str, Optional[str]],
        info: _ModuleInfo,
    ) -> Optional[str]:
        """Type of an ``__init__`` RHS: param, ctor call, or a defaulting
        conditional (``tlb if tlb is not None else Tlb()``) over those."""
        if isinstance(value, ast.Name):
            return param_types.get(value.id)
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee is not None:
                return self._resolve_class_name(callee, info)
            return None
        if isinstance(value, ast.IfExp):
            body = self._init_value_cid(value.body, param_types, info)
            orelse = self._init_value_cid(value.orelse, param_types, info)
            if body is not None and orelse is not None:
                return body if body == orelse else None
            return body if body is not None else orelse
        return None

    # -- pass 3: resolve calls ----------------------------------------
    def resolve_calls(self) -> None:
        for fid, func in self.graph.functions.items():
            info = self.graph.modules[func.module]
            env = self._build_env(func, info)
            sites: List[CallSite] = []
            for call in self._own_calls(func.node):
                targets, attr = self._resolve_call(call, func, info, env)
                site = CallSite(
                    line=call.lineno,
                    col=call.col_offset,
                    raw=_render_call(call),
                    attr=attr,
                    targets=tuple(targets),
                    node=call,
                )
                sites.append(site)
                self.graph.sites_total += 1
                if site.resolved:
                    self.graph.sites_resolved += 1
            self.graph.calls[fid] = sites

    def _own_calls(self, func: FuncDef) -> List[ast.Call]:
        """Call expressions in ``func`` body, excluding nested defs."""
        calls: List[ast.Call] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Call):
                calls.append(node)
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls

    def _build_env(
        self, func: FunctionNode, info: _ModuleInfo
    ) -> Dict[str, str]:
        """Local name -> class id, from annotations and simple assigns."""
        env: Dict[str, str] = {}
        args = func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in ("self", "cls"):
                if func.owner is not None:
                    env[arg.arg] = func.owner
                continue
            cid = self._ann_to_cid(arg.annotation, info)
            if cid is not None:
                env[arg.arg] = cid
        assigns: List[Tuple[int, str, Optional[str]]] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(func.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not isinstance(target, ast.Name):
                continue
            cid = self._ann_to_cid(annotation, info)
            if cid is None and value is not None:
                cid = self._expr_type(value, func, info, env)
            assigns.append((node.lineno, target.id, cid))
        for _, name, cid in sorted(assigns):
            if cid is not None:
                env[name] = cid
        return env

    def _expr_type(
        self,
        expr: ast.expr,
        func: FunctionNode,
        info: _ModuleInfo,
        env: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(expr, ast.Name):
            hit = env.get(expr.id)
            if hit is not None:
                return hit
            return self.graph.module_globals.get(info.module, {}).get(expr.id)
        if isinstance(expr, ast.IfExp):
            body = self._expr_type(expr.body, func, info, env)
            orelse = self._expr_type(expr.orelse, func, info, env)
            if body is not None and orelse is not None:
                return body if body == orelse else None
            return body if body is not None else orelse
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value, func, info, env)
            if base is not None:
                return self.graph.lookup_attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            callee = expr.func
            if isinstance(callee, (ast.Name, ast.Attribute)):
                dotted = _dotted(callee)
                if dotted is not None:
                    cid = self._resolve_class_name(dotted, info)
                    if cid is not None:
                        return cid
            if isinstance(callee, ast.Attribute):
                base = self._expr_type(callee.value, func, info, env)
                if base is not None:
                    return self.graph.lookup_return_type(base, callee.attr)
        return None

    def _resolve_call(
        self,
        call: ast.Call,
        func: FunctionNode,
        info: _ModuleInfo,
        env: Dict[str, str],
    ) -> Tuple[List[str], Optional[str]]:
        callee = call.func
        if isinstance(callee, ast.Name):
            return self._resolve_name_call(callee.id, info), None
        if not isinstance(callee, ast.Attribute):
            return [], None
        attr = callee.attr
        receiver_cid = self._expr_type(callee.value, func, info, env)
        if receiver_cid is not None:
            targets = self.graph.override_targets(receiver_cid, attr)
            if targets:
                return targets, attr
            return [], attr
        dotted = _dotted(callee)
        if dotted is not None:
            resolved = self._resolve_dotted_function(dotted, info)
            if resolved is not None:
                return resolved, attr
        if attr not in _COMMON_ATTRS:
            hits = self.graph.methods_named(attr)
            if len(hits) == 1:
                return hits, attr
        return [], attr

    def _resolve_name_call(self, name: str, info: _ModuleInfo) -> List[str]:
        fid = f"{info.module}.{name}"
        if fid in self.graph.functions:
            node = self.graph.functions[fid]
            if node.owner is None and "." not in node.qualname:
                return [fid]
        cid = self._resolve_class_name(name, info)
        if cid is None:
            expanded = info.imports.get(name)
            if expanded is not None and expanded in self.graph.functions:
                return [expanded]
            if fid in self.graph.functions:
                return [fid]
            return []
        init = self.graph.lookup_method(cid, "__init__")
        return [init] if init is not None else []

    def _resolve_dotted_function(
        self, dotted: str, info: _ModuleInfo
    ) -> Optional[List[str]]:
        """Resolve ``mod.func`` / ``pkg.mod.func`` style calls."""
        if dotted in self.graph.functions:
            return [dotted]
        head, _, rest = dotted.partition(".")
        if not rest:
            return None
        expanded = info.imports.get(head)
        if expanded is None:
            return None
        candidate = f"{expanded}.{rest}"
        if candidate in self.graph.functions:
            return [candidate]
        cid_part, _, meth = candidate.rpartition(".")
        if cid_part in self.graph.classes:
            hit = self.graph.lookup_method(cid_part, meth)
            if hit is not None:
                return [hit]
        return None


def build_callgraph(root: Path, package: str = "repro") -> CallGraph:
    """Parse every module under ``root`` and resolve its call sites."""
    builder = _Builder(root.resolve(), package)
    builder.collect()
    builder.link()
    builder.resolve_calls()
    return builder.graph
