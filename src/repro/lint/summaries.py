"""Transitive cost summaries over the call graph.

Every function gets a *computed* cost class from the lattice

    CONSTANT < LOG < LINEAR < LINEARITHMIC < UNBOUNDED

by combining its own loop shape with the cost of everything it calls,
bottom-up in reverse-topological SCC order:

* a loop the AST cannot bound to a constant contributes LINEAR (or
  UNBOUNDED when nested inside another unbounded loop);
* a call contributes the callee's *declared* class when the callee is
  decorated — declarations are trust cut points, each verified at its
  own node — and the callee's computed summary otherwise;
* a call inside an unbounded loop is scaled: CONSTANT work per
  iteration makes the loop LINEAR, LOG makes it LINEARITHMIC, anything
  more is UNBOUNDED;
* any cycle of *undeclared* functions is UNBOUNDED (recursion the
  linter cannot bound);
* unresolved calls (builtins, untyped handles) contribute CONSTANT —
  deliberate optimism; the declaration-coverage gate is what forces
  hot-path code into the resolved world.

``# o1: allow(flow-bounded)`` on a loop or call site line marks it
bounded (constant iterations / constant-amortized callee), and the
intra-rule loop allows (``o1-size-loop`` etc.) double as bounded
markers so one justified comment serves both passes.

Two checks run on the summaries: ``flow-cost-exceeds-declared`` (a
declared function's computed summary is worse than its decorator says,
reported with the witness call chain) and ``flow-undeclared`` (a
function reachable from a hot-path entry point is neither declared nor
constant-shaped, reported with the path from the entry).
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.astcheck import (
    RULE_CHARGE_IN_LOOP,
    RULE_NESTED_SIZE_LOOP,
    RULE_SIZE_LOOP,
    _is_constant_bounded,
    _LOOP_TYPES,
    _LoopNode,
    _SCOPE_TYPES,
)
from repro.lint.callgraph import CallGraph, CallSite, FunctionNode
from repro.lint.decorators import ComplexityClass

RULE_COST_EXCEEDS = "flow-cost-exceeds-declared"
RULE_UNDECLARED = "flow-undeclared"
#: Suppression-only rule: names a loop or call site proven bounded by
#: reasoning the AST cannot do.  Never reported, only allowed.
RULE_BOUNDED = "flow-bounded"

#: Rules whose inline allow marks a loop bounded for the flow pass too:
#: one inline ``o1-size-loop`` (or sibling) allow comment is a single
#: justification serving both passes.
_BOUND_RULES = (
    RULE_BOUNDED,
    RULE_SIZE_LOOP,
    RULE_CHARGE_IN_LOOP,
    RULE_NESTED_SIZE_LOOP,
)


class Cost(enum.IntEnum):
    """Summary lattice; comparison is growth order."""

    CONSTANT = 0
    LOG = 1
    LINEAR = 2
    LINEARITHMIC = 3
    UNBOUNDED = 4

    @property
    def label(self) -> str:
        return _COST_LABEL[self]


_COST_LABEL = {
    Cost.CONSTANT: "O(1)",
    Cost.LOG: "O(log n)",
    Cost.LINEAR: "O(n)",
    Cost.LINEARITHMIC: "O(n log n)",
    Cost.UNBOUNDED: "unbounded",
}

_DECLARED_COST = {
    ComplexityClass.CONSTANT: Cost.CONSTANT,
    ComplexityClass.LOG: Cost.LOG,
    ComplexityClass.LINEAR: Cost.LINEAR,
    ComplexityClass.LINEARITHMIC: Cost.LINEARITHMIC,
}


def declared_cost(klass: ComplexityClass) -> Cost:
    return _DECLARED_COST[klass]


@dataclass(frozen=True)
class Hop:
    """One step of a call-chain diagnostic."""

    fid: str
    path: str
    line: int
    note: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.fid} {self.note}".rstrip()


@dataclass(frozen=True)
class Witness:
    """Why a function's summary is what it is."""

    kind: str  # "loop" | "call" | "recursion"
    line: int
    detail: str
    callee: Optional[str] = None


@dataclass
class Summary:
    """Computed cost of one function (ignoring its own declaration)."""

    fid: str
    cost: Cost
    witness: Optional[Witness] = None


# ---------------------------------------------------------------------------
# Per-function shape: unbounded-loop depth for every loop and call site
# ---------------------------------------------------------------------------
@dataclass
class _Shape:
    loops: List[Witness]
    call_depth: Dict[int, int]  # id(ast.Call) -> enclosing unbounded loops


def _loop_detail(loop: _LoopNode) -> str:
    if isinstance(loop, ast.While):
        try:
            test = ast.unparse(loop.test)
        except Exception:  # pragma: no cover
            test = "..."
        return f"while {test[:48]}"
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        try:
            iterable = ast.unparse(loop.iter)
        except Exception:  # pragma: no cover
            iterable = "..."
        return f"loop over {iterable[:48]}"
    return "comprehension the AST cannot bound"


def _shape_of(graph: CallGraph, func: FunctionNode) -> _Shape:
    allowed = graph.allow_maps[func.path]
    shape = _Shape(loops=[], call_depth={})

    def bounded(loop: _LoopNode) -> bool:
        if _is_constant_bounded(loop):
            return True
        lines = (loop.lineno, loop.lineno - 1, func.lineno)
        for rule in _BOUND_RULES:
            if allowed.allow(lines, rule):
                return True
        return False

    def visit(node: ast.AST, depth: int) -> None:
        if isinstance(node, _SCOPE_TYPES):
            return
        if isinstance(node, ast.Call):
            shape.call_depth[id(node)] = depth
        if isinstance(node, _LOOP_TYPES):
            inner = depth
            if not bounded(node):
                cost = Cost.LINEAR if depth == 0 else Cost.UNBOUNDED
                shape.loops.append(
                    Witness(
                        kind="loop",
                        line=node.lineno,
                        detail=(
                            f"{_loop_detail(node)}"
                            f" [{cost.label}"
                            + (" — nested in an unbounded loop]" if depth else "]")
                        ),
                    )
                )
                inner = depth + 1
            for child in ast.iter_child_nodes(node):
                visit(child, inner)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, depth)

    for stmt in func.node.body:
        visit(stmt, 0)
    return shape


def _loop_cost(depth: int) -> Cost:
    return Cost.LINEAR if depth == 0 else Cost.UNBOUNDED


def _scaled(cost: Cost, depth: int) -> Cost:
    """Cost of ``depth`` nested unbounded loops around per-iteration ``cost``."""
    if depth == 0:
        return cost
    if depth == 1:
        if cost is Cost.CONSTANT:
            return Cost.LINEAR
        if cost is Cost.LOG:
            return Cost.LINEARITHMIC
        return Cost.UNBOUNDED
    return Cost.UNBOUNDED


# ---------------------------------------------------------------------------
# SCC condensation (iterative Tarjan)
# ---------------------------------------------------------------------------
def strongly_connected(
    nodes: Sequence[str], edges: Dict[str, List[str]]
) -> List[List[str]]:
    """SCCs of ``nodes`` in reverse-topological order (callees first)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            targets = edges.get(node, [])
            while child_index < len(targets):
                target = targets[child_index]
                child_index += 1
                if target not in index:
                    work[-1] = (node, child_index)
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


# ---------------------------------------------------------------------------
# Summary computation
# ---------------------------------------------------------------------------
@dataclass
class _BoundedSite:
    """A call site excused by ``flow-bounded``; usage judged after the fact."""

    caller: str
    site: CallSite
    allow_line: int


class SummaryTable:
    """Computed summaries plus the helpers findings are built from."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.shapes: Dict[str, _Shape] = {}
        self.summaries: Dict[str, Summary] = {}
        self._bounded_sites: List[_BoundedSite] = []
        self._scc_of: Dict[str, int] = {}
        self._compute()

    # -- propagation ---------------------------------------------------
    def _site_bound_line(self, func: FunctionNode, site: CallSite) -> Optional[int]:
        allowed = self.graph.allow_maps[func.path]
        lines = (site.line, site.line - 1)
        return allowed.match(lines, RULE_BOUNDED)

    def _compute(self) -> None:
        graph = self.graph
        for fid, func in graph.functions.items():
            self.shapes[fid] = _shape_of(graph, func)
        edges: Dict[str, List[str]] = {}
        for fid, func in graph.functions.items():
            out: List[str] = []
            for site in graph.calls.get(fid, ()):
                bound_line = self._site_bound_line(func, site)
                if bound_line is not None:
                    self._bounded_sites.append(
                        _BoundedSite(caller=fid, site=site, allow_line=bound_line)
                    )
                    continue
                for target in site.targets:
                    node = graph.functions.get(target)
                    if node is not None and node.declared is None:
                        out.append(target)
            edges[fid] = out
        components = strongly_connected(list(graph.functions), edges)
        for number, component in enumerate(components):
            for member in component:
                self._scc_of[member] = number
        for component in components:
            cyclic = len(component) > 1 or (
                component[0] in edges.get(component[0], ())
            )
            if cyclic:
                for member in component:
                    self.summaries[member] = self._recursive_summary(
                        member, set(component)
                    )
                continue
            fid = component[0]
            self.summaries[fid] = self._combine(fid)
        for bounded in self._bounded_sites:
            if self._bounded_site_was_needed(bounded):
                self.graph.allow_maps[
                    self.graph.functions[bounded.caller].path
                ].mark_used(bounded.allow_line)

    def _recursive_summary(self, fid: str, component: Set[str]) -> Summary:
        witness: Optional[Witness] = None
        for site in self.graph.calls.get(fid, ()):
            for target in site.targets:
                if target in component:
                    witness = Witness(
                        kind="recursion",
                        line=site.line,
                        detail=f"recursive call {site.raw} (cycle of undeclared functions)",
                        callee=None,
                    )
                    break
            if witness is not None:
                break
        return Summary(fid=fid, cost=Cost.UNBOUNDED, witness=witness)

    def effective_cost(self, fid: str) -> Cost:
        """What a call to ``fid`` contributes: declared cut or summary."""
        node = self.graph.functions.get(fid)
        if node is not None and node.declared is not None:
            return declared_cost(node.declared)
        summary = self.summaries.get(fid)
        return summary.cost if summary is not None else Cost.CONSTANT

    def _combine(self, fid: str) -> Summary:
        shape = self.shapes[fid]
        best_cost = Cost.CONSTANT
        best_witness: Optional[Witness] = None
        candidates: List[Tuple[Cost, int, Witness]] = []
        for loop in shape.loops:
            cost = (
                Cost.UNBOUNDED if "nested" in loop.detail else Cost.LINEAR
            )
            candidates.append((cost, loop.line, loop))
        bounded_ids = {
            id(b.site.node) for b in self._bounded_sites if b.caller == fid
        }
        for site in self.graph.calls.get(fid, ()):
            if not site.targets:
                continue
            if id(site.node) in bounded_ids:
                continue
            depth = shape.call_depth.get(id(site.node), 0)
            for target in site.targets:
                raw = self.effective_cost(target)
                cost = _scaled(raw, depth)
                if cost is Cost.CONSTANT:
                    continue
                node = self.graph.functions.get(target)
                label = raw.label
                if node is not None and node.declared is not None:
                    label = f"declared {node.declared}"
                detail = f"calls {site.raw} [{label}]"
                if depth:
                    detail += " inside an unbounded loop"
                candidates.append(
                    (
                        cost,
                        site.line,
                        Witness(
                            kind="call",
                            line=site.line,
                            detail=detail,
                            callee=target,
                        ),
                    )
                )
        for cost, line, witness in sorted(
            candidates, key=lambda item: (-item[0], item[1])
        ):
            best_cost = cost
            best_witness = witness
            break
        return Summary(fid=fid, cost=best_cost, witness=best_witness)

    def _bounded_site_was_needed(self, bounded: _BoundedSite) -> bool:
        """A flow-bounded call allow is *used* iff it changed anything."""
        caller_scc = self._scc_of.get(bounded.caller)
        for target in bounded.site.targets:
            if self.effective_cost(target) > Cost.CONSTANT:
                return True
            if (
                self._scc_of.get(target) is not None
                and self._scc_of.get(target) == caller_scc
            ):
                return True
        return False

    # -- diagnostics ---------------------------------------------------
    def witness_chain(self, fid: str, limit: int = 12) -> List[Hop]:
        """Follow worst-cost witnesses down from ``fid``."""
        hops: List[Hop] = []
        current: Optional[str] = fid
        while current is not None and len(hops) < limit:
            node = self.graph.functions[current]
            summary = self.summaries[current]
            witness = summary.witness
            if witness is None:
                hops.append(
                    Hop(
                        fid=current,
                        path=node.path,
                        line=node.lineno,
                        note=f"[{summary.cost.label}]",
                    )
                )
                break
            hops.append(
                Hop(
                    fid=current,
                    path=node.path,
                    line=witness.line,
                    note=witness.detail,
                )
            )
            if witness.kind != "call" or witness.callee is None:
                break
            callee = self.graph.functions.get(witness.callee)
            if callee is None or callee.declared is not None:
                break
            current = witness.callee
        return hops
