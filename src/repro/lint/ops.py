"""Registered operations for the empirical complexity fitter.

Each :class:`Operation` builds a fresh small machine, prepares state, and
measures ONE operation at operand size ``n`` (pages, path components, or
sharers — whatever the operation naturally scales over) on the simulated
clock.  The clock is deterministic, so a constant-time operation measures
*identically* at every size and the fitter's verdict is exact.

Several constant verdicts hold only inside the design's own envelope —
e.g. the extent policy rounds every request up to one 2 MiB extent, and a
premapped attach is one pointer write per 2 MiB window — so those
operations cap their operand size (``max_size``) at the single-window /
single-extent range and say so in their note.  That is not cheating; it
*is* the paper's space-for-time bargain, and the caps document exactly
where the O(1) envelope ends.

``fom.demand_touch`` is the control: a per-page demand-fault loop
deliberately declared O(1) with ``known_mismatch=True``.  The fitter must
fit it LINEAR; if it ever "confirms" the bogus declaration, the fitter has
lost its teeth and CI fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.kernel.kernel import Kernel, MachineConfig
from repro.lint.decorators import ComplexityClass
from repro.lint.fit import DEFAULT_CONSTANT_SPAN, FitResult, fit_series
from repro.units import MIB, PAGE_SIZE
from repro.vm.vma import MapFlags

#: Geometrically spaced operand sizes (pages, components, or sharers).
LIGHT_SIZES = (8, 16, 32, 64, 128, 256)
HEAVY_SIZES = (64, 128, 256, 512, 1024, 2048, 4096)

SIZE_SETS = {"light": LIGHT_SIZES, "heavy": HEAVY_SIZES}

#: One 2 MiB window / extent, in 4 KiB pages — the O(1) envelope for
#: premapped attaches and policy-rounded allocations.
WINDOW_PAGES = 512


@dataclass(frozen=True)
class Operation:
    """One fittable operation: a runner measuring cost at size ``n``."""

    name: str
    declared: ComplexityClass
    runner: Callable[[int], int]
    note: str = ""
    #: True for deliberate controls: the fit MUST contradict ``declared``.
    known_mismatch: bool = False
    #: Largest operand size the declaration covers (None = unbounded).
    max_size: Optional[int] = None

    def sizes_from(self, sizes: Sequence[int]) -> List[int]:
        """The subset of ``sizes`` inside this operation's envelope."""
        if self.max_size is None:
            return list(sizes)
        return [n for n in sizes if n <= self.max_size]


@dataclass(frozen=True)
class OperationFit:
    """Fit verdict for one operation at one size sweep."""

    operation: Operation
    sizes: List[int]
    costs: List[int]
    fit: FitResult

    @property
    def matches(self) -> bool:
        """Fitted class equals the declared class."""
        return self.fit.fitted is self.operation.declared

    @property
    def ok(self) -> bool:
        """True when the outcome is the expected one.

        Normal operations must match their declaration; known-mismatch
        controls must *not* (a control that matches means the fitter has
        stopped detecting O(n) behaviour).
        """
        if self.operation.known_mismatch:
            return not self.matches
        return self.matches


def _machine(**overrides: object) -> Kernel:
    config = dict(
        dram_bytes=128 * MIB,
        nvm_bytes=256 * MIB,
        range_hardware=True,
        pmfs_extent_align_frames=WINDOW_PAGES,
    )
    config.update(overrides)
    return Kernel(MachineConfig(**config))  # type: ignore[arg-type]


def _measure(kernel: Kernel, fn: Callable[[], object]) -> int:
    with kernel.measure() as measurement:
        fn()
    return measurement.elapsed_ns


# ---------------------------------------------------------------------------
# Runners (one fresh machine per measurement — fully deterministic)
# ---------------------------------------------------------------------------
def _run_mmap_anon(n: int) -> int:
    kernel = _machine()
    sys = kernel.syscalls(kernel.spawn("m"))
    return _measure(kernel, lambda: sys.mmap(n * PAGE_SIZE))


def _run_demand_touch(n: int) -> int:
    kernel = _machine()
    process = kernel.spawn("t")
    va = kernel.syscalls(process).mmap(n * PAGE_SIZE)
    return _measure(
        kernel, lambda: kernel.access_range(process, va, n * PAGE_SIZE)
    )


def _run_buddy_alloc_warm(n: int) -> int:
    kernel = _machine()
    buddy = kernel.dram_buddy
    order = buddy.order_for_pages(n)
    first = buddy.alloc(order)
    buddy.alloc(order)  # first's buddy: keeps the freed block unmerged
    buddy.free(first)
    return _measure(kernel, lambda: buddy.alloc(order))


def _run_buddy_free(n: int) -> int:
    kernel = _machine()
    buddy = kernel.dram_buddy
    pfn = buddy.alloc(buddy.order_for_pages(n))
    return _measure(kernel, lambda: buddy.free(pfn))


def _run_slab_alloc(n: int) -> int:
    from repro.mem.slab import SlabCache

    kernel = _machine()
    cache = SlabCache(
        "fit", 512, kernel.dram_buddy,
        clock=kernel.clock, costs=kernel.costs, counters=kernel.counters,
    )
    addrs = [cache.alloc() for _ in range(n)]
    cache.free(addrs[-1])  # warm LIFO slot: no slab growth in the measure
    return _measure(kernel, lambda: cache.alloc())


def _run_zeropool_take(n: int) -> int:
    from repro.mem.zeropool import ZeroPool

    kernel = _machine()
    pool = ZeroPool(
        kernel.dram_buddy, n,
        clock=kernel.clock, costs=kernel.costs, counters=kernel.counters,
    )
    pool.refill()  # background zeroing: off the measured clock
    return _measure(kernel, lambda: pool.take())


def _run_pmfs_create(n: int) -> int:
    kernel = _machine()
    assert kernel.pmfs is not None
    return _measure(
        kernel, lambda: kernel.pmfs.create("/fit", size=n * PAGE_SIZE)
    )


def _run_pmfs_unlink(n: int) -> int:
    kernel = _machine()
    assert kernel.pmfs is not None
    kernel.pmfs.create("/fit", size=n * PAGE_SIZE)
    return _measure(kernel, lambda: kernel.pmfs.unlink("/fit"))


def _run_fom_allocate(n: int) -> int:
    from repro.core.fom.manager import FileOnlyMemory

    kernel = _machine()
    fom = FileOnlyMemory(kernel)
    process = kernel.spawn("f")
    return _measure(kernel, lambda: fom.allocate(process, n * PAGE_SIZE))


def _run_fom_release(n: int) -> int:
    from repro.core.fom.manager import FileOnlyMemory

    kernel = _machine()
    fom = FileOnlyMemory(kernel)
    region = fom.allocate(kernel.spawn("f"), n * PAGE_SIZE)
    return _measure(kernel, lambda: fom.release(region))


def _premap_setup(n: int) -> Tuple[Any, Any, Any]:
    from repro.core.o1.premap import PageTableCache

    kernel = _machine()
    assert kernel.pmfs is not None
    inode = kernel.pmfs.create("/fit", size=n * PAGE_SIZE)
    ptcache = PageTableCache(
        kernel.config.page_table_levels,
        kernel.clock, kernel.costs, kernel.counters,
    )
    ptcache.premap(inode)  # the amortized linear build, unmeasured
    return kernel, ptcache, inode


def _run_premap_attach(n: int) -> int:
    kernel, ptcache, inode = _premap_setup(n)
    space = kernel.spawn("p").space
    return _measure(kernel, lambda: ptcache.attach(space, inode))


def _run_premap_detach(n: int) -> int:
    kernel, ptcache, inode = _premap_setup(n)
    attachment = ptcache.attach(kernel.spawn("p").space, inode)
    return _measure(kernel, lambda: ptcache.detach(attachment))


def _run_range_map(n: int) -> int:
    from repro.core.rangetrans.manager import RangeMemory

    kernel = _machine()
    assert kernel.pmfs is not None
    inode = kernel.pmfs.create("/fit", size=n * PAGE_SIZE)
    memory = RangeMemory(kernel)
    process = kernel.spawn("r")
    return _measure(kernel, lambda: memory.map_file(process, inode))


def _run_range_unmap(n: int) -> int:
    from repro.core.rangetrans.manager import RangeMemory

    kernel = _machine()
    assert kernel.pmfs is not None
    inode = kernel.pmfs.create("/fit", size=n * PAGE_SIZE)
    memory = RangeMemory(kernel)
    mapping = memory.map_file(kernel.spawn("r"), inode)
    return _measure(kernel, lambda: memory.unmap(mapping))


def _run_pbm_map(n: int) -> int:
    from repro.core.pbm.mapping import PbmManager

    kernel = _machine()
    assert kernel.pmfs is not None
    inode = kernel.pmfs.create("/fit", size=2 * MIB)
    pbm = PbmManager(kernel)
    for sharer in range(n):  # n processes already share the file
        pbm.map_file(kernel.spawn(f"s{sharer}"), inode)
    late = kernel.spawn("late")
    return _measure(kernel, lambda: pbm.map_file(late, inode))


def _run_vfs_lookup(n: int) -> int:
    kernel = _machine()
    assert kernel.pmfs is not None
    path = "/" + "/".join(f"d{i}" for i in range(n))
    kernel.pmfs.makedirs(path)
    kernel.pmfs.create(path + "/leaf")
    return _measure(kernel, lambda: kernel.pmfs.lookup(path + "/leaf"))


def _run_fork_cow(n: int) -> int:
    kernel = _machine()
    parent = kernel.spawn("f")
    sys = kernel.syscalls(parent)
    # POPULATE makes n pages resident without warming the TLB, so the
    # fork-time range invalidation drops a fixed (zero) entry count and
    # the measurement isolates the per-window share cost.
    sys.mmap(n * PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
    return _measure(kernel, lambda: sys.fork())


def _run_munmap_extent(n: int) -> int:
    kernel = _machine()
    sys = kernel.syscalls(kernel.spawn("u"))
    va = sys.mmap(n * PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
    return _measure(kernel, lambda: sys.munmap(va, n * PAGE_SIZE))


def _run_zero_eager(n: int) -> int:
    from repro.core.o1.zeroing import EagerZeroing

    kernel = _machine()
    strategy = EagerZeroing(
        kernel.dram_buddy, kernel.clock, kernel.costs, kernel.counters
    )
    return _measure(kernel, lambda: strategy.take_frames(n))


def _run_crypto_return(n: int) -> int:
    from repro.core.o1.zeroing import CryptoErase

    kernel = _machine()
    strategy = CryptoErase(
        kernel.dram_buddy, kernel.clock, kernel.costs, kernel.counters
    )
    pfns = strategy.take_frames(n)
    return _measure(kernel, lambda: strategy.return_frames(pfns))


def _run_qos_charge(n: int) -> int:
    kernel = _machine()
    qos = kernel.arm_qos()
    process = None
    for i in range(n):  # n registered tenants, each with its own cgroup
        process = kernel.spawn(f"t{i}", cgroup=qos.cgroup(f"t{i}"))
    assert process is not None
    qos.enter_pid(process.pid)
    buddy = kernel.dram_buddy
    first = buddy.alloc(0)
    buddy.alloc(0)  # first's buddy: keeps the freed block unmerged
    buddy.free(first)  # exact-order hit: isolates the charge-hook cost
    return _measure(kernel, lambda: buddy.alloc(0))


def _run_qos_reclaim_batch(n: int) -> int:
    kernel = _machine(swap_pages=16384)
    qos = kernel.arm_qos()
    cg = qos.cgroup("fit")  # limitless: setup never breaches
    process = kernel.spawn("fit", track_lru=True, cgroup=cg)
    sys = kernel.syscalls(process)
    # Resident population = scan cap's worth of pages plus n more, so
    # every measurement scans exactly the 4x-batch bound and evicts one
    # full batch — however much memory is resident beyond it.
    pages = 4 * qos.config.reclaim_batch * 4 + n
    va = sys.mmap(pages * PAGE_SIZE, flags=MapFlags.PRIVATE)
    # Demand-fault every page: only the fault path feeds the LRU.
    kernel.access_range(process, va, pages * PAGE_SIZE, write=True)
    return _measure(kernel, lambda: qos.reclaim_batch(cg))


_C = ComplexityClass.CONSTANT
_N = ComplexityClass.LINEAR

OPERATIONS: List[Operation] = [
    Operation(
        "syscall.mmap_anon", _C, _run_mmap_anon,
        note="VMA insert only; faults happen later (n = pages mapped)",
    ),
    Operation(
        "buddy.alloc.warm", _C, _run_buddy_alloc_warm,
        note="exact-order free list hit (n = pages; cold allocs add "
             "<= max_order splits)",
    ),
    Operation("buddy.free", _C, _run_buddy_free,
              note="merge chain charges 0 ns (n = pages in the block)"),
    Operation("slab.alloc", _C, _run_slab_alloc,
              note="LIFO slot pop (n = live objects in the cache)"),
    Operation("zeropool.take", _C, _run_zeropool_take,
              note="popleft of a pre-zeroed frame (n = pool occupancy)"),
    Operation("pmfs.create", _C, _run_pmfs_create,
              note="one journaled extent for any size (n = file pages)"),
    Operation("pmfs.unlink", _C, _run_pmfs_unlink,
              note="whole-file free: one journaled extent (n = file pages)"),
    Operation(
        "fom.allocate", _C, _run_fom_allocate,
        note="policy-rounded single extent, one huge-page map "
             "(n = requested pages)",
        max_size=WINDOW_PAGES,
    ),
    Operation(
        "fom.release", _C, _run_fom_release,
        note="one huge PTE teardown + whole-file unlink (n = pages)",
        max_size=WINDOW_PAGES,
    ),
    Operation(
        "premap.attach", _C, _run_premap_attach,
        note="one pointer write per 2 MiB window; single window here "
             "(n = file pages)",
        max_size=WINDOW_PAGES,
    ),
    Operation(
        "premap.detach", _C, _run_premap_detach,
        note="one pointer unlink per 2 MiB window (n = file pages)",
        max_size=WINDOW_PAGES,
    ),
    Operation("rangetrans.map_file", _C, _run_range_map,
              note="one RTE per extent; files here are single-extent "
                   "(n = file pages)"),
    Operation("rangetrans.unmap", _C, _run_range_unmap,
              note="one RTE remove + one range-TLB shootdown (n = pages)"),
    Operation(
        "pbm.map_file", _C, _run_pbm_map,
        note="per-process map cost independent of sharers (n = processes "
             "already mapping the file)",
        max_size=256,
    ),
    Operation(
        "kernel.fork_cow", _C, _run_fork_cow,
        note="COW fork: one pointer write + one WP bit per 2 MiB window; "
             "single window here (n = resident pages)",
        max_size=WINDOW_PAGES,
    ),
    Operation(
        "syscalls.munmap", _C, _run_munmap_extent,
        note="extent policy: one subtree unlink per 2 MiB window plus one "
             "batched TLB range invalidation; single window here "
             "(n = resident pages)",
        max_size=WINDOW_PAGES,
    ),
    Operation(
        "qos.charge", _C, _run_qos_charge,
        note="one frame alloc through the armed memcg charge hook "
             "(n = registered tenant cgroups)",
    ),
    Operation(
        "qos.reclaim_batch", _C, _run_qos_reclaim_batch,
        note="one direct-reclaim batch: scan capped at 4x batch size "
             "(n = resident pages beyond the scan cap)",
    ),
    Operation(
        "vfs.lookup", _N, _run_vfs_lookup,
        note="one charge per path component (n = path depth)",
        max_size=256,
    ),
    Operation(
        "zeroing.eager.take_frames", _N, _run_zero_eager,
        note="the baseline: zero every frame inline (n = frames)",
        max_size=1024,
    ),
    Operation(
        "zeroing.crypto.return_frames", _C, _run_crypto_return,
        note="one key destroy + one batched region free via "
             "buddy.free_many (n = frames)",
        max_size=1024,
    ),
    Operation(
        "fom.demand_touch", _C, _run_demand_touch,
        note="CONTROL: per-page demand faults, deliberately misdeclared "
             "O(1); the fitter must flag it (n = pages touched)",
        known_mismatch=True,
        max_size=1024,
    ),
]


def operations_by_name(names: Optional[Sequence[str]] = None) -> List[Operation]:
    """The registry, optionally filtered to ``names`` (exact match)."""
    if not names:
        return list(OPERATIONS)
    known = {op.name: op for op in OPERATIONS}
    missing = [name for name in names if name not in known]
    if missing:
        raise KeyError(
            f"unknown operations {missing}; known: {sorted(known)}"
        )
    return [known[name] for name in names]


def fit_operation(
    operation: Operation,
    sizes: Sequence[int] = LIGHT_SIZES,
    *,
    constant_span: float = DEFAULT_CONSTANT_SPAN,
) -> OperationFit:
    """Measure ``operation`` across ``sizes`` and fit its cost curve."""
    chosen = operation.sizes_from(sizes)
    if len(chosen) < 3:
        raise ValueError(
            f"{operation.name}: need >= 3 sizes inside max_size="
            f"{operation.max_size}, got {chosen}"
        )
    costs = [operation.runner(n) for n in chosen]
    fit = fit_series(chosen, costs, constant_span=constant_span)
    return OperationFit(operation=operation, sizes=chosen, costs=costs, fit=fit)


def fit_all(
    sizes: Sequence[int] = LIGHT_SIZES,
    names: Optional[Sequence[str]] = None,
) -> List[OperationFit]:
    """Fit every registered operation (or the named subset)."""
    return [fit_operation(op, sizes) for op in operations_by_name(names)]
