"""AllocSan: static allocation-shape analysis over the call graph.

The fourth conformance prong.  ``@o1`` bounds how *simulated* cost
scales; this pass bounds what a call *allocates on the real heap*.  A
function's Python source is classified into allocation shapes — list /
dict / set / tuple displays, comprehensions, generator expressions,
nested ``def`` / ``lambda`` (closure objects), f-strings and string
concatenation, slicing, ``*args`` / ``**kwargs`` call sites,
materializing builtins (``sorted``, ``zip``, ``list``, ``.items()``,
``.to_bytes()``, ...), and resolved in-package constructor calls — and
the shapes propagate bottom-up over the same SCC condensation the cost
pass uses, into the lattice

    NONE < BOUNDED < PER_ELEMENT < UNBOUNDED

scaled by unbounded-loop nesting exactly like cost: a BOUNDED shape
inside one unbounded loop is PER_ELEMENT, deeper is UNBOUNDED.

Judgments:

``alloc-exceeds-declared``
    a function decorated ``@allocfree`` has a transitive summary above
    NONE, or ``@allocbound(n)`` above BOUNDED, with the witness chain
    down to the offending shape.
``alloc-undeclared-hot``
    a function reachable from one of the four hot access entries
    (``Kernel.access``, ``Kernel.access_range``, ``Cpu.access``,
    ``Tlb.lookup``) is neither declared nor allocation-free.  These
    findings can never be baselined.
``alloc-control-missing``
    the planted mislabeled control was not flagged — the pass itself
    is broken.

Deliberate blind spots, by policy: CPython arithmetic boxing (every
``a + b`` on large ints allocates; unfixable at this layer) and
attribute-call allocation outside the curated builtin list.  The
empirical cross-check (:mod:`repro.lint.allocfit`) covers the gap: it
re-runs the certified ops under ``tracemalloc`` and fails on net
steady-state growth, so a static certificate cannot quietly lie.

Suppression syntax is ``# alloc: allow`` plus the parenthesized rule —
a separate namespace from ``# o1: allow`` so one pass's suppressions
never mask the other's.  Shape-kind names double as rules,
``cold-call`` marks a call site off the steady
state (fault recovery, TLB refill, traced mode) and excludes it from
both the caller's summary and the hot-closure walk, and stale alloc
suppressions are findings like stale o1 ones.  Shapes inside
``raise`` statements and ``except`` handler bodies are excused
automatically: error paths are terminal, not steady state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import IntEnum
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.astcheck import (
    ALLOC_ALLOW_RE,
    AllowMap,
    _is_constant_bounded,
)
from repro.lint.baseline import BaselineEntry, load_baseline
from repro.lint.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_callgraph,
    resolve_class_name,
)
from repro.lint.summaries import Hop, Witness, _BOUND_RULES, strongly_connected

RULE_ALLOC_EXCEEDS = "alloc-exceeds-declared"
RULE_ALLOC_HOT = "alloc-undeclared-hot"
RULE_ALLOC_CONTROL_MISSING = "alloc-control-missing"
#: Suppression-only: marks a call site cold (fault / refill / traced
#: path) — excluded from the caller's summary and the hot-closure walk.
RULE_COLD_CALL = "cold-call"

#: Shape kinds; each doubles as an ``# alloc: allow`` rule name.
SHAPE_KINDS = (
    "list-display",
    "dict-display",
    "set-display",
    "tuple-display",
    "comprehension",
    "genexp",
    "closure",
    "fstring",
    "str-concat",
    "slice",
    "star-args",
    "boxing-call",
    "ctor",
)

ALLOC_RULES = (RULE_ALLOC_EXCEEDS, RULE_ALLOC_HOT, RULE_ALLOC_CONTROL_MISSING)

#: Every rule an ``# alloc: allow`` comment may legitimately name.
ALLOC_ALLOWABLE_RULES = (*SHAPE_KINDS, RULE_COLD_CALL, *ALLOC_RULES)

#: Ships empty for the hot closure by construction: only
#: ``alloc-exceeds-declared`` may be ratcheted here, never
#: ``alloc-undeclared-hot``.
DEFAULT_ALLOC_BASELINE = Path(__file__).with_name("alloc_baseline.json")

#: Planted controls the pass must flag on every run (function, rule).
ALLOC_CONTROLS: Tuple[Tuple[str, str], ...] = (
    (
        "repro.lint.controls.control_allocfree_hidden_comprehension",
        RULE_ALLOC_EXCEEDS,
    ),
)

#: The four hot access entries whose reachable closure must be declared
#: or allocation-free — the per-access paths the paper's O(1) claim
#: lives or dies on.
HOT_ENTRY_METHODS: Tuple[Tuple[str, str], ...] = (
    ("Kernel", "access"),
    ("Kernel", "access_range"),
    ("Cpu", "access"),
    ("Tlb", "lookup"),
)

#: Builtins (and stdlib container constructors) whose call materializes
#: a new object.  ``int`` / ``float`` / ``bool`` are deliberately
#: absent: arithmetic boxing is outside the contract.
_BOXING_BUILTINS = frozenset(
    {
        "list",
        "dict",
        "set",
        "tuple",
        "frozenset",
        "sorted",
        "zip",
        "enumerate",
        "map",
        "filter",
        "reversed",
        "range",
        "iter",
        "bytes",
        "bytearray",
        "memoryview",
        "str",
        "repr",
        "format",
        "hex",
        "bin",
        "oct",
        "divmod",
        "vars",
        "dir",
        "OrderedDict",
        "defaultdict",
        "deque",
        "Counter",
        "namedtuple",
    }
)

#: Method names whose call returns a fresh container / string.
#: Curated for precision over recall: mutators that return None
#: (``append``, ``move_to_end``, ``update``) and transient-pair
#: returns (``popitem``) stay out; allocfit catches what this misses.
_BOXING_ATTRS = frozenset(
    {
        "to_bytes",
        "from_bytes",
        "items",
        "keys",
        "values",
        "split",
        "rsplit",
        "splitlines",
        "partition",
        "rpartition",
        "join",
        "copy",
        "deepcopy",
        "most_common",
        "decode",
        "encode",
        "format",
        "format_map",
        "ljust",
        "rjust",
        "zfill",
        "replace",
        "strip",
        "lstrip",
        "rstrip",
        "upper",
        "lower",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
        "tolist",
        "readlines",
    }
)


class AllocClass(IntEnum):
    """Per-call allocation lattice; comparison is growth order."""

    NONE = 0
    BOUNDED = 1
    PER_ELEMENT = 2
    UNBOUNDED = 3

    @property
    def label(self) -> str:
        return _ALLOC_LABEL[self]


_ALLOC_LABEL = {
    AllocClass.NONE: "allocation-free",
    AllocClass.BOUNDED: "bounded allocation",
    AllocClass.PER_ELEMENT: "per-element allocation",
    AllocClass.UNBOUNDED: "unbounded allocation",
}


def _scale(klass: AllocClass, depth: int) -> AllocClass:
    """Allocation of ``depth`` nested unbounded loops around ``klass``."""
    if klass is AllocClass.NONE or depth == 0:
        return klass
    if depth == 1:
        if klass is AllocClass.BOUNDED:
            return AllocClass.PER_ELEMENT
        return AllocClass.UNBOUNDED
    return AllocClass.UNBOUNDED


def alloc_declared_bound(func: FunctionNode) -> Optional[int]:
    """Syntactic ``@allocfree`` / ``@allocbound`` match on a definition.

    Mirrors :func:`repro.lint.astcheck.declared_class_of`: the static
    pass never imports analyzed code, it reads the decorator spelling.
    Returns the declared per-call bound (0 for allocfree, the argument
    or -1 for allocbound), or None when undeclared.
    """
    for deco in func.node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        else:
            continue
        if name == "allocfree":
            return 0
        if name == "allocbound":
            if isinstance(deco, ast.Call) and deco.args:
                first = deco.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, int
                ):
                    return first.value
            return -1
    return None


# ---------------------------------------------------------------------------
# Per-function shape classification
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AllocShape:
    """One allocation site, already scaled by its loop nesting."""

    kind: str
    line: int
    detail: str
    klass: AllocClass


@dataclass
class _AllocShapeSet:
    shapes: List[AllocShape]
    call_depth: Dict[int, int]  # id(ast.Call) -> enclosing unbounded loops
    cold_calls: Set[int]  # id(ast.Call) inside except handlers


def _render(node: ast.AST, limit: int = 48) -> str:
    try:
        return ast.unparse(node)[:limit]
    except Exception:  # pragma: no cover
        return "..."


class _Classifier:
    """One function body -> allocation shapes + call-site geometry."""

    def __init__(
        self, graph: CallGraph, func: FunctionNode, allowed: AllowMap
    ) -> None:
        self.graph = graph
        self.func = func
        self.allowed = allowed
        self.info = graph.modules.get(func.module)
        self.out = _AllocShapeSet(shapes=[], call_depth={}, cold_calls=set())

    def run(self) -> _AllocShapeSet:
        for stmt in self.func.node.body:
            self._visit(stmt, depth=0, cold=False)
        return self.out

    # -- helpers -------------------------------------------------------
    def _add(
        self, kind: str, node: ast.AST, detail: str, depth: int, klass: AllocClass
    ) -> None:
        line = getattr(node, "lineno", self.func.lineno)
        if self.allowed.allow((line, line - 1), kind):
            return
        scaled = _scale(klass, depth)
        if depth and scaled is not klass:
            detail += " inside an unbounded loop"
        self.out.shapes.append(
            AllocShape(kind=kind, line=line, detail=detail, klass=scaled)
        )

    def _loop_bounded(self, loop: ast.AST) -> bool:
        """Constant-bounded for scaling purposes.

        Reuses the o1 allow map *read-only* (``match``, never
        ``allow``): an ``# o1: allow(o1-size-loop)`` comment is a
        human-verified bound, and reading it here must not perturb the
        flow pass's stale-suppression accounting.
        """
        if _is_constant_bounded(loop):  # type: ignore[arg-type]
            return True
        o1_map = self.graph.allow_maps.get(self.func.path)
        if o1_map is None:
            return False
        lineno = getattr(loop, "lineno", self.func.lineno)
        lines = (lineno, lineno - 1, self.func.lineno)
        return any(o1_map.match(lines, rule) is not None for rule in _BOUND_RULES)

    def _ctor_target(self, call: ast.Call) -> Optional[str]:
        """Class id when ``call`` constructs an in-package class."""
        if self.info is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            dotted = func.id
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            dotted = f"{func.value.id}.{func.attr}"
        else:
            return None
        return resolve_class_name(self.graph, dotted, self.info)

    def _classify_call(self, node: ast.Call, depth: int) -> None:
        if any(isinstance(arg, ast.Starred) for arg in node.args) or any(
            kw.arg is None for kw in node.keywords
        ):
            self._add(
                "star-args",
                node,
                f"call {_render(node.func)}(...) packs *args/**kwargs",
                depth,
                AllocClass.BOUNDED,
            )
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _BOXING_BUILTINS:
                self._add(
                    "boxing-call",
                    node,
                    f"{name}(...) materializes a new object",
                    depth,
                    AllocClass.BOUNDED,
                )
                return
        elif isinstance(node.func, ast.Attribute):
            if node.func.attr in _BOXING_ATTRS:
                self._add(
                    "boxing-call",
                    node,
                    f".{node.func.attr}() materializes a new object",
                    depth,
                    AllocClass.BOUNDED,
                )
                return
        cid = self._ctor_target(node)
        if cid is not None:
            self._add(
                "ctor",
                node,
                f"constructs {self.graph.classes[cid].name}",
                depth,
                AllocClass.BOUNDED,
            )

    # -- walk ----------------------------------------------------------
    def _visit_fstring_calls(self, node: ast.AST, depth: int, cold: bool) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                if cold:
                    self.out.cold_calls.add(id(sub))
                else:
                    self.out.call_depth[id(sub)] = depth

    def _visit(self, node: ast.AST, depth: int, cold: bool) -> None:
        if isinstance(node, (ast.Raise, ast.Assert)):
            # Terminal error paths; still register calls so the graph
            # edges they carry are treated as cold, not missing.
            self._visit_fstring_calls(node, depth, cold=True)
            return
        if isinstance(node, ast.ExceptHandler):
            for child in node.body:
                self._visit(child, depth, cold=True)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if not cold:
                self._add(
                    "closure",
                    node,
                    "nested def/lambda creates a function object per call",
                    depth,
                    AllocClass.BOUNDED,
                )
            # The nested body is its own scope; calls inside run when
            # the closure does, which this pass does not model.
            return
        if isinstance(node, ast.Call):
            if cold:
                self.out.cold_calls.add(id(node))
            else:
                self.out.call_depth[id(node)] = depth
                self._classify_call(node, depth)
            for child in ast.iter_child_nodes(node):
                self._visit(child, depth, cold)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._visit(node.iter, depth, cold)
            inner = depth if self._loop_bounded(node) else depth + 1
            for child in node.body + node.orelse:
                self._visit(child, inner, cold)
            return
        if isinstance(node, ast.While):
            inner = depth if self._loop_bounded(node) else depth + 1
            self._visit(node.test, inner, cold)
            for child in node.body + node.orelse:
                self._visit(child, inner, cold)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            bounded = self._loop_bounded(node)
            if not cold:
                klass = AllocClass.BOUNDED if bounded else AllocClass.PER_ELEMENT
                self._add(
                    "comprehension",
                    node,
                    f"comprehension {_render(node)}",
                    depth,
                    klass,
                )
            inner = depth if bounded else depth + 1
            for child in ast.iter_child_nodes(node):
                self._visit(child, inner, cold)
            return
        if isinstance(node, ast.GeneratorExp):
            if not cold:
                self._add(
                    "genexp",
                    node,
                    f"generator expression {_render(node)}",
                    depth,
                    AllocClass.BOUNDED,
                )
            inner = depth if self._loop_bounded(node) else depth + 1
            for child in ast.iter_child_nodes(node):
                self._visit(child, inner, cold)
            return
        if isinstance(node, ast.JoinedStr):
            if not cold:
                self._add(
                    "fstring",
                    node,
                    f"f-string {_render(node)}",
                    depth,
                    AllocClass.BOUNDED,
                )
            self._visit_fstring_calls(node, depth, cold)
            return
        if not cold:
            if isinstance(node, ast.List) and isinstance(node.ctx, ast.Load):
                self._add(
                    "list-display", node, f"list {_render(node)}", depth,
                    AllocClass.BOUNDED,
                )
            elif isinstance(node, ast.Set):
                self._add(
                    "set-display", node, f"set {_render(node)}", depth,
                    AllocClass.BOUNDED,
                )
            elif isinstance(node, ast.Dict):
                self._add(
                    "dict-display", node, f"dict {_render(node)}", depth,
                    AllocClass.BOUNDED,
                )
            elif isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
                # All-constant tuples are folded at compile time.
                if not all(isinstance(el, ast.Constant) for el in node.elts):
                    self._add(
                        "tuple-display", node, f"tuple {_render(node)}", depth,
                        AllocClass.BOUNDED,
                    )
            elif isinstance(node, ast.BinOp):
                str_side = any(
                    isinstance(side, ast.JoinedStr)
                    or (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, str)
                    )
                    for side in (node.left, node.right)
                )
                if isinstance(node.op, ast.Add) and str_side:
                    self._add(
                        "str-concat", node,
                        f"string concatenation {_render(node)}", depth,
                        AllocClass.BOUNDED,
                    )
                elif isinstance(node.op, ast.Mod) and isinstance(
                    node.left, ast.Constant
                ) and isinstance(node.left.value, str):
                    self._add(
                        "str-concat", node,
                        f"%-formatting {_render(node)}", depth,
                        AllocClass.BOUNDED,
                    )
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Slice)
                and isinstance(node.ctx, ast.Load)
            ):
                self._add(
                    "slice", node, f"slice {_render(node)}", depth,
                    AllocClass.BOUNDED,
                )
        for child in ast.iter_child_nodes(node):
            self._visit(child, depth, cold)


# ---------------------------------------------------------------------------
# Interprocedural propagation
# ---------------------------------------------------------------------------
@dataclass
class AllocSummary:
    """Computed allocation class of one function (own declaration aside)."""

    fid: str
    klass: AllocClass
    witness: Optional[Witness] = None


@dataclass
class _ColdSite:
    """A call site excused by ``cold-call``; usage judged after the fact."""

    caller: str
    site: CallSite
    allow_line: int


class AllocTable:
    """Allocation summaries plus the edge sets findings are built from."""

    def __init__(
        self, graph: CallGraph, allow_maps: Dict[str, AllowMap]
    ) -> None:
        self.graph = graph
        self.allow_maps = allow_maps
        self.declared: Dict[str, int] = {}
        self.shapes: Dict[str, _AllocShapeSet] = {}
        self.summaries: Dict[str, AllocSummary] = {}
        #: Non-cold resolved edges including through declared callees,
        #: for the hot-closure walk: fid -> [(target, line)].
        self.hot_edges: Dict[str, List[Tuple[str, int]]] = {}
        self._cold_sites: List[_ColdSite] = []
        self._scc_of: Dict[str, int] = {}
        self._compute()

    def allow_map_for(self, func: FunctionNode) -> AllowMap:
        return self.allow_maps.setdefault(func.path, AllowMap(""))

    def _site_cold_line(
        self, func: FunctionNode, site: CallSite
    ) -> Optional[int]:
        allowed = self.allow_map_for(func)
        return allowed.match((site.line, site.line - 1), RULE_COLD_CALL)

    def _compute(self) -> None:
        graph = self.graph
        for fid, func in graph.functions.items():
            bound = alloc_declared_bound(func)
            if bound is not None:
                self.declared[fid] = bound
            self.shapes[fid] = _Classifier(
                graph, func, self.allow_map_for(func)
            ).run()
        edges: Dict[str, List[str]] = {}
        for fid, func in graph.functions.items():
            out: List[str] = []
            hot_out: List[Tuple[str, int]] = []
            shape = self.shapes[fid]
            for site in graph.calls.get(fid, ()):
                if id(site.node) in shape.cold_calls:
                    continue
                if id(site.node) not in shape.call_depth:
                    # Decorator, annotation or default-arg call: runs
                    # at import/definition time, not per invocation.
                    continue
                cold_line = self._site_cold_line(func, site)
                if cold_line is not None:
                    self._cold_sites.append(
                        _ColdSite(caller=fid, site=site, allow_line=cold_line)
                    )
                    continue
                for target in site.targets:
                    if target not in graph.functions:
                        continue
                    hot_out.append((target, site.line))
                    if target not in self.declared:
                        out.append(target)
            edges[fid] = out
            self.hot_edges[fid] = hot_out
        components = strongly_connected(list(graph.functions), edges)
        for number, component in enumerate(components):
            for member in component:
                self._scc_of[member] = number
        for component in components:
            cyclic = len(component) > 1 or (
                component[0] in edges.get(component[0], ())
            )
            if cyclic:
                for member in component:
                    self.summaries[member] = self._recursive_summary(
                        member, set(component)
                    )
                continue
            fid = component[0]
            self.summaries[fid] = self._combine(fid)
        for cold in self._cold_sites:
            if self._cold_site_was_needed(cold):
                self.allow_map_for(
                    self.graph.functions[cold.caller]
                ).mark_used(cold.allow_line)

    def _recursive_summary(self, fid: str, component: Set[str]) -> AllocSummary:
        witness: Optional[Witness] = None
        for site in self.graph.calls.get(fid, ()):
            for target in site.targets:
                if target in component:
                    witness = Witness(
                        kind="recursion",
                        line=site.line,
                        detail=(
                            f"recursive call {site.raw} "
                            "(cycle of alloc-undeclared functions)"
                        ),
                    )
                    break
            if witness is not None:
                break
        return AllocSummary(fid=fid, klass=AllocClass.UNBOUNDED, witness=witness)

    def effective_alloc(self, fid: str) -> AllocClass:
        """What a call to ``fid`` contributes: declared cut or summary."""
        bound = self.declared.get(fid)
        if bound is not None:
            return AllocClass.NONE if bound == 0 else AllocClass.BOUNDED
        summary = self.summaries.get(fid)
        return summary.klass if summary is not None else AllocClass.NONE

    def _combine(self, fid: str) -> AllocSummary:
        shape = self.shapes[fid]
        candidates: List[Tuple[AllocClass, int, Witness]] = []
        for item in shape.shapes:
            candidates.append(
                (
                    item.klass,
                    item.line,
                    Witness(kind="shape", line=item.line, detail=item.detail),
                )
            )
        for site in self.graph.calls.get(fid, ()):
            if id(site.node) not in shape.call_depth:
                continue  # cold, decorator, or definition-time call
            if any(
                cold.caller == fid and id(cold.site.node) == id(site.node)
                for cold in self._cold_sites
            ):
                continue
            depth = shape.call_depth[id(site.node)]
            for target in site.targets:
                raw = self.effective_alloc(target)
                klass = _scale(raw, depth)
                if klass is AllocClass.NONE:
                    continue
                label = raw.label
                bound = self.declared.get(target)
                if bound is not None:
                    label = (
                        "declared @allocfree"
                        if bound == 0
                        else f"declared @allocbound({bound})"
                    )
                detail = f"calls {site.raw} [{label}]"
                if depth:
                    detail += " inside an unbounded loop"
                candidates.append(
                    (
                        klass,
                        site.line,
                        Witness(
                            kind="call",
                            line=site.line,
                            detail=detail,
                            callee=target,
                        ),
                    )
                )
        best = AllocClass.NONE
        best_witness: Optional[Witness] = None
        for klass, _line, witness in sorted(
            candidates, key=lambda item: (-item[0], item[1])
        ):
            best = klass
            best_witness = witness
            break
        return AllocSummary(fid=fid, klass=best, witness=best_witness)

    def _cold_site_was_needed(self, cold: _ColdSite) -> bool:
        """A cold-call allow is *used* iff it changed anything."""
        caller_scc = self._scc_of.get(cold.caller)
        for target in cold.site.targets:
            if self.effective_alloc(target) > AllocClass.NONE:
                return True
            if (
                self._scc_of.get(target) is not None
                and self._scc_of.get(target) == caller_scc
            ):
                return True
        return False

    # -- diagnostics ---------------------------------------------------
    def witness_chain(self, fid: str, limit: int = 12) -> List[Hop]:
        """Follow worst-allocation witnesses down from ``fid``."""
        hops: List[Hop] = []
        current: Optional[str] = fid
        while current is not None and len(hops) < limit:
            node = self.graph.functions[current]
            summary = self.summaries[current]
            witness = summary.witness
            if witness is None:
                hops.append(
                    Hop(
                        fid=current,
                        path=node.path,
                        line=node.lineno,
                        note=f"[{summary.klass.label}]",
                    )
                )
                break
            hops.append(
                Hop(
                    fid=current,
                    path=node.path,
                    line=witness.line,
                    note=witness.detail,
                )
            )
            if witness.kind != "call" or witness.callee is None:
                break
            if witness.callee in self.declared:
                break
            current = witness.callee
        return hops


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AllocFinding:
    """One AllocSan finding, addressable by (function, rule)."""

    path: str
    line: int
    module: str
    qualname: str
    rule: str
    message: str
    chain: Tuple[Hop, ...] = ()

    @property
    def function(self) -> str:
        """Dotted name used by baseline entries."""
        return f"{self.module}.{self.qualname}"

    def format(self) -> str:
        head = (
            f"{self.path}:{self.line}: [{self.rule}] "
            f"{self.function}: {self.message}"
        )
        if not self.chain:
            return head
        steps = "\n".join(f"      {hop.format()}" for hop in self.chain)
        return f"{head}\n{steps}"


@dataclass(frozen=True)
class AllocStaleSuppression:
    """An ``# alloc: allow`` comment that suppressed nothing."""

    path: str
    line: int
    rules: Tuple[str, ...]

    def format(self) -> str:
        listed = ", ".join(self.rules)
        return (
            f"{self.path}:{self.line}: stale suppression "
            f"# alloc: allow({listed})"
        )


@dataclass
class AllocResult:
    """Everything ``lint --alloc`` reports."""

    findings: List[AllocFinding]
    controls_verified: List[AllocFinding]
    stale_suppressions: List[AllocStaleSuppression]
    entries: List[str]
    hot_reachable: int
    declared_allocfree: int
    declared_allocbound: int
    files: int
    functions: int
    graph: CallGraph = field(repr=False)
    table: AllocTable = field(repr=False)


def hot_entry_points(graph: CallGraph) -> List[str]:
    """The four hot access entries, resolved to function ids."""
    wanted = set(HOT_ENTRY_METHODS)
    entries: List[str] = []
    for klass in sorted(graph.classes.values(), key=lambda k: k.cid):
        for name, fid in sorted(klass.methods.items()):
            if (klass.name, name) in wanted:
                entries.append(fid)
    return entries


def _declared_findings(table: AllocTable) -> List[AllocFinding]:
    graph = table.graph
    findings: List[AllocFinding] = []
    for fid in sorted(table.declared):
        func = graph.functions[fid]
        bound = table.declared[fid]
        permitted = AllocClass.NONE if bound == 0 else AllocClass.BOUNDED
        summary = table.summaries[fid]
        if summary.klass <= permitted:
            continue
        allowed = table.allow_map_for(func)
        if allowed.allow((func.lineno,), RULE_ALLOC_EXCEEDS):
            continue
        chain = tuple(table.witness_chain(fid))
        line = chain[0].line if chain else func.lineno
        decorator = "@allocfree" if bound == 0 else f"@allocbound({bound})"
        findings.append(
            AllocFinding(
                path=func.path,
                line=line,
                module=func.module,
                qualname=func.qualname,
                rule=RULE_ALLOC_EXCEEDS,
                message=(
                    f"declared {decorator} but the call graph reaches "
                    f"{summary.klass.label}"
                ),
                chain=chain,
            )
        )
    return findings


def _hot_findings(
    table: AllocTable, entries: Sequence[str]
) -> Tuple[List[AllocFinding], int]:
    graph = table.graph
    parent: Dict[str, Tuple[Optional[str], int]] = {}
    order: List[str] = []
    for entry in entries:
        if entry in parent:
            continue
        parent[entry] = (None, graph.functions[entry].lineno)
        queue = [entry]
        while queue:
            current = queue.pop(0)
            order.append(current)
            for target, line in table.hot_edges.get(current, ()):
                if target in parent:
                    continue
                parent[target] = (current, line)
                queue.append(target)
    findings: List[AllocFinding] = []
    for fid in order:
        if fid in table.declared:
            continue
        summary = table.summaries[fid]
        if summary.klass is AllocClass.NONE:
            continue
        func = graph.functions[fid]
        allowed = table.allow_map_for(func)
        if allowed.allow((func.lineno,), RULE_ALLOC_HOT):
            continue
        hops: List[Hop] = []
        cursor: Optional[str] = fid
        while cursor is not None:
            origin, line = parent[cursor]
            hops.append(
                Hop(
                    fid=cursor,
                    path=graph.functions[cursor].path,
                    line=line,
                    note="" if origin is None else "called from here",
                )
            )
            cursor = origin
        hops.reverse()
        if summary.witness is not None:
            hops.append(
                Hop(
                    fid=fid,
                    path=func.path,
                    line=summary.witness.line,
                    note=summary.witness.detail,
                )
            )
        findings.append(
            AllocFinding(
                path=func.path,
                line=func.lineno,
                module=func.module,
                qualname=func.qualname,
                rule=RULE_ALLOC_HOT,
                message=(
                    f"reachable from hot access entry {hops[0].fid} with "
                    f"{summary.klass.label} but no @allocfree/@allocbound "
                    "declaration"
                ),
                chain=tuple(hops[:12]),
            )
        )
    return findings, len(order)


def _split_controls(
    findings: List[AllocFinding],
) -> Tuple[List[AllocFinding], List[AllocFinding]]:
    control_keys = set(ALLOC_CONTROLS)
    real: List[AllocFinding] = []
    verified: List[AllocFinding] = []
    for finding in findings:
        if (finding.function, finding.rule) in control_keys:
            verified.append(finding)
        else:
            real.append(finding)
    fired = {(f.function, f.rule) for f in verified}
    for function, rule in ALLOC_CONTROLS:
        if (function, rule) in fired:
            continue
        module, _, qualname = function.rpartition(".")
        real.append(
            AllocFinding(
                path="<alloc>",
                line=0,
                module=module,
                qualname=qualname,
                rule=RULE_ALLOC_CONTROL_MISSING,
                message=(
                    f"planted control was not flagged for {rule}; AllocSan "
                    "is not detecting what it is built to detect"
                ),
            )
        )
    return real, verified


def _stale_suppressions(
    allow_maps: Dict[str, AllowMap]
) -> List[AllocStaleSuppression]:
    stale: List[AllocStaleSuppression] = []
    for path in sorted(allow_maps):
        allow_map = allow_maps[path]
        for line in sorted(allow_map.comment_lines):
            if line in allow_map.used:
                continue
            stale.append(
                AllocStaleSuppression(
                    path=path,
                    line=line,
                    rules=tuple(sorted(allow_map.comment_lines[line])),
                )
            )
    return stale


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------
def load_alloc_baseline(path: Path) -> List[BaselineEntry]:
    """Load an alloc baseline; hot-closure findings can never ratchet."""
    entries = load_baseline(path, known_rules=ALLOC_RULES)
    for entry in entries:
        if entry.rule != RULE_ALLOC_EXCEEDS:
            raise ValueError(
                f"{path}: {entry.rule} findings cannot be baselined — the "
                "hot-closure gate ships empty and stays empty"
            )
    return entries


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def run_alloc(
    root: Path,
    package: str = "repro",
    graph: Optional[CallGraph] = None,
) -> AllocResult:
    """Run AllocSan over the package at ``root``.

    Pass ``graph`` to share the call graph with a flow run in the same
    invocation instead of parsing the tree twice.
    """
    if graph is None:
        graph = build_callgraph(root, package)
    allow_maps: Dict[str, AllowMap] = {}
    for info in graph.modules.values():
        try:
            source = Path(info.path).read_text(encoding="utf-8")
        except OSError:  # pragma: no cover
            source = ""
        allow_maps[info.path] = AllowMap(source, pattern=ALLOC_ALLOW_RE)
    table = AllocTable(graph, allow_maps)
    entries = hot_entry_points(graph)
    declared_free = sum(1 for b in table.declared.values() if b == 0)
    hot_findings, hot_reachable = _hot_findings(table, entries)
    findings = _declared_findings(table) + hot_findings
    findings, verified = _split_controls(findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.function))
    stale = _stale_suppressions(allow_maps)
    return AllocResult(
        findings=findings,
        controls_verified=verified,
        stale_suppressions=stale,
        entries=entries,
        hot_reachable=hot_reachable,
        declared_allocfree=declared_free,
        declared_allocbound=len(table.declared) - declared_free,
        files=graph.files_parsed,
        functions=len(graph.functions),
        graph=graph,
        table=table,
    )
