"""Order(1) conformance: declarations, AST linters, flow analysis, fitters.

The paper's thesis is that every memory-management operation should cost
constant time regardless of operand size.  This package turns that claim
into a machine-checked invariant, in four prongs:

* :mod:`repro.lint.decorators` — the :func:`o1` / :func:`complexity`
  decorators hot paths use to *declare* their simulated-cost class, and
  the :func:`allocfree` / :func:`allocbound` decorators that declare the
  orthogonal wall-clock contract (how many Python-level allocations a
  call may perform).  Declaring is free at runtime (attributes set at
  import time, no wrapper).
* :mod:`repro.lint.astcheck` — a static cost-shape linter that parses the
  source of every declared function and flags size-dependent loops,
  charge-inside-loop patterns and recursion that contradict the declared
  class.  Known-O(n)-by-design paths carry inline ``# o1: allow(...)``
  suppressions or live in the checked-in baseline
  (``src/repro/lint/o1_baseline.json``).
* :mod:`repro.lint.flow` (with :mod:`repro.lint.callgraph`,
  :mod:`repro.lint.summaries`, :mod:`repro.lint.protocols`,
  :mod:`repro.lint.controls`) — an interprocedural analysis that builds a
  syntactic call graph of the whole package, propagates transitive cost
  summaries bottom-up over SCCs so a declaration is judged against
  everything it can reach, requires every function reachable from a
  hot-path entry to be declared or constant-shaped, and checks two
  must-call protocols across call boundaries (page-table mutation must
  reach a TLB invalidation before the syscall returns; journal commit
  must precede apply).  Its baseline
  (``src/repro/lint/flow_baseline.json``) is empty by policy, and stale
  ``# o1: allow`` suppressions are themselves findings.
* :mod:`repro.lint.alloc` + :mod:`repro.lint.allocfit` — AllocSan: an
  AST allocation-shape classifier (displays, comprehensions, f-strings,
  closures, star-args, materializing builtins) whose per-function shapes
  propagate over the same call graph as transitive allocation summaries
  (none < bounded < per-element < unbounded), judged against
  ``@allocfree`` / ``@allocbound`` declarations; every function
  reachable from the four hot access entries must be declared or
  allocation-free.  ``allocfit`` then re-runs the certified hot ops
  under ``tracemalloc`` / ``gc.get_count()`` deltas, so a static
  certificate that lies about steady-state allocation fails the gate.
  Baseline: ``src/repro/lint/alloc_baseline.json`` (hot-closure findings
  can never be baselined).
* :mod:`repro.lint.fit` + :mod:`repro.lint.ops` — an empirical complexity
  fitter that runs registered operations at geometrically spaced operand
  sizes on the simulated clock and fits cost-vs-size to
  constant/log/linear/linearithmic, catching dynamic O(n) behaviour the
  AST cannot see.

Run them via ``repro-o1 lint [--interproc] [--alloc] [--fit]``; CI gates
on a clean run.

Only the declaration half is imported here: the checkers and fitters pull
in the whole simulator, and annotated modules (buddy, TLB, syscalls, ...)
import ``repro.lint`` at module load, so this ``__init__`` must stay
dependency-free to avoid import cycles.
"""

from repro.lint.decorators import (
    AllocDeclaration,
    ComplexityClass,
    Declaration,
    allocbound,
    allocfree,
    complexity,
    declared_alloc,
    declared_complexity,
    iter_alloc_declarations,
    iter_declarations,
    o1,
)

__all__ = [
    "AllocDeclaration",
    "ComplexityClass",
    "Declaration",
    "allocbound",
    "allocfree",
    "complexity",
    "declared_alloc",
    "declared_complexity",
    "iter_alloc_declarations",
    "iter_declarations",
    "o1",
]
