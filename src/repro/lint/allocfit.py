"""Empirical cross-check of the static allocation certificates.

AllocSan (:mod:`repro.lint.alloc`) certifies hot paths allocation-free
by shape; this module re-runs them and watches the heap.  Each
registered :class:`AllocOp` builds a fresh small machine, warms the
operation past its transient phase (TLB fills, cache installs, counter
keys, interned ints), then measures the *net*
``tracemalloc.get_traced_memory()`` growth over thousands of
steady-state calls with the GC disabled.  An op whose certified
closure is honest nets ~0 bytes/call — transient objects (CPython int
boxing, immediately-freed tuples) cancel out of the current-size
delta, which is exactly why net growth rather than per-call event
counting is the metric: boxing is unavoidable at this layer,
*retained* allocation is not.

The registry carries a planted control
(:func:`repro.lint.controls.control_allocfree_retaining`): statically
certified ``@allocfree``, empirically retaining ~30 bytes per call.
Its ``expect_growth`` flag inverts the judgment — the run fails unless
the control *does* grow, so a broken harness (tracemalloc off, warmup
eating the measurement window, threshold absurdly high) is caught on
every run rather than silently certifying everything.

Each op also names the declared functions its closure exercises; a
name that is not in the import-time allocation registry
(:func:`repro.lint.decorators.iter_alloc_declarations`) fails the op —
the empirical and static prongs must agree on *what* is certified, not
just on whether it allocates.
"""

from __future__ import annotations

import gc
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lint.decorators import iter_alloc_declarations

#: Net steady-state growth below this is noise (one pointer per call
#: would already be 8 bytes; a retained int is ~28).
DEFAULT_MAX_BYTES_PER_CALL = 8.0


@dataclass(frozen=True)
class AllocOp:
    """One empirically cross-checked hot operation."""

    name: str
    #: Builds fresh state; returns the zero-argument steady-state call.
    prepare: Callable[[], Callable[[], object]]
    #: Declared functions this op's certified closure exercises; each
    #: must exist in the import-time allocation registry.
    certified: Tuple[str, ...]
    #: Calls before measurement starts: must cover every transient
    #: (TLB/cache fills, counter keys, one full working-set cycle).
    warmup: int = 512
    #: Measured steady-state calls.
    calls: int = 4096
    max_bytes_per_call: float = DEFAULT_MAX_BYTES_PER_CALL
    #: Planted control: the run fails unless this op *does* grow.
    expect_growth: bool = False
    note: str = ""


@dataclass(frozen=True)
class AllocFitResult:
    """Measured heap behaviour of one op, judged."""

    name: str
    calls: int
    net_bytes: int
    per_call_bytes: float
    gc_delta: Tuple[int, int, int]
    expect_growth: bool
    grew: bool
    uncertified: Tuple[str, ...]
    ok: bool
    note: str = ""

    def format(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        kind = "control" if self.expect_growth else "certified"
        extra = ""
        if self.uncertified:
            extra = f"  undeclared: {', '.join(self.uncertified)}"
        return (
            f"{self.name:<24} {verdict:<4} {kind:<9} "
            f"{self.per_call_bytes:>8.2f} B/call net over {self.calls} calls "
            f"(gc {self.gc_delta}){extra}"
        )


def measure_net_growth(
    fn: Callable[[], object], warmup: int, calls: int
) -> Tuple[int, Tuple[int, int, int]]:
    """Net traced-heap growth (bytes) and gc-count delta of ``calls``
    steady-state invocations of ``fn`` after ``warmup`` discarded ones.

    The GC is disabled during the window so collector runs cannot mask
    retention, and tracemalloc state is restored to whatever it was on
    entry (the suite may already be tracing).

    Tracing starts *before* the warmup, not after: steady-state LRU
    churn (TLB sets, cache LRU lists) constantly replaces resident
    objects, and tracemalloc only credits the free of a block it saw
    allocated.  Warm under tracing and replacement nets to zero;
    warm untraced and the counter climbs for one full working-set
    cycle while untraced residents are swapped for traced ones —
    indistinguishable from a leak.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    for _ in range(warmup):
        fn()
    was_gc_enabled = gc.isenabled()
    gc.collect()
    if was_gc_enabled:
        gc.disable()
    try:
        before_counts = gc.get_count()
        before, _peak = tracemalloc.get_traced_memory()
        for _ in range(calls):
            fn()
        after, _peak = tracemalloc.get_traced_memory()
        after_counts = gc.get_count()
    finally:
        if was_gc_enabled:
            gc.enable()
        if not was_tracing:
            tracemalloc.stop()
    delta = (
        after_counts[0] - before_counts[0],
        after_counts[1] - before_counts[1],
        after_counts[2] - before_counts[2],
    )
    return after - before, delta


def _registered_certified() -> Dict[str, bool]:
    """Dotted name -> allocfree for every import-time declaration."""
    return {
        decl.function: decl.allocfree for decl in iter_alloc_declarations()
    }


def run_alloc_op(op: AllocOp) -> AllocFitResult:
    """Prepare, warm, measure and judge one op."""
    fn = op.prepare()
    net, gc_delta = measure_net_growth(fn, op.warmup, op.calls)
    per_call = net / op.calls if op.calls else 0.0
    grew = per_call > op.max_bytes_per_call
    registered = _registered_certified()
    uncertified = tuple(
        name for name in op.certified if name not in registered
    )
    ok = (grew if op.expect_growth else not grew) and not uncertified
    return AllocFitResult(
        name=op.name,
        calls=op.calls,
        net_bytes=net,
        per_call_bytes=per_call,
        gc_delta=gc_delta,
        expect_growth=op.expect_growth,
        grew=grew,
        uncertified=uncertified,
        ok=ok,
        note=op.note,
    )


# ---------------------------------------------------------------------------
# Op preparers: mirror the wall-clock bench preps, sized for heap
# steady state rather than timer granularity.
# ---------------------------------------------------------------------------
def _prep_access_tlb_hit() -> Callable[[], object]:
    from repro.perf.bench import _machine
    from repro.units import PAGE_SIZE
    from repro.vm.vma import MapFlags

    kernel = _machine()
    process = kernel.spawn("a")
    va = kernel.syscalls(process).mmap(
        PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE
    )
    return lambda: kernel.access(process, va)


def _prep_access_tlb_miss_walk() -> Callable[[], object]:
    from repro.perf.bench import _machine
    from repro.units import PAGE_SIZE
    from repro.vm.vma import MapFlags

    kernel = _machine()
    process = kernel.spawn("a")
    npages = 4096  # beyond TLB reach: sequential cycle = all misses
    size = npages * PAGE_SIZE
    va = kernel.syscalls(process).mmap(
        size, flags=MapFlags.PRIVATE | MapFlags.POPULATE
    )
    cursor = [0]

    def step() -> object:
        index = cursor[0]
        cursor[0] = (index + 1) % npages
        return kernel.access(process, va + index * PAGE_SIZE)

    return step


def _prep_control_retaining() -> Callable[[], object]:
    from repro.lint import controls

    cursor = [0]

    def step() -> object:
        cursor[0] += 1
        # Large ints defeat the small-int cache so every call retains
        # a fresh object, not a shared singleton.
        return controls.control_allocfree_retaining(1_000_000 + cursor[0])

    return step


#: The registry ``lint --alloc`` cross-checks.  Warmups are sized to a
#: full working-set cycle (the miss op touches 4096 pages; everything
#: it will ever install must be installed before measurement).
ALLOC_OPS: List[AllocOp] = [
    AllocOp(
        "access.tlb_hit",
        _prep_access_tlb_hit,
        certified=(
            "repro.kernel.kernel.Kernel.access",
            "repro.kernel.kernel.Kernel._ensure_current",
            "repro.hw.cpu.Cpu.access",
            "repro.hw.cpu.Cpu._translate",
            "repro.hw.tlb.Tlb.lookup",
            "repro.hw.cache.CacheModel.reference",
            "repro.hw.clock.SimClock.advance",
            "repro.hw.clock.EventCounters.bump",
        ),
        warmup=512,
        calls=4096,
        note="resident 4 KiB page, TLB-warm: the certified floor",
    ),
    AllocOp(
        "access.tlb_miss_walk",
        _prep_access_tlb_miss_walk,
        certified=(
            "repro.hw.cpu.Cpu._translate",
            "repro.hw.tlb.Tlb.lookup",
            "repro.hw.tlb.Tlb.insert",
            "repro.paging.walker.PageWalker.walk",
        ),
        warmup=8704,  # two full 4096-page cycles + slack: TLB at capacity
        calls=4096,
        note="sequential miss cycle: walk + bounded refill, zero net",
    ),
    AllocOp(
        "control.allocfree_retaining",
        _prep_control_retaining,
        certified=("repro.lint.controls.control_allocfree_retaining",),
        warmup=64,
        calls=2048,
        expect_growth=True,
        note="planted control: statically certified, empirically leaky",
    ),
]


def ops_by_name(names: Optional[Sequence[str]] = None) -> List[AllocOp]:
    """The registry, optionally filtered to ``names`` (exact match)."""
    if not names:
        return list(ALLOC_OPS)
    known = {op.name: op for op in ALLOC_OPS}
    missing = [name for name in names if name not in known]
    if missing:
        raise KeyError(f"unknown alloc ops {missing}; known: {sorted(known)}")
    return [known[name] for name in names]


def run_allocfit(
    names: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[AllocFitResult]:
    """Run the registry (or the named subset) and return judged results."""
    results: List[AllocFitResult] = []
    for op in ops_by_name(names):
        result = run_alloc_op(op)
        if progress is not None:
            progress(result.format())
        results.append(result)
    return results
