"""Empirical complexity fitting on the simulated clock.

The simulator's clock is deterministic — running an operation twice at the
same operand size costs exactly the same nanoseconds — so complexity
fitting needs no statistics, only model selection.  Given measured
``(size, cost_ns)`` points at geometrically spaced sizes we fit, by least
squares, one two-parameter model per candidate class::

    CONSTANT       y = a
    LOG            y = a + b * log2(n)
    LINEAR         y = a + b * n
    LINEARITHMIC   y = a + b * n * log2(n)

and pick the class with the smallest residual, tie-breaking toward the
slowest-growing class (an O(1) fit should never lose to O(n) on equal
residuals).  Two guards keep the verdict honest:

* **span guard** — if max(cost)/min(cost) ≤ ``constant_span`` the costs
  are flat for all practical purposes and the verdict is CONSTANT
  outright; a 20%-total drift across a 64× size sweep is bookkeeping
  noise (pool warm-up, alignment), not growth.
* **negative-slope guard** — a fitted b ≤ 0 means cost *shrinks* with
  size; no growing class may claim that series.

The log-log slope (``exponent``) is reported alongside for human eyes:
~0 constant, ~1 linear, in between logarithmic flavours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.lint.decorators import ComplexityClass

#: max/min cost ratio at or below which a series is flat → CONSTANT.
DEFAULT_CONSTANT_SPAN = 1.3

_GROWTH: Dict[ComplexityClass, Callable[[float], float]] = {
    ComplexityClass.LOG: lambda n: math.log2(n),
    ComplexityClass.LINEAR: lambda n: n,
    ComplexityClass.LINEARITHMIC: lambda n: n * math.log2(n),
}


@dataclass(frozen=True)
class FitResult:
    """Model-selection verdict for one measured cost series."""

    fitted: ComplexityClass
    exponent: float
    span: float
    residuals: Dict[ComplexityClass, float]
    coefficients: Dict[ComplexityClass, Tuple[float, float]]

    def summary(self) -> str:
        return (
            f"fitted {self.fitted} (log-log slope {self.exponent:+.2f}, "
            f"cost span {self.span:.2f}x)"
        )


def _least_squares(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float, float]:
    """Fit y = a + b*x; return (a, b, sum of squared residuals)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        return mean_y, 0.0, sum((y - mean_y) ** 2 for y in ys)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    b = sxy / sxx
    a = mean_y - b * mean_x
    rss = sum((y - (a + b * x)) ** 2 for x, y in zip(xs, ys))
    return a, b, rss


def _normalized_rss(ys: Sequence[float], rss: float) -> float:
    """Residual sum of squares scaled by total variance, in [0, 1]-ish."""
    mean_y = sum(ys) / len(ys)
    tss = sum((y - mean_y) ** 2 for y in ys)
    if tss == 0.0:
        return 0.0
    return rss / tss


def loglog_slope(sizes: Sequence[int], costs: Sequence[float]) -> float:
    """Slope of log2(cost) vs log2(size) — the empirical exponent."""
    xs = [math.log2(n) for n in sizes]
    ys = [math.log2(max(c, 1e-9)) for c in costs]
    _, slope, _ = _least_squares(xs, ys)
    return slope


def fit_series(
    sizes: Sequence[int],
    costs: Sequence[float],
    *,
    constant_span: float = DEFAULT_CONSTANT_SPAN,
) -> FitResult:
    """Fit a measured cost series to its best-matching complexity class."""
    if len(sizes) != len(costs):
        raise ValueError("sizes and costs must have equal length")
    if len(sizes) < 3:
        raise ValueError("need at least 3 points to fit a complexity class")
    if any(n <= 0 for n in sizes):
        raise ValueError("operand sizes must be positive")
    if any(c < 0 for c in costs):
        raise ValueError("costs must be non-negative")

    lo, hi = min(costs), max(costs)
    span = hi / lo if lo > 0 else math.inf
    exponent = loglog_slope(sizes, costs)

    residuals: Dict[ComplexityClass, float] = {}
    coefficients: Dict[ComplexityClass, Tuple[float, float]] = {}

    # Constant model: y = mean, residual is the total variance ratio (1.0
    # by construction unless the series really is flat).
    ys = [float(c) for c in costs]
    mean_y = sum(ys) / len(ys)
    rss_const = sum((y - mean_y) ** 2 for y in ys)
    residuals[ComplexityClass.CONSTANT] = _normalized_rss(ys, rss_const)
    coefficients[ComplexityClass.CONSTANT] = (mean_y, 0.0)

    for klass, growth in _GROWTH.items():
        xs = [growth(float(n)) for n in sizes]
        a, b, rss = _least_squares(xs, ys)
        coefficients[klass] = (a, b)
        if b <= 0.0:
            # A growing class may not claim a flat or shrinking series.
            residuals[klass] = math.inf
        else:
            residuals[klass] = _normalized_rss(ys, rss)

    if span <= constant_span:
        fitted = ComplexityClass.CONSTANT
    else:
        # Smallest residual wins; ties go to the slowest-growing class.
        fitted = min(
            residuals, key=lambda k: (round(residuals[k], 9), k.order)
        )
    return FitResult(
        fitted=fitted,
        exponent=exponent,
        span=span,
        residuals=residuals,
        coefficients=coefficients,
    )


def geometric_sizes(lo: int, hi: int, *, factor: int = 2) -> List[int]:
    """Geometrically spaced operand sizes, inclusive of both endpoints."""
    if lo <= 0 or hi < lo or factor < 2:
        raise ValueError("need 0 < lo <= hi and factor >= 2")
    sizes = []
    n = lo
    while n < hi:
        sizes.append(n)
        n *= factor
    sizes.append(hi)
    return sizes
