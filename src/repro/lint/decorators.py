"""Complexity declarations: ``@o1`` and ``@complexity("log n")``.

A declaration is a *contract* about how an operation's simulated cost may
scale with its operand size (pages, frames, extents, entries — whatever
the function naturally consumes).  Both the AST linter and the empirical
fitter enforce the contract; the decorators themselves do no work at call
time — they set two attributes on the function object at import time and
record the declaration in a module-level registry, so decorating a hot
path costs nothing on the hot path (an O(1) checker must itself be O(1)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, TypeVar, overload

F = TypeVar("F", bound=Callable[..., object])

#: Attribute names set on declared functions; the AST linter matches the
#: decorators syntactically, these exist for runtime introspection.
ATTR_CLASS = "__complexity__"
ATTR_NOTE = "__complexity_note__"


class ComplexityClass(enum.Enum):
    """Asymptotic cost classes the checker can declare and fit."""

    CONSTANT = "1"
    LOG = "log n"
    LINEAR = "n"
    LINEARITHMIC = "n log n"

    def __str__(self) -> str:
        return f"O({self.value})"

    @property
    def order(self) -> int:
        """Rank for comparisons: lower grows slower."""
        return _ORDER[self]

    @classmethod
    def parse(cls, text: str) -> "ComplexityClass":
        """Parse a declaration string, accepting common spellings.

        >>> ComplexityClass.parse("O(1)") is ComplexityClass.CONSTANT
        True
        >>> ComplexityClass.parse("log n") is ComplexityClass.LOG
        True
        """
        key = text.strip().lower()
        if key.startswith("o(") and key.endswith(")"):
            key = key[2:-1].strip()
        try:
            return _ALIASES[key]
        except KeyError:
            raise ValueError(
                f"unknown complexity class {text!r}; "
                f"known: {sorted(set(_ALIASES))}"
            ) from None


_ORDER: Dict[ComplexityClass, int] = {
    ComplexityClass.CONSTANT: 0,
    ComplexityClass.LOG: 1,
    ComplexityClass.LINEAR: 2,
    ComplexityClass.LINEARITHMIC: 3,
}

_ALIASES: Dict[str, ComplexityClass] = {
    "1": ComplexityClass.CONSTANT,
    "constant": ComplexityClass.CONSTANT,
    "const": ComplexityClass.CONSTANT,
    "log": ComplexityClass.LOG,
    "log n": ComplexityClass.LOG,
    "logn": ComplexityClass.LOG,
    "logarithmic": ComplexityClass.LOG,
    "n": ComplexityClass.LINEAR,
    "linear": ComplexityClass.LINEAR,
    "n log n": ComplexityClass.LINEARITHMIC,
    "nlogn": ComplexityClass.LINEARITHMIC,
    "linearithmic": ComplexityClass.LINEARITHMIC,
}


@dataclass(frozen=True)
class Declaration:
    """One recorded complexity declaration."""

    module: str
    qualname: str
    declared: ComplexityClass
    note: str = ""

    @property
    def function(self) -> str:
        """Fully qualified dotted name, as the baseline file spells it."""
        return f"{self.module}.{self.qualname}"


#: Import-order registry of every declaration seen this process.
_REGISTRY: List[Declaration] = []


def _declare(func: F, declared: ComplexityClass, note: str) -> F:
    setattr(func, ATTR_CLASS, declared)
    setattr(func, ATTR_NOTE, note)
    _REGISTRY.append(
        Declaration(
            module=func.__module__,
            qualname=func.__qualname__,
            declared=declared,
            note=note,
        )
    )
    return func


@overload
def o1(func: F) -> F: ...


@overload
def o1(func: None = None, *, note: str = "") -> Callable[[F], F]: ...


def o1(
    func: Optional[F] = None, *, note: str = ""
) -> object:
    """Declare a function O(1) in its operand size.

    Usable bare (``@o1``) or with a note (``@o1(note="per extent")``).
    """
    if func is not None:
        return _declare(func, ComplexityClass.CONSTANT, note)

    def wrap(inner: F) -> F:
        return _declare(inner, ComplexityClass.CONSTANT, note)

    return wrap


def complexity(klass: str, *, note: str = "") -> Callable[[F], F]:
    """Declare a function's cost class, e.g. ``@complexity("log n")``.

    The class string is parsed eagerly so a typo fails at import time,
    not lint time.
    """
    parsed = ComplexityClass.parse(klass)

    def wrap(func: F) -> F:
        return _declare(func, parsed, note)

    return wrap


def declared_complexity(func: object) -> Optional[ComplexityClass]:
    """The declared class of ``func``, or None if undeclared."""
    value = getattr(func, ATTR_CLASS, None)
    return value if isinstance(value, ComplexityClass) else None


def iter_declarations() -> Iterator[Declaration]:
    """Every declaration registered by modules imported so far."""
    return iter(list(_REGISTRY))
