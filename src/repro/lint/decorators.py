"""Complexity and allocation declarations: ``@o1``, ``@complexity``,
``@allocfree`` and ``@allocbound``.

A declaration is a *contract*.  ``@o1`` / ``@complexity("log n")`` bound
how an operation's *simulated* cost may scale with its operand size
(pages, frames, extents, entries — whatever the function naturally
consumes).  ``@allocfree`` / ``@allocbound(n)`` bound how many
*Python-level allocations* the function may perform per call on the real
(wall-clock) hot loop — the orthogonal axis AllocSan
(:mod:`repro.lint.alloc`) checks statically and
:mod:`repro.lint.allocfit` cross-checks under ``tracemalloc``.

Both the AST linters and the empirical checkers enforce the contracts;
the decorators themselves do no work at call time — they set attributes
on the function object at import time and record the declaration in a
module-level registry, so decorating a hot path costs nothing on the hot
path (an O(1) checker must itself be O(1), and an allocation checker
must itself be allocation-free per call).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, TypeVar, overload

F = TypeVar("F", bound=Callable[..., object])

#: Attribute names set on declared functions; the AST linter matches the
#: decorators syntactically, these exist for runtime introspection.
ATTR_CLASS = "__complexity__"
ATTR_NOTE = "__complexity_note__"
#: Allocation-contract attributes (``@allocfree`` / ``@allocbound``).
ATTR_ALLOC = "__alloc_bound__"
ATTR_ALLOC_NOTE = "__alloc_note__"


class ComplexityClass(enum.Enum):
    """Asymptotic cost classes the checker can declare and fit."""

    CONSTANT = "1"
    LOG = "log n"
    LINEAR = "n"
    LINEARITHMIC = "n log n"

    def __str__(self) -> str:
        return f"O({self.value})"

    @property
    def order(self) -> int:
        """Rank for comparisons: lower grows slower."""
        return _ORDER[self]

    @classmethod
    def parse(cls, text: str) -> "ComplexityClass":
        """Parse a declaration string, accepting common spellings.

        >>> ComplexityClass.parse("O(1)") is ComplexityClass.CONSTANT
        True
        >>> ComplexityClass.parse("log n") is ComplexityClass.LOG
        True
        """
        key = text.strip().lower()
        if key.startswith("o(") and key.endswith(")"):
            key = key[2:-1].strip()
        try:
            return _ALIASES[key]
        except KeyError:
            raise ValueError(
                f"unknown complexity class {text!r}; "
                f"known: {sorted(set(_ALIASES))}"
            ) from None


_ORDER: Dict[ComplexityClass, int] = {
    ComplexityClass.CONSTANT: 0,
    ComplexityClass.LOG: 1,
    ComplexityClass.LINEAR: 2,
    ComplexityClass.LINEARITHMIC: 3,
}

_ALIASES: Dict[str, ComplexityClass] = {
    "1": ComplexityClass.CONSTANT,
    "constant": ComplexityClass.CONSTANT,
    "const": ComplexityClass.CONSTANT,
    "log": ComplexityClass.LOG,
    "log n": ComplexityClass.LOG,
    "logn": ComplexityClass.LOG,
    "logarithmic": ComplexityClass.LOG,
    "n": ComplexityClass.LINEAR,
    "linear": ComplexityClass.LINEAR,
    "n log n": ComplexityClass.LINEARITHMIC,
    "nlogn": ComplexityClass.LINEARITHMIC,
    "linearithmic": ComplexityClass.LINEARITHMIC,
}


@dataclass(frozen=True)
class Declaration:
    """One recorded complexity declaration."""

    module: str
    qualname: str
    declared: ComplexityClass
    note: str = ""

    @property
    def function(self) -> str:
        """Fully qualified dotted name, as the baseline file spells it."""
        return f"{self.module}.{self.qualname}"


#: Import-order registry of every declaration seen this process.
_REGISTRY: List[Declaration] = []


def _declare(func: F, declared: ComplexityClass, note: str) -> F:
    setattr(func, ATTR_CLASS, declared)
    setattr(func, ATTR_NOTE, note)
    _REGISTRY.append(
        Declaration(
            module=func.__module__,
            qualname=func.__qualname__,
            declared=declared,
            note=note,
        )
    )
    return func


@overload
def o1(func: F) -> F: ...


@overload
def o1(func: None = None, *, note: str = "") -> Callable[[F], F]: ...


def o1(
    func: Optional[F] = None, *, note: str = ""
) -> object:
    """Declare a function O(1) in its operand size.

    Usable bare (``@o1``) or with a note (``@o1(note="per extent")``).
    """
    if func is not None:
        return _declare(func, ComplexityClass.CONSTANT, note)

    def wrap(inner: F) -> F:
        return _declare(inner, ComplexityClass.CONSTANT, note)

    return wrap


def complexity(klass: str, *, note: str = "") -> Callable[[F], F]:
    """Declare a function's cost class, e.g. ``@complexity("log n")``.

    The class string is parsed eagerly so a typo fails at import time,
    not lint time.
    """
    parsed = ComplexityClass.parse(klass)

    def wrap(func: F) -> F:
        return _declare(func, parsed, note)

    return wrap


def declared_complexity(func: object) -> Optional[ComplexityClass]:
    """The declared class of ``func``, or None if undeclared."""
    value = getattr(func, ATTR_CLASS, None)
    return value if isinstance(value, ComplexityClass) else None


def iter_declarations() -> Iterator[Declaration]:
    """Every declaration registered by modules imported so far."""
    return iter(list(_REGISTRY))


# ---------------------------------------------------------------------------
# Allocation contracts: @allocfree / @allocbound(n)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AllocDeclaration:
    """One recorded allocation contract.

    ``bound`` is the number of Python-level allocations the function may
    perform per call at steady state: 0 for ``@allocfree``, a small
    constant for ``@allocbound(n)`` (n <= 0 means "bounded, count
    unspecified").
    """

    module: str
    qualname: str
    bound: int
    note: str = ""

    @property
    def function(self) -> str:
        """Fully qualified dotted name, as the baseline file spells it."""
        return f"{self.module}.{self.qualname}"

    @property
    def allocfree(self) -> bool:
        return self.bound == 0


#: Import-order registry of every allocation contract seen this process.
_ALLOC_REGISTRY: List[AllocDeclaration] = []


def _declare_alloc(func: F, bound: int, note: str) -> F:
    setattr(func, ATTR_ALLOC, bound)
    setattr(func, ATTR_ALLOC_NOTE, note)
    _ALLOC_REGISTRY.append(
        AllocDeclaration(
            module=func.__module__,
            qualname=func.__qualname__,
            bound=bound,
            note=note,
        )
    )
    return func


@overload
def allocfree(func: F) -> F: ...


@overload
def allocfree(func: None = None, *, note: str = "") -> Callable[[F], F]: ...


def allocfree(
    func: Optional[F] = None, *, note: str = ""
) -> object:
    """Declare a function allocation-free per call at steady state.

    Usable bare (``@allocfree``) or with a note.  Transient arithmetic
    boxing (CPython int objects) is outside the contract; Python-level
    allocation *shapes* — displays, comprehensions, f-strings, closures,
    materializing builtins — and net ``tracemalloc`` growth are not.
    """
    if func is not None:
        return _declare_alloc(func, 0, note)

    def wrap(inner: F) -> F:
        return _declare_alloc(inner, 0, note)

    return wrap


def allocbound(n: int = -1, *, note: str = "") -> Callable[[F], F]:
    """Declare a function's per-call allocations bounded by a constant.

    ``@allocbound(2)`` promises at most two allocations per call however
    large the operand; plain ``@allocbound()`` promises a constant bound
    without naming it.  The bound must not scale with operand size —
    per-element allocation needs no decorator, it needs fixing.
    """

    def wrap(func: F) -> F:
        return _declare_alloc(func, n, note)

    return wrap


def declared_alloc(func: object) -> Optional[AllocDeclaration]:
    """The allocation contract of ``func``, or None if undeclared."""
    bound = getattr(func, ATTR_ALLOC, None)
    if not isinstance(bound, int) or isinstance(bound, bool):
        return None
    return AllocDeclaration(
        module=getattr(func, "__module__", "?"),
        qualname=getattr(func, "__qualname__", "?"),
        bound=bound,
        note=str(getattr(func, ATTR_ALLOC_NOTE, "")),
    )


def iter_alloc_declarations() -> Iterator[AllocDeclaration]:
    """Every allocation contract registered by modules imported so far."""
    return iter(list(_ALLOC_REGISTRY))
