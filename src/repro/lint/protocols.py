"""Interprocedural must-call protocol checks on the call graph.

Two protocols, both the static twins of dynamic detectors:

**Stale translations** (TransSan's static half, ``flow-stale-translation``):
any path that mutates page-table state — ``unmap`` / ``protect`` /
``link_subtree`` / ``unlink_subtree`` / ``window_write_protect`` or a
direct ``wp_slots`` write — must reach a TLB/rTLB/premap invalidation
(``invalidate*`` / ``flush_asid`` / ``flush_all``) before control
returns to the syscall boundary.  Each function gets a gen/kill effect:
*gen* means "a mutation can still be pending on some path out of this
function", *kill* means "some path through this function invalidates".
Composition is sequential (a later kill clears an earlier gen); at a
branch, gen joins pessimistically (either arm may leave a mutation
pending) while kill joins optimistically — the rule hunts mutations
with *no possible* subsequent invalidation, which is exactly the shape
of a dropped-invalidate bug, without flagging every ``if cpu is not
None`` guard.  Early ``return`` paths carry their pending state to the
function's exit effect; exception exits are exempt (a fault delivery
aborts the translation anyway).

**Persist ordering** (PersistSan's static half,
``flow-persist-outside-txn``): a journal *apply* may only run once the
record describing it has been committed.  The intraprocedural rule only
sees commit and apply in the same body; here each function summarizes
whether it (maybe) commits and which applies can execute before any
commit, and a call composes the callee's pre-commit applies into the
caller unless the caller has already committed by the call site.
Findings are reported at protocol *roots* — entry points and functions
no one in the package calls — with the full chain down to the apply.

Inline escapes: ``# o1: allow(flow-stale-translation)`` on a mutation
site asserts no prior translation can exist (e.g. linking a subtree
into a hole); ``# o1: allow(flow-persist-outside-txn)`` on an apply
site asserts the record is known-committed (e.g. crash-recovery redo).
An apply allowed only for the *intra* rule still propagates — that is
how the flow pass catches the commit-lives-in-the-caller false negative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.astcheck import (
    _PERSIST_APPLY_ATTRS,
    _PERSIST_COMMIT_ATTR,
    RULE_PERSIST_OUTSIDE_TXN,
    _SCOPE_TYPES,
)
from repro.lint.callgraph import CallGraph, CallSite, FunctionNode
from repro.lint.summaries import Hop, strongly_connected

RULE_STALE_TRANSLATION = "flow-stale-translation"
RULE_FLOW_PERSIST = "flow-persist-outside-txn"

#: Page-table mutators that can leave a stale translation behind.
TLB_GEN_ATTRS = frozenset(
    {"unmap", "protect", "unlink_subtree", "link_subtree", "window_write_protect"}
)

#: Classes whose methods the gen set applies to when the call resolves;
#: unresolved calls fall back to the attribute name alone.
TLB_GEN_OWNERS = frozenset({"PageTable"})

#: Invalidation primitives (TLB, range-TLB, CPU fan-out, premap cache).
TLB_KILL_ATTRS = frozenset(
    {
        "invalidate",
        "invalidate_range",
        "invalidate_page",
        "invalidate_space_range",
        "invalidate_overlap",
        "flush_asid",
        "flush_all",
    }
)

_MAX_CHAIN = 12
_MAX_FIXPOINT_PASSES = 8


# ---------------------------------------------------------------------------
# Stale-translation effect lattice
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TlbEffect:
    """gen/kill summary of one function (or statement sequence)."""

    gen: bool = False
    kill: bool = False
    chain: Tuple[Hop, ...] = ()


_IDENTITY = TlbEffect()


def _compose(first: TlbEffect, second: TlbEffect) -> TlbEffect:
    gen = (first.gen and not second.kill) or second.gen
    if second.gen:
        chain = second.chain
    elif first.gen and not second.kill:
        chain = first.chain
    else:
        chain = ()
    return TlbEffect(gen=gen, kill=first.kill or second.kill, chain=chain)


def _join(first: TlbEffect, second: TlbEffect) -> TlbEffect:
    gen = first.gen or second.gen
    chain = first.chain if first.gen else second.chain
    return TlbEffect(gen=gen, kill=first.kill or second.kill, chain=chain)


def _join_all(effects: Sequence[TlbEffect]) -> TlbEffect:
    result = _IDENTITY
    for effect in effects:
        result = _join(result, effect)
    return result


class _TlbEvaluator:
    """Evaluates one function body against the current effect table."""

    def __init__(
        self,
        graph: CallGraph,
        func: FunctionNode,
        effects: Dict[str, TlbEffect],
        sites_by_node: Dict[int, CallSite],
    ) -> None:
        self.graph = graph
        self.func = func
        self.effects = effects
        self.sites = sites_by_node
        self.allowed = graph.allow_maps[func.path]
        self.exit_effect = _IDENTITY

    def run(self) -> TlbEffect:
        body_effect = self._sequence(self.func.node.body)
        return _join(self.exit_effect, body_effect)

    # -- structure -----------------------------------------------------
    def _sequence(self, body: Sequence[ast.stmt]) -> TlbEffect:
        acc = _IDENTITY
        for stmt in body:
            acc = self._statement(stmt, acc)
        return acc

    def _statement(self, stmt: ast.stmt, acc: TlbEffect) -> TlbEffect:
        if isinstance(stmt, _SCOPE_TYPES):
            return acc
        if isinstance(stmt, ast.Return):
            acc = _compose(acc, self._calls_in(stmt))
            self.exit_effect = _join(self.exit_effect, acc)
            return acc
        if isinstance(stmt, ast.Raise):
            # Exceptional exits are exempt: the fault path re-walks.
            return acc
        if isinstance(stmt, ast.If):
            acc = _compose(acc, self._calls_in_expr(stmt.test))
            branches = _join(
                self._sequence(stmt.body), self._sequence(stmt.orelse)
            )
            return _compose(acc, branches)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            acc = _compose(acc, self._calls_in_expr(stmt.iter))
            loop_body = _join(_IDENTITY, self._sequence(stmt.body))
            acc = _compose(acc, loop_body)
            return _compose(acc, self._sequence(stmt.orelse))
        if isinstance(stmt, ast.While):
            acc = _compose(acc, self._calls_in_expr(stmt.test))
            loop_body = _join(_IDENTITY, self._sequence(stmt.body))
            acc = _compose(acc, loop_body)
            return _compose(acc, self._sequence(stmt.orelse))
        if isinstance(stmt, ast.Try):
            acc = _compose(acc, self._sequence(stmt.body))
            handler_effects = [self._sequence(h.body) for h in stmt.handlers]
            acc = _compose(acc, _join_all([_IDENTITY, *handler_effects]))
            acc = _compose(acc, self._sequence(stmt.orelse))
            return _compose(acc, self._sequence(stmt.finalbody))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                acc = _compose(acc, self._calls_in_expr(item.context_expr))
            return _compose(acc, self._sequence(stmt.body))
        return _compose(acc, self._calls_in(stmt))

    # -- leaves --------------------------------------------------------
    def _calls_in(self, stmt: ast.stmt) -> TlbEffect:
        return self._calls_in_nodes(list(ast.iter_child_nodes(stmt)))

    def _calls_in_expr(self, expr: ast.expr) -> TlbEffect:
        return self._calls_in_nodes([expr])

    def _calls_in_nodes(self, roots: List[ast.AST]) -> TlbEffect:
        calls: List[ast.Call] = []
        stack = list(roots)
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_TYPES):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Call):
                calls.append(node)
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        acc = _IDENTITY
        for call in calls:
            acc = _compose(acc, self._call_effect(call))
        return acc

    def _call_effect(self, call: ast.Call) -> TlbEffect:
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
        if attr in TLB_KILL_ATTRS:
            return TlbEffect(kill=True)
        if attr is not None and self._is_wp_slots_write(call):
            return self._gen(call, "direct wp_slots write")
        site = self.sites.get(id(call))
        targets = site.targets if site is not None else ()
        if attr in TLB_GEN_ATTRS:
            if not targets or any(
                self._owner_name(t) in TLB_GEN_OWNERS for t in targets
            ):
                return self._gen(call, f"page-table mutation {site.raw if site else attr}")
        if targets:
            effect = _join_all(
                [self.effects.get(t, _IDENTITY) for t in targets]
            )
            if effect.gen and site is not None:
                hop = Hop(
                    fid=self.func.fid,
                    path=self.func.path,
                    line=call.lineno,
                    note=f"calls {site.raw}",
                )
                effect = TlbEffect(
                    gen=True,
                    kill=effect.kill,
                    chain=(hop, *effect.chain)[:_MAX_CHAIN],
                )
            return effect
        return _IDENTITY

    def _owner_name(self, fid: str) -> Optional[str]:
        node = self.graph.functions.get(fid)
        if node is None or node.owner is None:
            return None
        return node.owner.rsplit(".", 1)[-1]

    def _is_wp_slots_write(self, call: ast.Call) -> bool:
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in ("add", "discard")
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "wp_slots"
        )

    def _gen(self, call: ast.Call, detail: str) -> TlbEffect:
        if self.allowed.allow(
            (call.lineno, call.lineno - 1), RULE_STALE_TRANSLATION
        ):
            return _IDENTITY
        hop = Hop(
            fid=self.func.fid,
            path=self.func.path,
            line=call.lineno,
            note=detail,
        )
        return TlbEffect(gen=True, chain=(hop,))


# ---------------------------------------------------------------------------
# Persist-ordering effect
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PersistEffect:
    """Whether a function may commit, and which applies can pre-empt it."""

    commits: bool = False
    pre_applies: Tuple[Tuple[Hop, ...], ...] = ()


_P_IDENTITY = PersistEffect()


def _p_compose(first: PersistEffect, second: PersistEffect) -> PersistEffect:
    pre = first.pre_applies
    if not first.commits:
        pre = pre + second.pre_applies
    return PersistEffect(
        commits=first.commits or second.commits, pre_applies=pre
    )


def _p_join(first: PersistEffect, second: PersistEffect) -> PersistEffect:
    # Lenient commit join (matches the intra rule's line-order
    # heuristic): if either arm commits, later applies are considered
    # covered.  Pre-commit applies union pessimistically.
    return PersistEffect(
        commits=first.commits or second.commits,
        pre_applies=first.pre_applies + second.pre_applies,
    )


class _PersistEvaluator:
    def __init__(
        self,
        graph: CallGraph,
        func: FunctionNode,
        effects: Dict[str, PersistEffect],
        sites_by_node: Dict[int, CallSite],
    ) -> None:
        self.graph = graph
        self.func = func
        self.effects = effects
        self.sites = sites_by_node
        self.allowed = graph.allow_maps[func.path]

    def run(self) -> PersistEffect:
        return self._sequence(self.func.node.body)

    def _sequence(self, body: Sequence[ast.stmt]) -> PersistEffect:
        acc = _P_IDENTITY
        for stmt in body:
            acc = self._statement(stmt, acc)
        return acc

    def _statement(self, stmt: ast.stmt, acc: PersistEffect) -> PersistEffect:
        if isinstance(stmt, _SCOPE_TYPES):
            return acc
        if isinstance(stmt, ast.If):
            acc = _p_compose(acc, self._calls_in_expr(stmt.test))
            return _p_compose(
                acc, _p_join(self._sequence(stmt.body), self._sequence(stmt.orelse))
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            acc = _p_compose(acc, self._calls_in_expr(stmt.iter))
            body = self._sequence(stmt.body)
            acc = _p_compose(acc, _p_join(_P_IDENTITY, body))
            return _p_compose(acc, self._sequence(stmt.orelse))
        if isinstance(stmt, ast.While):
            acc = _p_compose(acc, self._calls_in_expr(stmt.test))
            body = self._sequence(stmt.body)
            acc = _p_compose(acc, _p_join(_P_IDENTITY, body))
            return _p_compose(acc, self._sequence(stmt.orelse))
        if isinstance(stmt, ast.Try):
            acc = _p_compose(acc, self._sequence(stmt.body))
            handler_effects = [self._sequence(h.body) for h in stmt.handlers]
            joined = _P_IDENTITY
            for effect in handler_effects:
                joined = _p_join(joined, effect)
            acc = _p_compose(acc, joined)
            acc = _p_compose(acc, self._sequence(stmt.orelse))
            return _p_compose(acc, self._sequence(stmt.finalbody))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                acc = _p_compose(acc, self._calls_in_expr(item.context_expr))
            return _p_compose(acc, self._sequence(stmt.body))
        return _p_compose(acc, self._calls_in_nodes(list(ast.iter_child_nodes(stmt))))

    def _calls_in_expr(self, expr: ast.expr) -> PersistEffect:
        return self._calls_in_nodes([expr])

    def _calls_in_nodes(self, roots: List[ast.AST]) -> PersistEffect:
        calls: List[ast.Call] = []
        stack = list(roots)
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_TYPES):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Call):
                calls.append(node)
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        acc = _P_IDENTITY
        for call in calls:
            acc = _p_compose(acc, self._call_effect(call))
        return acc

    def _call_effect(self, call: ast.Call) -> PersistEffect:
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
        if attr == _PERSIST_COMMIT_ATTR:
            return PersistEffect(commits=True)
        if attr in _PERSIST_APPLY_ATTRS:
            if self.allowed.allow(
                (call.lineno, call.lineno - 1), RULE_FLOW_PERSIST
            ):
                return _P_IDENTITY
            hop = Hop(
                fid=self.func.fid,
                path=self.func.path,
                line=call.lineno,
                note=f"journaled mutation {attr}()",
            )
            return PersistEffect(pre_applies=((hop,),))
        site = self.sites.get(id(call))
        if site is None or not site.targets:
            return _P_IDENTITY
        commits = False
        pre: List[Tuple[Hop, ...]] = []
        for target in site.targets:
            effect = self.effects.get(target, _P_IDENTITY)
            commits = commits or effect.commits
            for chain in effect.pre_applies:
                hop = Hop(
                    fid=self.func.fid,
                    path=self.func.path,
                    line=call.lineno,
                    note=f"calls {site.raw}",
                )
                pre.append(((hop, *chain))[:_MAX_CHAIN])
        return PersistEffect(commits=commits, pre_applies=tuple(pre))


# ---------------------------------------------------------------------------
# Fixpoint driver
# ---------------------------------------------------------------------------
@dataclass
class ProtocolResult:
    """Per-function effects for both protocols."""

    tlb: Dict[str, TlbEffect] = field(default_factory=dict)
    persist: Dict[str, PersistEffect] = field(default_factory=dict)
    callers: Dict[str, Set[str]] = field(default_factory=dict)


def _sites_by_node(graph: CallGraph, fid: str) -> Dict[int, CallSite]:
    return {id(site.node): site for site in graph.calls.get(fid, ())}


def compute_protocols(graph: CallGraph) -> ProtocolResult:
    """Evaluate both protocols to a fixpoint over the call graph."""
    result = ProtocolResult()
    edges: Dict[str, List[str]] = {}
    for fid in graph.functions:
        edges[fid] = [t for t in graph.callees(fid) if t in graph.functions]
        for target in edges[fid]:
            result.callers.setdefault(target, set()).add(fid)
    components = strongly_connected(list(graph.functions), edges)
    site_cache = {fid: _sites_by_node(graph, fid) for fid in graph.functions}
    for component in components:
        for _ in range(_MAX_FIXPOINT_PASSES):
            changed = False
            for fid in component:
                func = graph.functions[fid]
                tlb = _TlbEvaluator(
                    graph, func, result.tlb, site_cache[fid]
                ).run()
                persist = _PersistEvaluator(
                    graph, func, result.persist, site_cache[fid]
                ).run()
                if func.name in _PERSIST_APPLY_ATTRS:
                    # The apply implementations are the primitive, not a
                    # violation of it (mirrors the intra rule).
                    persist = PersistEffect(commits=persist.commits)
                if (
                    result.tlb.get(fid) != tlb
                    or result.persist.get(fid) != persist
                ):
                    changed = True
                result.tlb[fid] = tlb
                result.persist[fid] = persist
            if not changed:
                break
    return result


def persist_roots(graph: CallGraph, result: ProtocolResult) -> List[str]:
    """Functions no one in the package calls — where pre-commit applies
    surface as findings (plus anything explicitly marked an entry by the
    caller)."""
    return [
        fid
        for fid in graph.functions
        if not result.callers.get(fid)
    ]
