"""Checked-in suppression baseline for the Order(1) linter.

The baseline file (``src/repro/lint/o1_baseline.json``) records findings
that are understood and accepted — legacy paths that are O(n) by design
and can't carry an inline ``# o1: allow`` (for instance because the whole
function is the finding, not one loop).  Each entry pins a
``(function, rule)`` pair and must carry a human-readable ``reason``:

.. code-block:: json

    {
      "version": 1,
      "entries": [
        {
          "function": "repro.core.fom.manager.FirstOrderManager.grow_region",
          "rule": "o1-size-loop",
          "reason": "VMA-overlap scan is O(#vmas); ROADMAP open item."
        }
      ]
    }

Matching is exact on the dotted function name and the rule id.  Baseline
entries that no longer match any finding are reported as *stale* so the
file shrinks as paths get fixed — a baseline only ratchets down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Generic,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.lint.astcheck import ALL_RULES

DEFAULT_BASELINE = Path(__file__).with_name("o1_baseline.json")


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: a (function, rule) pair with a reason."""

    function: str
    rule: str
    reason: str

    @property
    def key(self) -> Tuple[str, str]:
        return (self.function, self.rule)


class Finding(Protocol):
    """Anything addressable by a (function, rule) baseline key.

    Both the intra-procedural :class:`~repro.lint.astcheck.Violation` and
    the interprocedural :class:`~repro.lint.flow.FlowFinding` satisfy it.
    """

    @property
    def function(self) -> str: ...

    @property
    def rule(self) -> str: ...


F = TypeVar("F", bound=Finding)


@dataclass
class BaselineOutcome(Generic[F]):
    """Findings partitioned against the baseline."""

    new: List[F]
    suppressed: List[F]
    stale: List[BaselineEntry]


def load_baseline(
    path: Path, known_rules: Optional[Sequence[str]] = None
) -> List[BaselineEntry]:
    """Parse a baseline file; a missing file is an empty baseline.

    ``known_rules`` is the vocabulary the file may use (defaults to the
    intra-procedural rule set; the flow baseline passes its own).
    """
    if known_rules is None:
        known_rules = ALL_RULES
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != 1:
        raise ValueError(f"{path}: unsupported baseline version {version!r}")
    entries: List[BaselineEntry] = []
    for raw in data.get("entries", []):
        entry = BaselineEntry(
            function=str(raw["function"]),
            rule=str(raw["rule"]),
            reason=str(raw.get("reason", "")),
        )
        if entry.rule not in known_rules:
            raise ValueError(f"{path}: unknown rule {entry.rule!r}")
        if not entry.reason.strip():
            raise ValueError(
                f"{path}: baseline entry for {entry.function} needs a reason"
            )
        entries.append(entry)
    return entries


def apply_baseline(
    violations: Sequence[F], entries: Sequence[BaselineEntry]
) -> BaselineOutcome[F]:
    """Split findings into new / baseline-suppressed, and spot stale entries."""
    by_key: Dict[Tuple[str, str], BaselineEntry] = {
        entry.key: entry for entry in entries
    }
    new: List[F] = []
    suppressed: List[F] = []
    used: Set[Tuple[str, str]] = set()
    for violation in violations:
        key = (violation.function, violation.rule)
        if key in by_key:
            suppressed.append(violation)
            used.add(key)
        else:
            new.append(violation)
    stale = [entry for entry in entries if entry.key not in used]
    return BaselineOutcome(new=new, suppressed=suppressed, stale=stale)
