"""Swap device: the disk-backed safety valve of the scarce-memory baseline.

The paper's persistence-management argument (§3.1/§4.1) is that with large
persistent memory "there will generally be no swapping to disk", so all
the machinery here — slot allocation, dirty-page writeback, major-fault
reads — simply disappears.  The device exists so the baseline reclaim
benches can pay realistic costs for what the O(1) design eliminates.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.errors import OutOfMemoryError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel


class SwapDevice:
    """Fixed-capacity page store with NVMe-class latencies."""

    def __init__(
        self,
        capacity_pages: int,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_pages}")
        self._capacity = capacity_pages
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._next_slot = 0
        self._free_slots: Set[int] = set()
        self._used: Set[int] = set()

    @property
    def capacity_pages(self) -> int:
        """Total slots on the device."""
        return self._capacity

    @property
    def used_slots(self) -> int:
        """Slots currently holding a page."""
        return len(self._used)

    def write_page(self) -> int:
        """Write one page out; returns its slot id."""
        if self._free_slots:
            slot = self._free_slots.pop()
        elif self._next_slot < self._capacity:
            slot = self._next_slot
            self._next_slot += 1
        else:
            raise OutOfMemoryError(
                f"swap device full ({self._capacity} pages)"
            )
        self._used.add(slot)
        self._clock.advance(self._costs.swap_write_page_ns)
        self._counters.bump("swap_out")
        return slot

    def read_page(self, slot: int) -> None:
        """Read one page back in (major fault); frees the slot."""
        if slot not in self._used:
            raise ValueError(f"swap slot {slot} holds no page")
        self._used.remove(slot)
        self._free_slots.add(slot)
        self._clock.advance(self._costs.swap_read_page_ns)
        self._counters.bump("swap_in")

    def free_slot(self, slot: int) -> None:
        """Discard a swapped page without reading it (process exit)."""
        if slot in self._used:
            self._used.remove(slot)
            self._free_slots.add(slot)
