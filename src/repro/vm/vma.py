"""Virtual memory areas and memory backings.

A :class:`Vma` describes one contiguous mapped region of an address space
(Linux's ``vm_area_struct``): extent, protection, flags, and the
:class:`MemoryBacking` that supplies physical frames for it.  Backings
abstract over anonymous memory, tmpfs page caches, and DAX extents so the
fault and populate paths are uniform — and so the file-only-memory design
can swap in extent-granularity backings without touching the VM core.

Adjacent-VMA merging is implemented because the paper explicitly names it
as an optimization that file-granularity management gives up ("Linux
merges adjacent memory regions when possible"); the FOM ablation measures
what that costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import MappingError
from repro.units import PAGE_SIZE


class Protection(enum.IntFlag):
    """Access permissions of a mapping (PROT_*)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()

    @classmethod
    def rw(cls) -> "Protection":
        """Convenience READ|WRITE."""
        return cls.READ | cls.WRITE


class MapFlags(enum.IntFlag):
    """mmap() behaviour flags (MAP_*)."""

    NONE = 0
    PRIVATE = enum.auto()
    SHARED = enum.auto()
    ANONYMOUS = enum.auto()
    #: Pre-populate all PTEs at map time — the linear-cost path of Fig 1a.
    POPULATE = enum.auto()
    #: Hint that huge pages may be used where alignment allows.
    HUGEPAGE = enum.auto()


@runtime_checkable
class MemoryBacking(Protocol):
    """Supplier of physical frames for a mapped region.

    All methods charge their own simulated costs.  ``page_index`` is
    relative to the backing object (file page number), not the VMA.
    """

    def frame_for(self, page_index: int, write: bool) -> int:
        """PFN backing ``page_index``, allocating/fetching if needed."""
        ...

    def frame_runs(self, start_page: int, npages: int) -> Iterator[Tuple[int, int, int]]:
        """(page_index, first_pfn, run_pages) runs covering the range.

        Extent-based backings return long runs (cheap to enumerate);
        page-cache backings return one run per page.
        """
        ...

    def release(self, page_index: int, npages: int) -> None:
        """Drop any per-mapping resources for the range (on munmap)."""
        ...


class AnonBacking:
    """Anonymous (demand-zero) memory, the MAP_ANONYMOUS baseline.

    Frames come from the buddy allocator one at a time and are zeroed on
    allocation — exactly the per-page work the paper wants amortized away.
    An optional zero pool turns the zeroing O(1); that path is used by the
    O(1) experiments, not the baseline.
    """

    def __init__(
        self, allocator, clock, costs, counters, zeropool=None, swap=None
    ) -> None:
        self._allocator = allocator
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._zeropool = zeropool
        self._swap = swap
        self._frames = {}
        #: page_index -> swap slot, for pages the reclaimer pushed out.
        self._swapped = {}
        #: Address spaces referencing this backing (fork shares it); the
        #: frames are freed only when the last user releases.
        self._users = 1

    def add_user(self) -> None:
        """Register another address space sharing these frames (fork)."""
        self._users += 1

    def frame_for(self, page_index: int, write: bool) -> int:
        pfn = self._frames.get(page_index)
        if pfn is not None:
            return pfn
        slot = self._swapped.pop(page_index, None)
        if slot is not None:
            # Major fault: bring the page back from the swap device.
            pfn = self._allocator.alloc(0)
            self._swap.read_page(slot)
            self._frames[page_index] = pfn
            return pfn
        if self._zeropool is not None:
            pfn = self._zeropool.take()
        else:
            pfn = self._allocator.alloc(0)
            self._clock.advance(self._costs.zero_page_ns(PAGE_SIZE))
        self._counters.bump("anon_page_alloc")
        self._frames[page_index] = pfn
        return pfn

    def resident_frame(self, page_index: int) -> Optional[int]:
        """The frame currently backing ``page_index``, if resident."""
        return self._frames.get(page_index)

    def swap_out(self, page_index: int) -> None:
        """Push one resident page to swap (dirty anon pages always write)."""
        pfn = self._frames.pop(page_index, None)
        if pfn is None:
            return
        if self._swap is None:
            # No swap device: the page's contents are simply dropped
            # (acceptable for benchmarks that never re-read evicted data).
            self._allocator.free(pfn)
            return
        slot = self._swap.write_page()
        self._swapped[page_index] = slot
        self._allocator.free(pfn)

    def frame_runs(self, start_page: int, npages: int) -> Iterator[Tuple[int, int, int]]:
        # Anonymous memory has no pre-existing frames: populate allocates
        # page by page, which is what makes MAP_POPULATE linear.
        for page_index in range(start_page, start_page + npages):
            yield page_index, self.frame_for(page_index, write=True), 1

    def release(self, page_index: int, npages: int) -> None:
        """Free the range's frames — unless another space still shares them.

        A shared backing defers *all* frees to :meth:`detach_user`: a
        partial unmap in one address space must not pull frames out from
        under the other (the fork-sharing bug the differential harness
        guards against).
        """
        if self._users > 1:
            return
        for index in range(page_index, page_index + npages):
            pfn = self._frames.pop(index, None)
            if pfn is not None:
                self._allocator.free(pfn)
            self._free_swap_slot(index)

    def release_extent(self, page_index: int, npages: int) -> None:
        """Extent-granularity :meth:`release`: one batched frame free.

        Walks the resident/swapped population rather than the page
        range: a sparsely touched extent costs its residency, not its
        span.
        """
        if self._users > 1:
            return
        end = page_index + npages
        doomed = [i for i in self._frames if page_index <= i < end]
        pfns = [self._frames.pop(i) for i in doomed]
        for index in [i for i in self._swapped if page_index <= i < end]:
            self._free_swap_slot(index)
        if pfns:
            self._allocator.free_many(pfns)

    def detach_user(self) -> None:
        """One address space dropped its whole mapping of this backing.

        When the last user detaches, any frames still resident (pages the
        departing spaces never individually released) are freed in one
        batch.
        """
        self._users -= 1
        if self._users > 0:
            return
        if self._frames:
            leftovers = list(self._frames.values())
            self._frames.clear()
            self._allocator.free_many(leftovers)
        for index in list(self._swapped):
            self._free_swap_slot(index)

    def _free_swap_slot(self, page_index: int) -> None:
        slot = self._swapped.pop(page_index, None)
        if slot is not None and self._swap is not None:
            self._swap.free_slot(slot)

    @property
    def resident_pages(self) -> int:
        """Pages currently backed by a frame."""
        return len(self._frames)


@dataclass
class Vma:
    """One mapped region ``[start, end)`` of an address space."""

    start: int
    end: int
    prot: Protection
    flags: MapFlags
    backing: MemoryBacking
    #: Page offset into the backing at which this VMA begins.
    backing_offset: int = 0
    name: str = ""
    #: page_index (backing-relative) -> private COW copy pfn.
    private_copies: dict = field(default_factory=dict)
    #: True after fork(): the backing's frames are shared copy-on-write
    #: with another address space, so writes must copy even for anon.
    cow_shared: bool = False

    def __post_init__(self) -> None:
        if self.start % PAGE_SIZE or self.end % PAGE_SIZE:
            raise MappingError(
                f"VMA [{self.start:#x}, {self.end:#x}) is not page-aligned"
            )
        if self.end <= self.start:
            raise MappingError(
                f"VMA end {self.end:#x} must be after start {self.start:#x}"
            )

    @property
    def length(self) -> int:
        """Bytes covered."""
        return self.end - self.start

    @property
    def page_count(self) -> int:
        """4 KiB pages covered."""
        return self.length // PAGE_SIZE

    def contains(self, vaddr: int) -> bool:
        """True if ``vaddr`` falls in this VMA."""
        return self.start <= vaddr < self.end

    def overlaps(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` intersects this VMA."""
        return self.start < end and start < self.end

    def backing_page(self, vaddr: int) -> int:
        """Backing-relative page index for ``vaddr``."""
        return self.backing_offset + (vaddr - self.start) // PAGE_SIZE

    def is_private(self) -> bool:
        """True for MAP_PRIVATE semantics (writes don't reach the backing)."""
        return bool(self.flags & MapFlags.PRIVATE)

    def needs_cow(self) -> bool:
        """True if stores must copy before writing.

        Private file mappings always COW; private anonymous memory COWs
        only after a fork made its frames shared.
        """
        if not self.is_private():
            return False
        if not self.flags & MapFlags.ANONYMOUS:
            return True
        return self.cow_shared

    def can_merge_with(self, other: "Vma") -> bool:
        """True if ``other`` directly follows and is mergeable.

        Linux merges when flags, protection and backing agree and file
        offsets are contiguous.
        """
        return (
            other.start == self.end
            and other.prot == self.prot
            and other.flags == self.flags
            and other.backing is self.backing
            and other.backing_offset == self.backing_offset + self.page_count
        )

    def merge_with(self, other: "Vma") -> None:
        """Absorb ``other`` (caller checked :meth:`can_merge_with`)."""
        if not self.can_merge_with(other):
            raise MappingError(f"cannot merge {self!r} with {other!r}")
        self.end = other.end
        self.private_copies.update(other.private_copies)

    def __repr__(self) -> str:
        return (
            f"Vma({self.name or 'anon'}: {self.start:#x}..{self.end:#x}, "
            f"prot={self.prot!r}, flags={self.flags!r})"
        )
