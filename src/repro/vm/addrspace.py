"""Address spaces: mmap/munmap/mprotect, demand faults, populate.

:class:`AddressSpace` is the simulator's ``mm_struct``.  It owns the VMA
list and the page table, implements the CPU's
:class:`~repro.hw.cpu.TranslationContext` protocol, and charges the
baseline's per-page costs exactly where Linux pays them:

* ``mmap(MAP_POPULATE)`` walks every page of the request, allocating a
  frame and writing a PTE for each — the linear curve of Figure 1a/6a;
* a demand fault pays trap + VMA lookup + allocation + accounting — the
  per-page cost whose total, Figure 1b/6b shows, exceeds 50x the populate
  path's;
* ``munmap`` and ``mprotect`` visit every mapped page.

The O(1) designs bypass these loops: file-only memory maps whole extents
(optionally as huge pages or linked subtrees), and range translations
attach a range table via :attr:`range_provider` so the CPU never walks at
all.
"""

from __future__ import annotations

import bisect
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MappingError, OutOfMemoryError, ProtectionError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.hw.rtlb import RangeEntry
from repro.hw.tlb import TlbEntry
from repro.lint import complexity, o1
from repro.mem.frame_meta import FrameTable, PageFlags
from repro.paging.fault import FaultType
from repro.paging.hugepages import SUPPORTED_PAGE_SIZES, choose_page_runs
from repro.paging.pagetable import PageTable, Pte
from repro.paging.walker import PageWalker
from repro.units import CACHE_LINE, PAGE_SIZE, align_up
from repro.vm.vma import MapFlags, MemoryBacking, Protection, Vma

#: Default base of the mmap area (x86-64 userland convention-ish).
_MMAP_BASE = 0x7F00_0000_0000


class AddressSpace:
    """One process's virtual address space."""

    def __init__(
        self,
        asid: int,
        page_table: PageTable,
        walker: PageWalker,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
        frame_table: Optional[FrameTable] = None,
        mmap_base: int = _MMAP_BASE,
    ) -> None:
        self._asid = asid
        self._pt = page_table
        self._walker = walker
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._frame_table = frame_table
        self._vmas: List[Vma] = []  # sorted by start
        self._starts: List[int] = []
        self._mmap_cursor = mmap_base
        #: Optional architectural range table (set by core.rangetrans).
        self.range_provider: Optional[Callable[[int], Optional[RangeEntry]]] = None
        #: Optional CPU back-reference for TLB maintenance on unmap.
        self.cpu = None
        #: "page" (per-PTE teardown, the baseline) or "extent" (whole
        #: PTE-subtree drops); the kernel sets this from its config.
        self.munmap_policy = "page"
        #: Optional LRU registry for the reclaim baseline.
        self.lru = None
        # o1: allow(o1-size-loop) -- FaultType is a fixed enum, not operand data
        self.fault_stats: Dict[FaultType, int] = {kind: 0 for kind in FaultType}

    # ------------------------------------------------------------------
    # TranslationContext protocol
    # ------------------------------------------------------------------
    @property
    def asid(self) -> int:
        """Address-space identifier tagging TLB entries."""
        return self._asid

    @property
    def page_table(self) -> PageTable:
        """The backing page-table tree."""
        return self._pt

    @property
    def vmas(self) -> List[Vma]:
        """All VMAs, sorted by start address."""
        return list(self._vmas)

    def walk(self, vaddr: int) -> Optional[TlbEntry]:
        """Hardware walk of this space's page table (costs charged)."""
        return self._walker.walk(self._pt, vaddr, asid=self._asid)

    def lookup_range(self, vaddr: int) -> Optional[RangeEntry]:
        """Architectural range-table lookup, if range hardware is wired."""
        if self.range_provider is None:
            return None
        return self.range_provider(vaddr)

    # ------------------------------------------------------------------
    # VMA bookkeeping
    # ------------------------------------------------------------------
    def find_vma(self, vaddr: int) -> Optional[Vma]:
        """VMA containing ``vaddr`` (no cost charged — internal)."""
        index = bisect.bisect_right(self._starts, vaddr) - 1
        if index >= 0 and self._vmas[index].contains(vaddr):
            return self._vmas[index]
        return None

    def range_is_free(self, start: int, end: int) -> bool:
        """True if no VMA overlaps ``[start, end)``.

        Two sorted-bound probes — the predecessor (last VMA starting at
        or before ``start``) and its successor — decide the question,
        because ``_vmas`` is kept sorted and non-overlapping; no scan of
        the VMA list is needed (no cost charged — internal).
        """
        index = bisect.bisect_right(self._starts, start) - 1
        if index >= 0 and self._vmas[index].end > start:
            return False
        if index + 1 < len(self._vmas) and self._vmas[index + 1].start < end:
            return False
        return True

    @o1(note="sorted-neighbour probes; no scan of the VMA list")
    def _insert_vma(self, vma: Vma) -> Vma:
        """Insert, merging with neighbours when Linux would.

        Because ``_vmas`` is sorted and non-overlapping, only the
        predecessor and successor of the insertion point can conflict
        with (or merge into) the new VMA — two probes replace the old
        whole-list overlap scan.
        """
        self._clock.advance(self._costs.vma_insert_ns)
        self._counters.bump("vma_insert")
        index = bisect.bisect_left(self._starts, vma.start)
        if index > 0 and self._vmas[index - 1].end > vma.start:
            raise MappingError(
                f"{vma!r} overlaps existing {self._vmas[index - 1]!r}"
            )
        if index < len(self._vmas) and self._vmas[index].start < vma.end:
            raise MappingError(
                f"{vma!r} overlaps existing {self._vmas[index]!r}"
            )
        # Merge with predecessor / successor when compatible.
        if index > 0 and self._vmas[index - 1].can_merge_with(vma):
            prev = self._vmas[index - 1]
            prev.merge_with(vma)
            self._counters.bump("vma_merge")
            vma = prev
            index -= 1
        else:
            self._vmas.insert(index, vma)
            self._starts.insert(index, vma.start)
        if index + 1 < len(self._vmas) and vma.can_merge_with(self._vmas[index + 1]):
            nxt = self._vmas.pop(index + 1)
            self._starts.pop(index + 1)
            vma.merge_with(nxt)
            self._counters.bump("vma_merge")
        return vma

    def _remove_vma(self, vma: Vma) -> None:
        self._clock.advance(self._costs.vma_remove_ns)
        self._counters.bump("vma_remove")
        index = self._vmas.index(vma)
        self._vmas.pop(index)
        self._starts.pop(index)

    def pick_address(self, length: int, alignment: int = PAGE_SIZE) -> int:
        """Reserve a fresh virtual range for a mapping (bump allocator)."""
        addr = align_up(self._mmap_cursor, alignment)
        self._mmap_cursor = addr + align_up(length, PAGE_SIZE)
        return addr

    # ------------------------------------------------------------------
    # mmap / munmap / mprotect
    # ------------------------------------------------------------------
    @o1(note="constant map cost; MAP_POPULATE opts into the linear fill")
    def mmap(
        self,
        length: int,
        prot: Protection,
        flags: MapFlags,
        backing: MemoryBacking,
        addr: Optional[int] = None,
        backing_offset: int = 0,
        name: str = "",
        align: int = PAGE_SIZE,
    ) -> Vma:
        """Create a mapping; with MAP_POPULATE, pre-fill every PTE.

        Charges the constant mmap cost always, plus the linear populate
        loop when requested.  Returns the (possibly merged) VMA.
        """
        if length <= 0:
            raise MappingError(f"mmap length must be positive, got {length}")
        length = align_up(length, PAGE_SIZE)
        if addr is None:
            addr = self.pick_address(length, align)
        self._clock.advance(self._costs.mmap_lock_ns + self._costs.mmap_base_ns)
        self._counters.bump("mmap_call")
        vma = Vma(
            start=addr,
            end=addr + length,
            prot=prot,
            flags=flags,
            backing=backing,
            backing_offset=backing_offset,
            name=name,
        )
        vma = self._insert_vma(vma)
        if flags & MapFlags.POPULATE:
            # o1: allow(flow-bounded) -- MAP_POPULATE is explicit caller opt-in to the linear fill
            self.populate(addr, length)
        return vma

    @complexity("n", note="one PTE write per page — the baseline's linear curve")
    def populate(self, addr: int, length: int) -> int:
        """Pre-fault ``[addr, addr+length)``; returns PTEs written.

        The baseline linear loop: one frame lookup/allocation, one
        metadata touch, and one PTE write per 4 KiB page (or fewer with
        huge pages when the VMA allows them and alignment cooperates).
        """
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin(
                "populate", "vm", args={"addr": hex(addr), "length": length}
            )
            try:
                return self._populate(addr, length)
            finally:
                tracer.end()
        return self._populate(addr, length)

    @complexity("n", note="one frame run, PTE write, and metadata touch per page")
    def _populate(self, addr: int, length: int) -> int:
        vma = self.find_vma(addr)
        if vma is None or addr + length > vma.end:
            raise MappingError(
                f"populate range {addr:#x}+{length:#x} not covered by one VMA"
            )
        first_page = vma.backing_page(addr)
        npages = length // PAGE_SIZE
        allow_huge = bool(vma.flags & MapFlags.HUGEPAGE)
        writable = self._map_writable(vma)
        written = 0
        for page_index, first_pfn, run_pages in vma.backing.frame_runs(
            first_page, npages
        ):
            run_va = vma.start + (page_index - vma.backing_offset) * PAGE_SIZE
            run_pa = first_pfn * PAGE_SIZE
            sizes = SUPPORTED_PAGE_SIZES if allow_huge else (PAGE_SIZE,)
            # o1: allow(flow-bounded) -- the runs partition the declared n pages
            runs = choose_page_runs(
                run_va, run_pa, run_pages * PAGE_SIZE, allowed=sizes
            )
            # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- runs partition the declared n pages
            for va, pa, size in runs:
                self._pt.map(va, pa // size, page_size=size, writable=writable)
                self._clock.advance(self._costs.populate_page_ns)
                written += 1
            # Per-4KiB-frame metadata updates: the baseline pays these
            # regardless of mapping granularity (mapcount, flags).  DAX
            # backings opt out — their frames have no struct page.
            if self._frame_table is not None and getattr(
                vma.backing, "tracks_frame_meta", True
            ):
                # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- frames of one run; runs partition the declared n
                for pfn in range(first_pfn, first_pfn + run_pages):
                    meta = self._frame_table.get_ref(pfn)
                    meta.mapcount += 1
        self._counters.bump("populate_pages", npages)
        return written

    def _map_writable(self, vma: Vma) -> bool:
        """Whether PTEs for this VMA are installed writable.

        COW mappings (private file maps, fork-shared anon) start
        read-only so stores trap and copy; everything else follows the
        VMA protection.
        """
        if not vma.prot & Protection.WRITE:
            return False
        if vma.needs_cow():
            return False
        return True

    @complexity("n", note="per-PTE baseline; extent policy pays per window instead")
    def munmap(self, addr: int, length: int) -> int:
        """Unmap ``[addr, addr+length)``; returns pages unmapped.

        Only whole-VMA and prefix/suffix unmaps are supported (enough for
        every path in the paper); a mid-VMA hole raises.
        """
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin(
                "munmap", "vm", args={"addr": hex(addr), "length": length}
            )
            try:
                return self._munmap(addr, length)
            finally:
                tracer.end()
        return self._munmap(addr, length)

    @complexity("n", note="teardown of every page (or window) the cut covers")
    def _munmap(self, addr: int, length: int) -> int:
        length = align_up(length, PAGE_SIZE)
        end = addr + length
        self._clock.advance(self._costs.mmap_lock_ns)
        self._counters.bump("munmap_call")
        unmapped = 0
        # The overlapping VMAs form one contiguous run of the sorted
        # list: bisect its bounds instead of scanning every VMA.
        first = bisect.bisect_right(self._starts, addr) - 1
        if first < 0 or self._vmas[first].end <= addr:
            first += 1
        last = bisect.bisect_left(self._starts, end)
        # o1: allow(o1-size-loop) -- the overlapped VMAs partition the declared n pages
        for vma in self._vmas[first:last]:
            if addr > vma.start and end < vma.end:
                raise MappingError(
                    "punching a hole inside a VMA is not supported; unmap "
                    "the whole VMA or a prefix/suffix"
                )
            cut_start = max(addr, vma.start)
            cut_end = min(end, vma.end)
            unmapped += self._unmap_vma_range(vma, cut_start, cut_end)
        if self.cpu is not None:
            self.cpu.invalidate_space_range(addr, length, asid=self._asid)
        return unmapped

    @complexity("n", note="page (or window) teardown plus COW-copy returns")
    def _unmap_vma_range(self, vma: Vma, start: int, end: int) -> int:
        """Tear down PTEs and backing for ``[start, end)`` of ``vma``."""
        extent = self.munmap_policy == "extent"
        if extent:
            pages = self._teardown_extent(vma, start, end)
        else:
            pages = self._teardown_pages(vma, start, end)
        first_page = vma.backing_page(start)
        npages = (end - start) // PAGE_SIZE
        release_extent = getattr(vma.backing, "release_extent", None)
        if extent and release_extent is not None:
            release_extent(first_page, npages)
        else:
            vma.backing.release(first_page, npages)
        # COW copies for the range were order-0 frames the VMA owns;
        # return them to their allocator so they do not leak.
        allocator = getattr(vma.backing, "_allocator", None)
        # o1: allow(o1-size-loop) -- one pop per private copy in the cut, within the declared n
        doomed = [
            vma.private_copies.pop(page_index)
            for page_index in list(vma.private_copies)
            if first_page <= page_index < first_page + npages
        ]
        if doomed and allocator is not None:
            free_many = getattr(allocator, "free_many", None)
            if extent and free_many is not None:
                free_many(doomed)
            else:
                for pfn in doomed:
                    allocator.free(pfn)
        # Adjust or remove the VMA itself.
        if start == vma.start and end == vma.end:
            self._remove_vma(vma)
            detach = getattr(vma.backing, "detach_user", None)
            if detach is not None:
                detach()
        elif start == vma.start:
            index = self._vmas.index(vma)
            vma.start = end
            vma.backing_offset = first_page + npages
            self._starts[index] = end
        else:  # suffix
            vma.end = start
        return pages

    @complexity("n", note="one PTE visit per page — the baseline's linear loop")
    def _teardown_pages(self, vma: Vma, start: int, end: int) -> int:
        """Per-PTE teardown — the baseline's linear loop."""
        tracks_meta = getattr(vma.backing, "tracks_frame_meta", True)
        pages = 0
        va = start
        while va < end:
            pte = self._pt.lookup(va)
            if pte is not None:
                page_base = va - va % pte.page_size
                self._pt.unmap(page_base, page_size=pte.page_size)
                if self._frame_table is not None and tracks_meta:
                    # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- 4 KiB frames of one PTE; pages partition the declared n
                    for pfn4k in range(
                        pte.paddr // PAGE_SIZE,
                        (pte.paddr + pte.page_size) // PAGE_SIZE,
                    ):
                        meta = self._frame_table.touch(pfn4k)
                        meta.mapcount = max(0, meta.mapcount - 1)
                        if meta.refcount:
                            meta.refcount -= 1
                va = page_base + pte.page_size
                pages += pte.page_size // PAGE_SIZE
            else:
                va += PAGE_SIZE
        return pages

    @complexity("n", note="one pointer drop per window; packed windows fall back per-PTE")
    def _teardown_extent(self, vma: Vma, start: int, end: int) -> int:
        """Extent-granularity teardown: drop whole bottom-level subtrees.

        A 2 MiB window is droppable with one pointer clear when the cut
        covers everything this VMA maps inside it and no other VMA lives
        in the window.  Windows failing the test (VMA boundaries packed
        together by the bump allocator) fall back to the per-PTE loop,
        bounded by the fixed window span — so a whole-VMA unmap costs
        O(windows dropped), not O(pages resident).  Per-4KiB struct-page
        bookkeeping is skipped on dropped windows: that churn is exactly
        the linear cost the paper's extent design eliminates.
        """
        bottom = self._pt.bottom_depth
        window_span = self._pt.span_at(bottom - 1)
        dead_nodes: List[int] = []
        pages = 0
        window_va = start - start % window_span
        while window_va < end:
            window_end = window_va + window_span
            if not self._window_droppable(vma, window_va, window_end, start, end):
                # o1: allow(flow-bounded) -- fallback is capped by the fixed window span
                pages += self._teardown_pages(
                    vma, max(start, window_va), min(end, window_end)
                )
                window_va = window_end
                continue
            leaf = self._pt.lookup(window_va)
            if leaf is not None and leaf.page_size >= window_span:
                # A huge leaf covers the window (and possibly more): one
                # unmap at its base; later windows it spans see None.
                base = window_va - window_va % leaf.page_size
                if base == window_va:
                    self._pt.unmap(base, page_size=leaf.page_size)
                    pages += leaf.page_size // PAGE_SIZE
            else:
                entry = self._pt.subtree_at(window_va, bottom)
                if entry is not None:
                    # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- one fixed 512-entry node
                    pages += sum(
                        e.page_size // PAGE_SIZE
                        for e in entry.entries.values()
                        if isinstance(e, Pte)
                    )
                    node = self._pt.unlink_subtree(window_va, bottom)
                    if node.refs <= 0:
                        pfn = self._pt.node_frame_pfn(node)
                        if pfn is not None:
                            dead_nodes.append(pfn)
            window_va = window_end
        self._pt.sink_node_frames(dead_nodes)
        return pages

    @o1(note="sorted-neighbour probes decide the window, no VMA scan")
    def _window_droppable(
        self, vma: Vma, window_va: int, window_end: int, start: int, end: int
    ) -> bool:
        """True when the whole window's subtree may be unlinked at once."""
        # Everything this VMA maps in the window must be inside the cut.
        if max(window_va, vma.start) < start or min(window_end, vma.end) > end:
            return False
        # No other VMA may have translations in the window.
        index = bisect.bisect_right(self._starts, window_va) - 1
        if index >= 0:
            prev = self._vmas[index]
            if prev is not vma and prev.end > window_va:
                return False
        # ``vma`` appears at most once among the successors, so the first
        # two starting before window_end decide the question — no scan.
        # o1: allow(o1-size-loop) -- two-element slice of the sorted VMA list
        for probe in self._vmas[index + 1 : index + 3]:
            if probe.start >= window_end:
                break
            if probe is not vma:
                return False
        return True

    @o1(note="one ordered VMA insert; fork duplicates per-VMA, not per-page")
    def adopt_vma(self, vma: Vma) -> Vma:
        """Insert an externally built VMA (the fork duplication path).

        Charges the VMA insertion like any mapping, but skips the mmap
        syscall constants — fork duplicates in-kernel.  Advances the
        mmap cursor past the adopted range so later mmaps in the child
        don't collide with inherited mappings.
        """
        self._mmap_cursor = max(self._mmap_cursor, vma.end)
        return self._insert_vma(vma)

    @o1(note="one VMA removal and one range invalidation — the O(1) unmap")
    def detach_vma(self, vma: Vma) -> None:
        """Remove a VMA *without* per-page PTE teardown.

        The O(1) unmap path: regions whose translations live in shared
        subtrees or range tables are detached by their owner (file-only
        memory, PBM, range manager), which unlinks the one pointer / RTE
        itself; the per-page loop of :meth:`munmap` never runs.
        """
        self._remove_vma(vma)
        if self.cpu is not None:
            self.cpu.invalidate_space_range(vma.start, vma.length, asid=self._asid)

    @complexity("n", note="rewrites every resident PTE of the VMA")
    def mprotect(self, addr: int, length: int, prot: Protection) -> None:
        """Change protection; rewrites every resident PTE (linear)."""
        length = align_up(length, PAGE_SIZE)
        vma = self.find_vma(addr)
        if vma is None or addr + length > vma.end:
            raise MappingError(
                f"mprotect range {addr:#x}+{length:#x} not covered by one VMA"
            )
        if addr != vma.start or length != vma.length:
            raise MappingError("partial-VMA mprotect is not supported")
        self._clock.advance(self._costs.mmap_lock_ns)
        vma.prot = prot
        writable = self._map_writable(vma)
        va = vma.start
        while va < vma.end:
            pte = self._pt.lookup(va)
            if pte is not None:
                base = va - va % pte.page_size
                self._pt.protect(base, writable=writable, page_size=pte.page_size)
                va = base + pte.page_size
            else:
                va += PAGE_SIZE
        if self.cpu is not None:
            self.cpu.invalidate_space_range(vma.start, vma.length, asid=self._asid)

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def handle_fault(self, vaddr: int, write: bool) -> None:
        """Resolve a page fault at ``vaddr`` or raise ProtectionError."""
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin("fault_handle", "fault")
            try:
                return self._handle_fault(vaddr, write)
            finally:
                tracer.end()
        return self._handle_fault(vaddr, write)

    def _handle_fault(self, vaddr: int, write: bool) -> None:
        self._clock.advance(self._costs.vma_find_ns)
        vma = self.find_vma(vaddr)
        if vma is None:
            raise ProtectionError(f"segfault: {vaddr:#x} maps no VMA")
        if write and not vma.prot & Protection.WRITE:
            raise ProtectionError(f"write to read-only mapping at {vaddr:#x}")
        if not write and not vma.prot & Protection.READ:
            raise ProtectionError(f"read from PROT_NONE mapping at {vaddr:#x}")
        page_va = vaddr - vaddr % PAGE_SIZE
        if write and self._pt.path_write_protected(page_va):
            # First store into a fork-shared page-table window: break the
            # share once, for the whole window, charged to this access.
            self._cow_break_window(page_va)
        existing = self._pt.lookup(page_va)
        if existing is not None and write and not existing.writable:
            self._cow_fault(vma, page_va)
            return
        if existing is not None:
            return  # spurious — translation already valid
        self._minor_fault(vma, page_va, write)

    def _cow_break_window(self, page_va: int) -> None:
        """Privatize the fork-shared window containing ``page_va``.

        The COW fork installed one write-protected pointer per 2 MiB
        window instead of per-PTE copies.  The first write into such a
        window (a) clones the shared bottom-level node so this space owns
        its slice, (b) downgrades the raw writable bit on every leaf a
        COW VMA covers (so the per-page COW machinery sees them exactly
        as the eager fork would have left them), and (c) clears the slot
        write-protect.  All three steps are bounded by the fixed window
        span — O(1) in mapping size.  The leaf downgrades are free on the
        clock: the privatizing node copy already wrote the whole node.
        """
        window_span = self._pt.span_at(self._pt.bottom_depth - 1)
        window_va = page_va - page_va % window_span
        node = self._pt.privatize_window(page_va)
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None:
            # Torn point: node privatized (refcounts consistent) but the
            # write-protect bit and leaf downgrades are still pending.
            chaos.hit("vm.cow_break")
        if node is not None:
            for index, entry in list(node.entries.items()):
                if not isinstance(entry, Pte) or not entry.writable:
                    continue
                leaf_va = window_va + index * PAGE_SIZE
                leaf_vma = self.find_vma(leaf_va)
                if leaf_vma is not None and leaf_vma.needs_cow():
                    node.entries[index] = replace(entry, writable=False)
        self._pt.window_write_protect(window_va, protect=False)
        self._counters.bump("cow_break")

    def _minor_fault(self, vma: Vma, page_va: int, write: bool) -> None:
        self._clock.advance(self._costs.fault_accounting_ns)
        page_index = vma.backing_page(page_va)
        pfn = vma.private_copies.get(page_index)
        major = False
        if pfn is None:
            before = self._counters.get("swap_in")
            pfn = vma.backing.frame_for(page_index, write=write)
            major = self._counters.get("swap_in") > before
        writable = self._map_writable(vma) or page_index in vma.private_copies
        if write and vma.needs_cow():
            # Write fault on a COW page (private file / forked anon):
            # copy immediately rather than mapping read-only and
            # re-faulting.
            pfn = self._make_private_copy(vma, page_index, pfn)
            writable = True
        self._pt.map(page_va, pfn, writable=writable)
        if self._frame_table is not None and getattr(
            vma.backing, "tracks_frame_meta", True
        ):
            meta = self._frame_table.get_ref(pfn)
            meta.mapcount += 1
            meta.set_flag(PageFlags.REFERENCED)
        if self.lru is not None:
            self.lru.page_mapped(pfn, self, page_va)
        kind = FaultType.MAJOR if major else FaultType.MINOR
        self.fault_stats[kind] += 1
        self._counters.bump(kind.counter_name)

    def _cow_fault(self, vma: Vma, page_va: int) -> None:
        if not vma.is_private():
            raise ProtectionError(
                f"write to read-only shared mapping at {page_va:#x}"
            )
        page_index = vma.backing_page(page_va)
        old = self._pt.lookup(page_va)
        assert old is not None
        new_pfn = self._make_private_copy(vma, page_index, old.pfn)
        self._pt.unmap(page_va)
        self._pt.map(page_va, new_pfn, writable=True)
        if self._frame_table is not None:
            self._frame_table.get_ref(new_pfn)
        self.fault_stats[FaultType.COW] += 1
        self._counters.bump(FaultType.COW.counter_name)

    def _make_private_copy(self, vma: Vma, page_index: int, src_pfn: int) -> int:
        """Allocate and fill a private copy of a backing page."""
        existing = vma.private_copies.get(page_index)
        if existing is not None:
            return existing
        allocator = getattr(vma.backing, "_allocator", None)
        if allocator is None:
            raise MappingError(
                "COW on a backing without an allocator; map MAP_SHARED or "
                "provide an allocator-backed mapping"
            )
        new_pfn = allocator.alloc(0)
        lines = PAGE_SIZE // CACHE_LINE
        self._clock.advance(self._costs.copy_line_ns * lines * 2)
        self._counters.bump("cow_copy")
        vma.private_copies[page_index] = new_pfn
        return new_pfn

    # ------------------------------------------------------------------
    # Eviction (used by the reclaim baseline)
    # ------------------------------------------------------------------
    def evict_page(self, vaddr: int) -> bool:
        """Unmap one resident page so its frame can be reclaimed.

        Returns False if the page was not resident.  The backing decides
        whether eviction needs a swap write (dirty anon) or is free
        (clean file page).
        """
        page_va = vaddr - vaddr % PAGE_SIZE
        pte = self._pt.lookup(page_va)
        if pte is None:
            return False
        vma = self.find_vma(page_va)
        if not self._evictable(vma, page_va, pte):
            # A COW-shared translation (fork's subtree sharing) is pinned:
            # unmapping here would privatize only this table's path while
            # the sibling keeps a live PTE to the frame swap-out is about
            # to free — a cross-space dangling translation.  Without a
            # reverse map the share cannot be broken from this side, so
            # the page waits until a write fault breaks the share (or a
            # sharer exits).
            self._counters.bump("vm_evict_pinned")
            return False
        self._pt.unmap(page_va, page_size=pte.page_size)
        if self.cpu is not None:
            self.cpu.invalidate_page(page_va, asid=self._asid)
        if vma is not None:
            backing = vma.backing
            swap_out = getattr(backing, "swap_out", None)
            if swap_out is not None:
                page_index = vma.backing_page(page_va)
                resident = getattr(backing, "resident_frame", None)
                if resident is None or resident(page_index) == pte.pfn:
                    # Only write back the frame we actually unmapped: a
                    # private COW copy must not push out (and free) the
                    # backing's original, possibly still-mapped frame.
                    swap_out(page_index)
        self._counters.bump("vm_page_evict")
        return True

    @o1(note="one fixed-depth probe plus refcount checks")
    def _evictable(self, vma, page_va: int, pte) -> bool:
        """Whether this page can be reclaimed from this space alone."""
        if self._pt.path_shared(page_va):
            return False
        if vma is None:
            return True
        backing = vma.backing
        if getattr(backing, "_users", 1) > 1:
            # The backing (anon frames after a COW fork) is shared: the
            # frame may be mapped by a sibling space whose page table we
            # cannot reach from here.
            page_index = vma.backing_page(page_va)
            if vma.private_copies.get(page_index) != pte.pfn:
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @complexity("n", note="one pass over the live leaves; introspection only")
    def resident_pages(self) -> int:
        """Number of 4 KiB pages with live translations."""
        # o1: allow(flow-bounded) -- the leaves are the declared n, visited once
        return sum(
            pte.page_size // PAGE_SIZE for _, pte in self._pt.iter_leaves()
        )

    def total_mapped_bytes(self) -> int:
        """Sum of VMA lengths (virtual footprint)."""
        return sum(vma.length for vma in self._vmas)

    def fault_stats_total(self) -> int:
        """Total faults of all kinds this space has taken."""
        return sum(self.fault_stats.values())
