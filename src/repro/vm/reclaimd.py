"""Page-reclaim baselines: clock (second chance) and 2Q.

These are the algorithms the paper's §3.1 declares unnecessary under
file-only memory ("avoids the need for page reclamation algorithms (e.g.,
clock, 2-queue)").  Both are implemented faithfully enough to expose their
defining cost: *scanning* — every page examined is a charged metadata
touch, so reclaiming under pressure is linear in resident memory even when
few pages are actually evicted.  Bench E10 contrasts this with file-
granularity reclamation (delete one discardable file, O(1) per file).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.lint import complexity
from repro.mem.frame_meta import FrameTable, PageFlags


@dataclass
class _LruEntry:
    """One resident page the reclaimers may scan."""

    pfn: int
    space: object  # AddressSpace; typed loosely to avoid an import cycle
    vaddr: int


class LruLists:
    """Active/inactive page lists shared by the reclaim algorithms."""

    def __init__(self, frame_table: FrameTable) -> None:
        self._frame_table = frame_table
        self.active: Deque[_LruEntry] = deque()
        self.inactive: Deque[_LruEntry] = deque()
        self._entries: Dict[int, _LruEntry] = {}

    def page_mapped(self, pfn: int, space: object, vaddr: int) -> None:
        """Register a freshly mapped page (called from the fault path)."""
        if pfn in self._entries:
            return
        entry = _LruEntry(pfn=pfn, space=space, vaddr=vaddr)
        self._entries[pfn] = entry
        self.inactive.append(entry)
        meta = self._frame_table.peek(pfn)
        if meta is not None:
            meta.lru_list = "inactive"

    def page_unmapped(self, pfn: int) -> None:
        """Forget a page that went away outside reclaim (munmap)."""
        entry = self._entries.pop(pfn, None)
        if entry is None:
            return
        for queue in (self.active, self.inactive):
            try:
                queue.remove(entry)
            except ValueError:
                pass

    @property
    def resident_count(self) -> int:
        """Pages currently tracked on either list."""
        return len(self._entries)

    def _drop(self, entry: _LruEntry) -> None:
        self._entries.pop(entry.pfn, None)


class ClockReclaimer:
    """Second-chance (clock) reclaim over the LRU lists.

    ``reclaim(n)`` scans the inactive list: referenced pages get a second
    chance (promoted to active, flag cleared); unreferenced pages are
    evicted via their address space.  When the inactive list runs dry the
    active list is aged into it.  Every examined page is a charged
    ``FrameTable.touch`` — the linear scan cost.
    """

    def __init__(
        self,
        lru: LruLists,
        frame_table: FrameTable,
        counters: EventCounters,
    ) -> None:
        self._lru = lru
        self._frame_table = frame_table
        self._counters = counters

    @complexity("n", note="the scan IS the cost; callers bound it via max_scan")
    def reclaim(
        self,
        nr_pages: int,
        max_scan: Optional[int] = None,
        should_evict: Optional[Callable[[_LruEntry], bool]] = None,
    ) -> int:
        """Try to evict ``nr_pages``; returns pages actually reclaimed.

        ``max_scan`` caps the number of pages examined (the QoS
        controller passes a batch-proportional cap so one direct-reclaim
        pass stays O(1) in resident memory); the default is the kswapd-
        style few-passes-over-everything budget.  ``should_evict``
        filters candidates — pages it rejects keep their second chance
        on the active list (memcg-targeted reclaim skips other tenants'
        frames without losing track of them).
        """
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin("reclaim", "reclaim", args={"requested": nr_pages})
            try:
                reclaimed = self._reclaim(nr_pages, max_scan, should_evict)
            finally:
                tracer.end()
            return reclaimed
        return self._reclaim(nr_pages, max_scan, should_evict)

    @complexity("n", note="scan-budgeted clock hand; every touch is charged")
    def _reclaim(
        self,
        nr_pages: int,
        max_scan: Optional[int] = None,
        should_evict: Optional[Callable[[_LruEntry], bool]] = None,
    ) -> int:
        reclaimed = 0
        # Bound total scanning at a few passes over everything, as kswapd
        # priorities do, so pressure with all-hot pages terminates.
        scan_budget = (
            max_scan
            if max_scan is not None
            else 4 * max(1, self._lru.resident_count)
        )
        while reclaimed < nr_pages and scan_budget > 0:
            if not self._lru.inactive:
                # o1: allow(flow-bounded) -- aging moves pages the scan then consumes; amortized into the declared n
                if not self._age_active():
                    break
            entry = self._lru.inactive.popleft()
            scan_budget -= 1
            self._counters.bump("reclaim_scanned")
            meta = self._frame_table.touch(entry.pfn)
            if meta.has_flag(PageFlags.REFERENCED):
                meta.clear_flag(PageFlags.REFERENCED)
                meta.lru_list = "active"
                self._lru.active.append(entry)
                continue
            if should_evict is not None and not should_evict(entry):
                # Not this caller's page to take: protect it for now.
                meta.lru_list = "active"
                self._lru.active.append(entry)
                continue
            if entry.space.evict_page(entry.vaddr):
                self._lru._drop(entry)
                meta.lru_list = ""
                reclaimed += 1
                self._counters.bump("reclaim_evicted")
            else:
                # Pinned (e.g. a fork-shared COW window): keep it on the
                # active list so it is revisited once unpinned, instead
                # of silently falling off both lists.
                meta.lru_list = "active"
                self._lru.active.append(entry)
        return reclaimed

    @complexity("n", note="one pass over the active list; charged per touch")
    def _age_active(self) -> bool:
        """Move the active list to inactive (one aging pass)."""
        if not self._lru.active:
            return False
        while self._lru.active:
            entry = self._lru.active.popleft()
            self._counters.bump("reclaim_scanned")
            meta = self._frame_table.touch(entry.pfn)
            meta.lru_list = "inactive"
            self._lru.inactive.append(entry)
        return True


class TwoQueueReclaimer:
    """Simplified 2Q: FIFO trial queue (A1) plus a protected main queue (Am).

    New pages enter A1 and are evicted from it unless referenced, in which
    case they are promoted to Am; Am overflows back into A1's tail.  Like
    clock, every examined page charges a metadata touch.
    """

    def __init__(
        self,
        lru: LruLists,
        frame_table: FrameTable,
        counters: EventCounters,
        protected_fraction: float = 0.75,
    ) -> None:
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in (0, 1)")
        self._lru = lru  # inactive = A1, active = Am
        self._frame_table = frame_table
        self._counters = counters
        self._protected_fraction = protected_fraction

    def reclaim(self, nr_pages: int) -> int:
        """Try to evict ``nr_pages``; returns pages actually reclaimed."""
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin("reclaim", "reclaim", args={"requested": nr_pages})
            try:
                reclaimed = self._reclaim(nr_pages)
            finally:
                tracer.end()
            return reclaimed
        return self._reclaim(nr_pages)

    def _reclaim(self, nr_pages: int) -> int:
        reclaimed = 0
        scan_budget = 4 * max(1, self._lru.resident_count)
        max_protected = int(self._protected_fraction * self._lru.resident_count)
        while reclaimed < nr_pages and scan_budget > 0:
            if not self._lru.inactive:
                if not self._lru.active:
                    break
                # Demote the Am head when A1 is empty.
                entry = self._lru.active.popleft()
                self._counters.bump("reclaim_scanned")
                scan_budget -= 1
                self._frame_table.touch(entry.pfn).lru_list = "inactive"
                self._lru.inactive.append(entry)
                continue
            entry = self._lru.inactive.popleft()
            scan_budget -= 1
            self._counters.bump("reclaim_scanned")
            meta = self._frame_table.touch(entry.pfn)
            if (
                meta.has_flag(PageFlags.REFERENCED)
                and len(self._lru.active) < max_protected
            ):
                meta.clear_flag(PageFlags.REFERENCED)
                meta.lru_list = "active"
                self._lru.active.append(entry)
                continue
            if entry.space.evict_page(entry.vaddr):
                self._lru._drop(entry)
                meta.lru_list = ""
                reclaimed += 1
                self._counters.bump("reclaim_evicted")
            else:
                # Pinned page (fork-shared COW window): protect it rather
                # than dropping it from both lists.
                meta.lru_list = "active"
                self._lru.active.append(entry)
        return reclaimed
