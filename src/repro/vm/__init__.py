"""Virtual memory: address spaces, VMAs, demand paging, reclamation.

This package is the *baseline* the paper argues against: per-page demand
faults, per-page populate loops, LRU/clock reclaim scans, and swap.  The
O(1) designs in :mod:`repro.core` replace pieces of it while reusing its
address-space plumbing.
"""

from repro.vm.vma import (
    AnonBacking,
    MapFlags,
    MemoryBacking,
    Protection,
    Vma,
)
from repro.vm.addrspace import AddressSpace
from repro.vm.reclaimd import ClockReclaimer, LruLists, TwoQueueReclaimer
from repro.vm.swap import SwapDevice

__all__ = [
    "AddressSpace",
    "AnonBacking",
    "ClockReclaimer",
    "LruLists",
    "MapFlags",
    "MemoryBacking",
    "Protection",
    "SwapDevice",
    "TwoQueueReclaimer",
    "Vma",
]
