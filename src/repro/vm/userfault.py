"""userfaultfd-style delegation: application-managed paging.

Paper §3.1: with file-only memory the kernel stops swapping, and "those
applications that need swapping could implement it themselves using
techniques such as userfaultfd".  This module supplies that escape hatch:
a :class:`UserFaultRegion` registers a user-mode handler for a VMA; when
the CPU faults inside it, the kernel upcalls into the handler (charging
the user/kernel bounce the real mechanism pays), and the handler decides
where the page comes from — a swap file, a remote node, decompression —
then installs it with :meth:`resolve`.

The kernel's own fault path stays untouched: the region's backing raises
to the handler instead of allocating, so this composes with any file
system backing.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, TYPE_CHECKING

from repro.errors import MappingError, ProtectionError
from repro.units import PAGE_SIZE
from repro.vm.vma import MapFlags, Protection, Vma

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process

#: Extra round-trip cost of delivering a fault to user space and resuming:
#: wake the handler thread, context switch, read the uffd message, and the
#: ioctl back (two crossings + scheduling).
UPCALL_NS = 4_500

#: Handler callback: (page_index) -> bytes | None.  Returning data means
#: "copy this in" (UFFDIO_COPY); None means "map a zero page"
#: (UFFDIO_ZEROPAGE).
FaultHandler = Callable[[int], Optional[bytes]]


class _UserFaultBacking:
    """Backing that upcalls instead of allocating."""

    def __init__(self, region: "UserFaultRegion") -> None:
        self._region = region
        self._allocator = region._kernel.dram_buddy  # for COW protocol

    def frame_for(self, page_index: int, write: bool) -> int:
        return self._region._handle_user_fault(page_index)

    def frame_runs(self, start_page: int, npages: int) -> Iterator[Tuple[int, int, int]]:
        raise MappingError(
            "userfault regions cannot be pre-populated; faults are the point"
        )

    def release(self, page_index: int, npages: int) -> None:
        self._region._release_pages(page_index, npages)


class UserFaultRegion:
    """A demand region whose faults are resolved by application code."""

    def __init__(
        self,
        kernel: "Kernel",
        process: "Process",
        length: int,
        handler: FaultHandler,
        prot: Protection = Protection.rw(),
    ) -> None:
        if length <= 0 or length % PAGE_SIZE:
            raise MappingError(
                f"length must be a positive page multiple, got {length}"
            )
        self._kernel = kernel
        self._process = process
        self.handler = handler
        self._frames: Dict[int, int] = {}
        backing = _UserFaultBacking(self)
        self.vma: Vma = process.space.mmap(
            length=length,
            prot=prot,
            flags=MapFlags.SHARED,
            backing=backing,
            name="userfault",
        )
        self.vaddr = self.vma.start
        self.length = length
        #: Faults delivered to the handler so far.
        self.delivered = 0

    # ------------------------------------------------------------------
    # Kernel-side fault delivery
    # ------------------------------------------------------------------
    def _handle_user_fault(self, page_index: int) -> int:
        existing = self._frames.get(page_index)
        if existing is not None:
            return existing
        # Deliver to user space: the expensive bounce.
        self._kernel.clock.advance(UPCALL_NS)
        self._kernel.counters.bump("userfault_upcall")
        self.delivered += 1
        data = self.handler(page_index)
        return self.resolve(page_index, data)

    def resolve(self, page_index: int, data: Optional[bytes]) -> int:
        """Install the page (UFFDIO_COPY / UFFDIO_ZEROPAGE)."""
        if page_index in self._frames:
            raise MappingError(f"page {page_index} already resolved")
        pfn = self._kernel.dram_buddy.alloc(0)
        costs = self._kernel.costs
        if data is None:
            self._kernel.clock.advance(costs.zero_page_ns(PAGE_SIZE))
            self._kernel.counters.bump("userfault_zeropage")
        else:
            if len(data) > PAGE_SIZE:
                self._kernel.dram_buddy.free(pfn)
                raise MappingError(
                    f"resolved data of {len(data)} bytes exceeds a page"
                )
            lines = -(-max(len(data), 1) // 64)
            self._kernel.clock.advance(costs.copy_line_ns * lines * 2)
            self._kernel.counters.bump("userfault_copy")
        self._frames[page_index] = pfn
        return pfn

    # ------------------------------------------------------------------
    # Application-side eviction (self-managed swapping)
    # ------------------------------------------------------------------
    def evict(self, page_index: int) -> bool:
        """Drop a resident page so the next touch faults to the handler.

        This is the application "implementing swapping itself": it owns
        the copy-out (its handler must be able to reproduce the data).
        """
        pfn = self._frames.pop(page_index, None)
        if pfn is None:
            return False
        page_va = self.vaddr + page_index * PAGE_SIZE
        self._process.space.evict_page(page_va)
        self._kernel.dram_buddy.free(pfn)
        self._kernel.counters.bump("userfault_evict")
        return True

    def resident_pages(self) -> int:
        """Pages currently materialized."""
        return len(self._frames)

    def _release_pages(self, page_index: int, npages: int) -> None:
        for index in range(page_index, page_index + npages):
            pfn = self._frames.pop(index, None)
            if pfn is not None:
                self._kernel.dram_buddy.free(pfn)

    def close(self) -> None:
        """Unregister: unmap the VMA and free resident frames."""
        self._process.space.munmap(self.vaddr, self.length)
