"""Address translation: multi-level page tables, walks, and huge pages.

The baseline mechanism the paper measures against: every 4 KiB of mapped
virtual memory needs a leaf PTE, every TLB miss walks one node per level
(4 or 5, doubled-plus under virtualization), and every mapping operation
is therefore linear in its operand size.  The O(1) designs in
:mod:`repro.core` exist to bypass exactly this machinery.
"""

from repro.paging.pagetable import PageTable, PageTableNode, Pte
from repro.paging.walker import PageWalker
from repro.paging.hugepages import choose_page_runs, largest_page_for
from repro.paging.fault import FaultType

__all__ = [
    "FaultType",
    "PageTable",
    "PageTableNode",
    "PageWalker",
    "Pte",
    "choose_page_runs",
    "largest_page_for",
]
