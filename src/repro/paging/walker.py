"""Hardware page-walk engine with cache-priced memory references.

On a TLB miss the walker reads one page-table entry per level, each a real
memory reference priced through the shared cache model — so walks over warm
page tables cost a few nanoseconds while cold walks pay DRAM latency per
level.  This is what makes the paper's observation measurable that reading
16 KiB via ``read()`` can beat touching a cold mapping (§3.2).

Under virtualization each guest page-table reference is itself a
guest-physical address that must be translated by the host's tables, so a
2-D walk costs ``(g + 1) * (h + 1) - 1`` references — 24 for two 4-level
tables, 35 for two 5-level tables, the number §2 cites for Intel's 5-level
EPT.  The walker models the host-side references as additional cache
references against the nested tables' synthetic addresses.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.cache import CacheModel
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.hw.tlb import TlbEntry
from repro.lint import allocbound, o1
from repro.paging.pagetable import PageTable, Pte


class PageWalker:
    """Walks a :class:`PageTable` charging per-level reference costs."""

    def __init__(
        self,
        cache: CacheModel,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
        virtualized: bool = False,
        nested_levels: Optional[int] = None,
    ) -> None:
        self._cache = cache
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._virtualized = virtualized
        #: Levels of the host (nested) table when virtualized; defaults to
        #: matching the guest table's depth at walk time.
        self._nested_levels = nested_levels
        #: Synthetic base for host-EPT node lines, distinct per walker.
        self._ept_base = 1 << 53

    @property
    def virtualized(self) -> bool:
        """True if walks pay 2-D (nested) translation costs."""
        return self._virtualized

    def references_per_walk(self, levels: int) -> int:
        """Worst-case memory references for one walk of ``levels`` tables."""
        if not self._virtualized:
            return levels
        host = self._nested_levels or levels
        return (levels + 1) * (host + 1) - 1

    @o1(note="4-5 fixed levels, independent of mapping size")
    @allocbound(2, note="one node-path list and one TlbEntry per walk")
    def walk(self, table: PageTable, vaddr: int, asid: int = 0) -> Optional[TlbEntry]:
        """Translate ``vaddr``; None if no valid leaf exists.

        Charges one cache reference per table node actually visited (plus
        nested references when virtualized), whether or not the walk
        succeeds — hardware pays for failed walks too.
        """
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin("page_walk", "paging")
            try:
                return self._walk(table, vaddr, asid)
            finally:
                tracer.end()
        return self._walk(table, vaddr, asid)

    @o1(note="visits the fixed radix levels, nested or not")
    @allocbound(2, note="one node-path list and one TlbEntry per walk")
    def _walk(self, table: PageTable, vaddr: int, asid: int) -> Optional[TlbEntry]:
        self._counters.bump("walk_start")
        nodes = table.path_nodes(vaddr)
        host_levels = self._nested_levels or table.levels
        pte: Optional[Pte] = None
        write_protected = False
        # o1: allow(o1-size-loop, o1-charge-in-loop) -- path_nodes is at most the level count
        for node in nodes:
            index = table.index_at(vaddr, node.depth)
            if index in node.wp_slots:
                write_protected = True
            if self._virtualized:
                # The guest-physical address of this node must itself be
                # translated: one reference per host level against the
                # nested tables, modeled as distinct synthetic lines so
                # locality behaves (hot nested nodes cache like real ones).
                # o1: allow(o1-size-loop, o1-charge-in-loop) -- host level count is a hardware constant
                for host_depth in range(host_levels):
                    host_line = (
                        self._ept_base
                        + (node.paddr >> 12 << 6)
                        + host_depth * 8
                    )
                    self._cache.reference(host_line)
                    self._counters.bump("nested_walk_ref")
            self._cache.reference(node.entry_paddr(index))
            self._counters.bump("walk_ref")
            entry = node.entries.get(index)
            if isinstance(entry, Pte):
                pte = entry
                break
            if entry is None:
                return None
        if pte is None:
            return None
        if self._virtualized:
            # The final data address is guest-physical too: one more host
            # walk before the access proper.
            # o1: allow(o1-size-loop, o1-charge-in-loop) -- host level count is a hardware constant
            for host_depth in range(host_levels):
                host_line = self._ept_base + (pte.paddr >> 12 << 6) + host_depth * 8
                self._cache.reference(host_line)
                self._counters.bump("nested_walk_ref")
        return TlbEntry(
            vpn=vaddr // pte.page_size,
            pfn=pte.pfn,
            page_size=pte.page_size,
            writable=pte.writable and not write_protected,
            asid=asid,
        )
