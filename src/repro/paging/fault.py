"""Page-fault taxonomy shared by the CPU, vm layer and benchmarks.

The student-report portion of the paper's text distinguishes the two fault
kinds explicitly: a *major* fault "involves disk IO to bring in data",
while a *minor* fault "does not involve any disk IO, but updates the page
table entry to map the accessed virtual page to a free physical page".
All the paper's figures concern minor faults; major faults only occur in
this simulator when the swap baseline is enabled.
"""

from __future__ import annotations

import enum


class FaultType(enum.Enum):
    """Classification of a resolved page fault."""

    #: Translation absent but data already in memory (or fresh anon page).
    MINOR = "minor"
    #: Data had to be brought in from the swap device.
    MAJOR = "major"
    #: Write to a read-only mapping resolved by copy-on-write.
    COW = "cow"

    @property
    def counter_name(self) -> str:
        """EventCounters key under which this fault kind is tallied."""
        return f"fault_{self.value}"
