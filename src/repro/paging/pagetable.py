"""Multi-level (radix) page tables, x86-64 style.

A page table is a radix tree with 512-entry nodes translating 9 bits per
level.  Four levels translate 48 bits; five translate 57 (Intel's 5-level
paging, which §2 of the paper cites as the price of ever-larger physical
memories).  Leaves can sit at any of the bottom three levels: a leaf at
the lowest level maps 4 KiB, one level up 2 MiB, two levels up 1 GiB —
matching x86-64's "powers of 512 times bigger than 4 KB" page sizes.

Two features exist specifically for the paper's O(1) designs:

* :meth:`PageTable.link_subtree` grafts an *existing* interior node into
  another table, which is how physically based mappings and pre-created
  page tables turn "map a file" into a single pointer write (§3.1:
  "mapping becomes changing a single pointer in a page table to refer to
  existing page tables");
* interior nodes are reference-counted so shared subtrees survive the
  teardown of any one address space.

Costs: creating a node charges ``pt_node_alloc_ns`` (a frame allocation
plus zeroing), and writing a leaf entry charges ``pte_write_ns``.  Walk
costs are charged by :mod:`repro.paging.walker`, not here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import AlignmentError, ConfigurationError, MappingError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.lint import complexity, o1
from repro.units import HUGE_PAGE_1G, HUGE_PAGE_2M, PAGE_SIZE, PTES_PER_TABLE

#: Bits translated per level and by the page offset.
_BITS_PER_LEVEL = 9
_PAGE_SHIFT = 12

#: Page size mapped by a leaf at depth (levels - 1 - d) from the bottom.
_LEAF_SIZES = (PAGE_SIZE, HUGE_PAGE_2M, HUGE_PAGE_1G)

#: Synthetic physical addresses for page-table nodes when no frame source
#: is wired in (standalone/unit-test use).  Placed high so they never
#: collide with simulated RAM.
_SYNTHETIC_NODE_BASE = 1 << 52


@dataclass(frozen=True)
class Pte:
    """A leaf translation entry.

    ``pfn`` is in units of the entry's own ``page_size`` (so a 2 MiB PTE's
    pfn counts 2 MiB frames), mirroring how hardware reads the address
    bits of a huge-page entry.
    """

    pfn: int
    page_size: int = PAGE_SIZE
    writable: bool = True
    user: bool = True
    dirty: bool = False
    accessed: bool = False

    @property
    def paddr(self) -> int:
        """Base physical address of the mapped page."""
        return self.pfn * self.page_size


class PageTableNode:
    """One 4 KiB radix node holding up to 512 entries.

    ``refs`` counts how many parent slots (or table roots) point here;
    shared subtrees are freed only when the last reference drops.
    """

    _synthetic_addrs = itertools.count(_SYNTHETIC_NODE_BASE, PAGE_SIZE)

    __slots__ = ("entries", "depth", "paddr", "refs", "wp_slots")

    def __init__(self, depth: int, paddr: Optional[int] = None) -> None:
        self.entries: Dict[int, Union["PageTableNode", Pte]] = {}
        self.depth = depth
        self.paddr = paddr if paddr is not None else next(self._synthetic_addrs)
        self.refs = 1
        #: Slot indexes whose subtree is write-protected: hardware treats
        #: every translation below such a slot as read-only regardless of
        #: the leaf's own W bit.  This is how COW fork shares a whole
        #: window with one permission-bit write instead of downgrading
        #: each leaf.
        self.wp_slots: set = set()

    def entry_paddr(self, index: int) -> int:
        """Physical address of slot ``index`` (8 bytes per entry)."""
        return self.paddr + index * 8

    def __repr__(self) -> str:
        return (
            f"PageTableNode(depth={self.depth}, entries={len(self.entries)}, "
            f"refs={self.refs})"
        )


class PageTable:
    """A process's page-table tree.

    Parameters
    ----------
    levels:
        4 (48-bit VA) or 5 (57-bit VA).
    frame_source:
        Optional callable returning a PFN for each new node, so node
        frames come from the simulated buddy allocator.  Without it,
        synthetic high addresses are used.
    frame_sink:
        Optional callable taking a list of PFNs; :meth:`release` hands
        it every node frame this table owned, in one batch, so process
        exit returns page-table memory to the allocator at extent cost.
    """

    def __init__(
        self,
        levels: int = 4,
        clock: Optional[SimClock] = None,
        costs: Optional[CostModel] = None,
        counters: Optional[EventCounters] = None,
        frame_source: Optional[Callable[[], int]] = None,
        frame_sink: Optional[Callable[[List[int]], None]] = None,
    ) -> None:
        if levels not in (4, 5):
            raise ConfigurationError(f"levels must be 4 or 5, got {levels}")
        self._levels = levels
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._frame_source = frame_source
        self._frame_sink = frame_sink
        self._node_count = 0
        self._root = self._new_node(depth=0)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of radix levels (4 or 5)."""
        return self._levels

    @property
    def root(self) -> PageTableNode:
        """Top-level node (CR3 target)."""
        return self._root

    @property
    def va_bits(self) -> int:
        """Virtual-address bits this table can translate."""
        return _PAGE_SHIFT + _BITS_PER_LEVEL * self._levels

    @property
    def node_count(self) -> int:
        """Interior+leaf nodes allocated by *this* table (shared subtrees
        grafted in via :meth:`link_subtree` are not counted)."""
        return self._node_count

    @o1(note="scan of the three supported leaf sizes")
    def _leaf_depth_for(self, page_size: int) -> int:
        """Tree depth at which a leaf of ``page_size`` sits."""
        # o1: allow(o1-size-loop) -- _LEAF_SIZES is the hardware page-size menu
        for up, size in enumerate(_LEAF_SIZES):
            if size == page_size:
                depth = self._levels - 1 - up
                if depth < 1:
                    raise ConfigurationError(
                        f"page size {page_size} needs more levels than {self._levels}"
                    )
                return depth
        raise ConfigurationError(
            f"unsupported page size {page_size}; supported: {_LEAF_SIZES}"
        )

    def index_at(self, vaddr: int, depth: int) -> int:
        """Radix index used at ``depth`` (0 = root) for ``vaddr``."""
        shift = _PAGE_SHIFT + _BITS_PER_LEVEL * (self._levels - 1 - depth)
        return (vaddr >> shift) & (PTES_PER_TABLE - 1)

    def span_at(self, depth: int) -> int:
        """Bytes of VA covered by one slot at ``depth``."""
        return 1 << (_PAGE_SHIFT + _BITS_PER_LEVEL * (self._levels - 1 - depth))

    # ------------------------------------------------------------------
    # Charging helpers
    # ------------------------------------------------------------------
    def _new_node(self, depth: int) -> PageTableNode:
        pfn = self._frame_source() if self._frame_source is not None else None
        paddr = pfn * PAGE_SIZE if pfn is not None else None
        if self._clock is not None and self._costs is not None:
            self._clock.advance(self._costs.pt_node_alloc_ns)
        if self._counters is not None:
            self._counters.bump("pt_node_alloc")
        self._node_count += 1
        return PageTableNode(depth=depth, paddr=paddr)

    def _charge_pte_write(self) -> None:
        if self._clock is not None and self._costs is not None:
            self._clock.advance(self._costs.pte_write_ns)
        if self._counters is not None:
            self._counters.bump("pte_write")

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    @o1(note="one leaf write after a fixed-depth descent")
    def map(
        self,
        vaddr: int,
        pfn: int,
        page_size: int = PAGE_SIZE,
        writable: bool = True,
        user: bool = True,
    ) -> Pte:
        """Install one leaf PTE mapping ``vaddr`` -> frame ``pfn``.

        ``vaddr`` must be aligned to ``page_size``.  This is the per-page
        operation whose repetition makes MAP_POPULATE linear.
        """
        if vaddr % page_size:
            raise AlignmentError(
                f"vaddr {vaddr:#x} not aligned to page size {page_size}"
            )
        leaf_depth = self._leaf_depth_for(page_size)
        node = self._descend_creating(vaddr, leaf_depth)
        index = self.index_at(vaddr, leaf_depth)
        existing = node.entries.get(index)
        if isinstance(existing, PageTableNode):
            raise MappingError(
                f"vaddr {vaddr:#x}: cannot place a {page_size}-byte leaf over "
                f"an existing subtree"
            )
        pte = Pte(pfn=pfn, page_size=page_size, writable=writable, user=user)
        node.entries[index] = pte
        self._charge_pte_write()
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_pte_map(pte)
        return pte

    @o1(note="fixed-depth radix descent")
    def _descend_creating(self, vaddr: int, leaf_depth: int) -> PageTableNode:
        node = self._root
        # o1: allow(o1-size-loop) -- leaf_depth is bounded by the table's level count
        for depth in range(leaf_depth):
            index = self.index_at(vaddr, depth)
            child = node.entries.get(index)
            if child is None:
                child = self._new_node(depth + 1)
                node.entries[index] = child
            elif isinstance(child, Pte):
                raise MappingError(
                    f"vaddr {vaddr:#x}: a {child.page_size}-byte huge page "
                    f"already maps this region"
                )
            elif child.refs > 1:
                # Copy-on-write for the page table itself: a mutation
                # descending into a node shared with another table first
                # unshares it, so the other sharer never sees the change.
                child = self._unshare_child(node, index, child)
            node = child
        return node

    @o1(note="one node clone plus one pointer write")
    def _unshare_child(
        self, parent: PageTableNode, index: int, child: PageTableNode
    ) -> PageTableNode:
        """Replace ``parent``'s shared ``child`` with a private clone."""
        clone = self._clone_node(child)
        parent.entries[index] = clone
        child.refs -= 1
        self._charge_pte_write()
        return clone

    @o1(note="copies one fixed 512-entry node")
    def _clone_node(self, node: PageTableNode) -> PageTableNode:
        """A private copy of one node (fixed 4 KiB of entries).

        Child subtrees become shared (refs bumped); leaf PTEs are
        re-registered with the sanitizers because the clone adds one more
        translation of each mapped frame.
        """
        clone = self._new_node(depth=node.depth)
        clone.entries = dict(node.entries)
        clone.wp_slots = set(node.wp_slots)
        san = getattr(self._counters, "sanitize", None)
        # o1: allow(o1-size-loop) -- one page-table node holds at most 512 entries
        for entry in clone.entries.values():
            if isinstance(entry, PageTableNode):
                entry.refs += 1
            elif san is not None:
                san.on_pte_map(entry)
        if self._counters is not None:
            self._counters.bump("pt_node_clone")
        return clone

    @o1(note="one leaf clear after a fixed-depth descent")
    def unmap(self, vaddr: int, page_size: int = PAGE_SIZE) -> Pte:
        """Remove the leaf PTE at ``vaddr``; returns it.

        Empty interior nodes are *not* eagerly freed (Linux keeps them
        too); whole-tree teardown happens via :meth:`clear`.
        """
        leaf_depth = self._leaf_depth_for(page_size)
        node = self._root
        # o1: allow(o1-size-loop) -- descent depth is fixed by the geometry
        for depth in range(leaf_depth):
            index = self.index_at(vaddr, depth)
            child = node.entries.get(index)
            if not isinstance(child, PageTableNode):
                raise MappingError(f"vaddr {vaddr:#x} is not mapped")
            if child.refs > 1:
                child = self._unshare_child(node, index, child)
            node = child
        index = self.index_at(vaddr, leaf_depth)
        entry = node.entries.get(index)
        if not isinstance(entry, Pte):
            raise MappingError(f"vaddr {vaddr:#x} is not mapped")
        del node.entries[index]
        self._charge_pte_write()
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_pte_unmap(entry)
        return entry

    def protect(self, vaddr: int, writable: bool, page_size: int = PAGE_SIZE) -> Pte:
        """Rewrite the leaf PTE's permission at ``vaddr``."""
        old = self.unmap(vaddr, page_size)
        return self.map(
            vaddr, old.pfn, page_size=page_size, writable=writable, user=old.user
        )

    # ------------------------------------------------------------------
    # Lookup (uncharged; the walker prices hardware walks)
    # ------------------------------------------------------------------
    @o1(note="fixed-depth radix descent")
    def lookup(self, vaddr: int) -> Optional[Pte]:
        """Leaf PTE covering ``vaddr``, or None.  Pure data-structure op.

        Reflects the *effective* permission hardware would compute: a
        write-protected slot anywhere on the path downgrades the leaf to
        read-only, exactly like x86's U/S and R/W bits combining across
        levels.
        """
        node = self._root
        write_protected = False
        # o1: allow(o1-size-loop) -- the level count is a hardware constant
        for depth in range(self._levels):
            index = self.index_at(vaddr, depth)
            entry = node.entries.get(index)
            if entry is None:
                return None
            if index in node.wp_slots:
                write_protected = True
            if isinstance(entry, Pte):
                if write_protected and entry.writable:
                    return replace(entry, writable=False)
                return entry
            node = entry
        return None

    def path_write_protected(self, vaddr: int) -> bool:
        """True when a write-protected slot covers ``vaddr``'s path."""
        node = self._root
        for depth in range(self._levels):
            index = self.index_at(vaddr, depth)
            if index in node.wp_slots:
                return True
            entry = node.entries.get(index)
            if not isinstance(entry, PageTableNode):
                return False
            node = entry
        return False

    @o1(note="fixed-depth radix descent")
    def path_shared(self, vaddr: int) -> bool:
        """True when ``vaddr`` translates through a node shared with
        another table (``refs > 1``) or a write-protected slot.

        Such a translation is visible to a sibling address space (fork's
        COW subtree sharing), so per-page mutations on it — eviction in
        particular — cannot be performed from this table alone.
        """
        node = self._root
        # o1: allow(o1-size-loop) -- the level count is a hardware constant
        for depth in range(self._levels):
            index = self.index_at(vaddr, depth)
            if index in node.wp_slots:
                return True
            entry = node.entries.get(index)
            if not isinstance(entry, PageTableNode):
                return False
            if entry.refs > 1:
                return True
            node = entry
        return False

    @o1(note="fixed-depth radix descent")
    def path_nodes(self, vaddr: int) -> List[PageTableNode]:
        """Nodes visited translating ``vaddr`` (for the walker), root first.

        Stops at the node containing the leaf (or the last node that
        exists, if the translation is absent)."""
        nodes = [self._root]
        node = self._root
        # o1: allow(o1-size-loop) -- the level count is a hardware constant
        for depth in range(self._levels - 1):
            entry = node.entries.get(self.index_at(vaddr, depth))
            if not isinstance(entry, PageTableNode):
                break
            node = entry
            nodes.append(node)
        return nodes

    # ------------------------------------------------------------------
    # Subtree sharing — the O(1) mapping primitive
    # ------------------------------------------------------------------
    @o1(note="fixed-depth radix descent")
    def subtree_at(self, vaddr: int, depth: int) -> Optional[PageTableNode]:
        """Interior node rooted at ``vaddr``'s slot chain down to ``depth``."""
        if depth < 1 or depth >= self._levels:
            raise ValueError(f"depth must be in 1..{self._levels - 1}, got {depth}")
        node = self._root
        # o1: allow(o1-size-loop) -- depth is bounded by the table's level count
        for d in range(depth):
            entry = node.entries.get(self.index_at(vaddr, d))
            if not isinstance(entry, PageTableNode):
                return None
            node = entry
        return node

    @o1(note="single pointer write — the paper's O(1) mapping primitive")
    def link_subtree(
        self, vaddr: int, subtree: PageTableNode, write_protect: bool = False
    ) -> None:
        """Graft ``subtree`` so it translates the region at ``vaddr``.

        One pointer write: this is the paper's O(1) mapping operation.
        ``vaddr`` must be aligned to the VA span of a slot at the
        subtree's depth (e.g. 2 MiB for a bottom-level node, 1 GiB one
        level up) — the "natural granularities of page table structures"
        constraint the paper calls out.
        """
        depth = subtree.depth
        if depth < 1 or depth >= self._levels:
            raise MappingError(
                f"cannot link a node of depth {depth} into a {self._levels}-level table"
            )
        span = self.span_at(depth - 1)
        if vaddr % span:
            raise AlignmentError(
                f"vaddr {vaddr:#x} not aligned to subtree span {span:#x}"
            )
        parent = self._descend_creating(vaddr, depth - 1) if depth > 1 else self._root
        index = self.index_at(vaddr, depth - 1)
        if index in parent.entries:
            raise MappingError(f"slot for {vaddr:#x} already populated")
        parent.entries[index] = subtree
        if write_protect:
            parent.wp_slots.add(index)
        subtree.refs += 1
        self._charge_pte_write()

    @o1(note="single pointer clear")
    def unlink_subtree(self, vaddr: int, depth: int) -> PageTableNode:
        """Remove the graft at ``vaddr``/``depth``; returns the subtree."""
        parent = self.subtree_at(vaddr, depth - 1) if depth > 1 else self._root
        if parent is None:
            raise MappingError(f"no subtree parent at {vaddr:#x}")
        index = self.index_at(vaddr, depth - 1)
        entry = parent.entries.get(index)
        if not isinstance(entry, PageTableNode):
            raise MappingError(f"no linked subtree at {vaddr:#x} depth {depth}")
        del parent.entries[index]
        parent.wp_slots.discard(index)
        entry.refs -= 1
        self._charge_pte_write()
        if entry.refs <= 0:
            san = getattr(self._counters, "sanitize", None)
            if san is not None:
                san.on_subtree_dead(entry)
        return entry

    # ------------------------------------------------------------------
    # Bottom-level windows — the COW-fork granularity
    # ------------------------------------------------------------------
    @property
    def bottom_depth(self) -> int:
        """Depth of the lowest interior node (one 2 MiB window each)."""
        return self._levels - 1

    @complexity("n", note="one yield per resident 2 MiB window")
    def iter_bottom_subtrees(
        self,
    ) -> Iterator[Tuple[int, Union[PageTableNode, Pte]]]:
        """(window_va, entry) for every bottom-level node or huge leaf.

        Bottom-level nodes each translate one 2 MiB window; a huge-page
        leaf installed above the bottom level is yielded as the ``Pte``
        itself (callers copy those directly — they cannot be shared by
        node reference).
        """
        yield from self._iter_windows(self._root, 0, 0)

    @complexity("n", note="one visit per resident entry above the bottom level")
    def _iter_windows(
        self, node: PageTableNode, depth: int, base: int
    ) -> Iterator[Tuple[int, Union[PageTableNode, Pte]]]:
        span = self.span_at(depth)
        for index in sorted(node.entries):
            entry = node.entries[index]
            vaddr = base + index * span
            if isinstance(entry, Pte) or entry.depth == self.bottom_depth:
                yield vaddr, entry
            else:
                # o1: allow(flow-bounded) -- recursion depth is the fixed radix level count
                yield from self._iter_windows(entry, depth + 1, vaddr)

    @o1(note="one permission-bit write on the window's parent slot")
    def window_write_protect(self, vaddr: int, protect: bool = True) -> None:
        """Set/clear the WP bit on the slot covering ``vaddr``'s window."""
        depth = self.bottom_depth
        parent = self.subtree_at(vaddr, depth - 1) if depth > 1 else self._root
        if parent is None:
            raise MappingError(f"no window parent at {vaddr:#x}")
        index = self.index_at(vaddr, depth - 1)
        if protect:
            parent.wp_slots.add(index)
        else:
            parent.wp_slots.discard(index)
        self._charge_pte_write()

    @o1(note="clones at most one fixed-size node per level of the descent")
    def privatize_window(self, vaddr: int) -> PageTableNode:
        """Ensure the bottom-level node under ``vaddr`` is exclusively
        owned by this table, cloning shared nodes along the descent.

        This is the page-table half of a COW break: after it, leaf
        rewrites in the window no longer reach the other sharer.
        """
        node = self._descend_creating(vaddr, self.bottom_depth)
        return node

    # ------------------------------------------------------------------
    # Teardown / iteration
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Drop every mapping; returns the number of leaf PTEs removed.

        Shared subtrees (refs > 1 after decrement) are detached, not
        recursed into — their owner tears them down.
        """
        removed = self._clear_node(self._root)
        return removed

    def _clear_node(
        self, node: PageTableNode, dead_pfns: Optional[List[int]] = None
    ) -> int:
        san = getattr(self._counters, "sanitize", None)
        removed = 0
        for index, entry in list(node.entries.items()):
            if isinstance(entry, Pte):
                removed += 1
                if san is not None:
                    san.on_pte_unmap(entry)
            else:
                entry.refs -= 1
                if entry.refs <= 0:
                    removed += self._clear_node(entry, dead_pfns)
                    if (
                        dead_pfns is not None
                        and entry.paddr < _SYNTHETIC_NODE_BASE
                    ):
                        dead_pfns.append(entry.paddr // PAGE_SIZE)
            del node.entries[index]
        node.wp_slots.clear()
        return removed

    @staticmethod
    def node_frame_pfn(node: PageTableNode) -> Optional[int]:
        """PFN of the node's backing frame, or None for synthetic nodes."""
        if node.paddr >= _SYNTHETIC_NODE_BASE:
            return None
        return node.paddr // PAGE_SIZE

    def sink_node_frames(self, pfns: List[int]) -> None:
        """Hand dead node frames back to the allocator in one batch."""
        if pfns and self._frame_sink is not None:
            self._frame_sink(pfns)

    def release(self) -> int:
        """Tear down the tree and free every owned node frame in one batch.

        Returns the number of leaf PTEs removed.  Shared subtrees whose
        refcount stays positive are detached, not freed; synthetic-paddr
        nodes (donor trees built outside the allocator) are never handed
        to the sink.  The data frames the leaves pointed at are the
        caller's business — this releases only page-table *node* memory.
        """
        dead_pfns: List[int] = []
        removed = self._clear_node(self._root, dead_pfns)
        self._root.refs -= 1
        if self._root.refs <= 0 and self._root.paddr < _SYNTHETIC_NODE_BASE:
            dead_pfns.append(self._root.paddr // PAGE_SIZE)
        if dead_pfns and self._frame_sink is not None:
            self._frame_sink(dead_pfns)
        self._node_count = 0
        self._root = PageTableNode(depth=0)  # defensive: table stays valid
        return removed

    @complexity("n", note="one yield per installed leaf PTE")
    def iter_leaves(self) -> Iterator[Tuple[int, Pte]]:
        """All (vaddr, Pte) pairs, ascending by vaddr."""
        yield from self._iter_node(self._root, 0, 0)

    @complexity("n", note="one visit per resident node entry")
    def _iter_node(
        self, node: PageTableNode, depth: int, base: int
    ) -> Iterator[Tuple[int, Pte]]:
        span = self.span_at(depth)
        for index in sorted(node.entries):
            entry = node.entries[index]
            vaddr = base + index * span
            if isinstance(entry, Pte):
                yield vaddr, entry
            else:
                # o1: allow(flow-bounded) -- recursion depth is the fixed radix level count
                yield from self._iter_node(entry, depth + 1, vaddr)

    def leaf_count(self) -> int:
        """Number of installed leaf PTEs."""
        return sum(1 for _ in self.iter_leaves())
