"""Huge-page selection: tiling a region with the largest legal pages.

x86-64 offers exactly three page sizes (4 KiB, 2 MiB, 1 GiB — "powers of
512 times bigger"), and a huge page is only usable where virtual *and*
physical addresses share its alignment.  The paper's §3 notes this forces
systems "to resort to small pages in many cases"; these helpers compute
the best legal tiling so the populate and file-mapping paths can measure
how much (or little) huge pages help a given allocation.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.lint.decorators import complexity, o1
from repro.units import HUGE_PAGE_1G, HUGE_PAGE_2M, PAGE_SIZE

#: All page sizes of the simulated processor, descending.
SUPPORTED_PAGE_SIZES: Tuple[int, ...] = (HUGE_PAGE_1G, HUGE_PAGE_2M, PAGE_SIZE)


@o1(note="the processor offers exactly three page sizes")
def largest_page_for(
    vaddr: int,
    paddr: int,
    remaining: int,
    allowed: Sequence[int] = SUPPORTED_PAGE_SIZES,
) -> int:
    """Largest allowed page usable at this (vaddr, paddr) position.

    A size qualifies only if both addresses are aligned to it and at least
    one full page of it fits in ``remaining`` bytes.
    """
    if remaining < PAGE_SIZE:
        raise ValueError(f"remaining {remaining} is smaller than a base page")
    # o1: allow(o1-size-loop) -- `allowed` is the hardware page-size menu (three entries)
    for size in sorted(allowed, reverse=True):
        if remaining >= size and vaddr % size == 0 and paddr % size == 0:
            return size
    raise ValueError(
        f"no allowed page size fits at vaddr={vaddr:#x} paddr={paddr:#x}: "
        f"addresses must at least be {PAGE_SIZE}-aligned"
    )


@complexity("n", note="one yielded run per tile of the region")
def choose_page_runs(
    vaddr: int,
    paddr: int,
    length: int,
    allowed: Sequence[int] = SUPPORTED_PAGE_SIZES,
) -> Iterator[Tuple[int, int, int]]:
    """Tile ``[vaddr, vaddr+length)`` -> ``[paddr, ...)`` with legal pages.

    Yields ``(vaddr, paddr, page_size)`` per page, greedily using the
    largest size whose alignment both sides satisfy.  ``length`` must be a
    multiple of the base page size (callers round up — the space-for-time
    trade).

    >>> runs = list(choose_page_runs(0, 0, 4 * 1024 * 1024,
    ...                              allowed=(2 * 1024 * 1024, 4096)))
    >>> [size for _, _, size in runs]
    [2097152, 2097152]
    """
    if length <= 0 or length % PAGE_SIZE:
        raise ValueError(
            f"length must be a positive multiple of {PAGE_SIZE}, got {length}"
        )
    if vaddr % PAGE_SIZE or paddr % PAGE_SIZE:
        raise ValueError("vaddr and paddr must be base-page aligned")
    position = 0
    while position < length:
        size = largest_page_for(
            vaddr + position, paddr + position, length - position, allowed
        )
        yield vaddr + position, paddr + position, size
        position += size


def page_count_for_tiling(
    vaddr: int,
    paddr: int,
    length: int,
    allowed: Sequence[int] = SUPPORTED_PAGE_SIZES,
) -> int:
    """Number of PTEs the best tiling needs — the paper's linearity metric.

    With only 4 KiB pages this is length/4096; with aligned huge pages it
    collapses by up to 512x per level, which is why the paper wants
    file-system extents aligned to "the natural granularities of page
    table structures".
    """
    return sum(1 for _ in choose_page_runs(vaddr, paddr, length, allowed))
