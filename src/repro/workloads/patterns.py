"""Deterministic access-pattern generators.

Each generator yields virtual addresses to touch, given a mapped region's
base and length.  The paper's workloads map onto these directly:

* Figure 1b / student figures: :func:`sequential_pages` with one byte per
  page ("access one byte of each page of a file");
* "sparse access to large data sets" (§3): :func:`sparse_pages`;
* TLB-pressure studies (§3.2's read()-vs-mmap claim): :func:`random_pages`
  over a working set larger than TLB reach.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.units import PAGE_SIZE


def sequential_pages(base: int, length: int, page_size: int = PAGE_SIZE) -> List[int]:
    """One address per page, ascending — the Figure 1b workload."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    return list(range(base, base + length, page_size))


def random_pages(
    base: int,
    length: int,
    count: int,
    seed: int = 1,
    page_size: int = PAGE_SIZE,
) -> List[int]:
    """``count`` uniformly random page addresses (with replacement)."""
    if length < page_size:
        raise ValueError(f"length {length} smaller than one page")
    rng = random.Random(seed)
    npages = length // page_size
    return [base + rng.randrange(npages) * page_size for _ in range(count)]


def sparse_pages(
    base: int,
    length: int,
    fraction: float,
    seed: int = 1,
    page_size: int = PAGE_SIZE,
) -> List[int]:
    """A random ``fraction`` of the region's pages, each touched once.

    Models "sparse access to large data sets" where demand paging's
    per-reference cost cannot amortize.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = random.Random(seed)
    npages = length // page_size
    chosen = rng.sample(range(npages), max(1, int(npages * fraction)))
    return [base + page * page_size for page in sorted(chosen)]


def hot_cold_pages(
    base: int,
    length: int,
    count: int,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
    seed: int = 1,
    page_size: int = PAGE_SIZE,
) -> List[int]:
    """Skewed accesses: ``hot_probability`` of touches land in the first
    ``hot_fraction`` of pages — the reclaim benches' working-set shape."""
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
    if not 0.0 <= hot_probability <= 1.0:
        raise ValueError("hot_probability must be in [0, 1]")
    rng = random.Random(seed)
    npages = length // page_size
    hot_pages = max(1, int(npages * hot_fraction))
    out = []
    for _ in range(count):
        if rng.random() < hot_probability:
            page = rng.randrange(hot_pages)
        else:
            page = hot_pages + rng.randrange(max(1, npages - hot_pages))
        out.append(base + page * page_size)
    return out


def strided_offsets(base: int, length: int, stride: int) -> List[int]:
    """Fixed-stride addresses (cache/TLB-set pressure patterns)."""
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    return list(range(base, base + length, stride))
