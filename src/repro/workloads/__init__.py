"""Workload generators for the benchmarks.

Access patterns (:mod:`patterns`) reproduce the paper's measurement
workloads — touch one byte per page, sparse access to large data sets —
and allocation traces (:mod:`alloc_traces`) drive the heap comparisons.
All generators are deterministic given a seed.
"""

from repro.workloads.patterns import (
    hot_cold_pages,
    random_pages,
    sequential_pages,
    sparse_pages,
    strided_offsets,
)
from repro.workloads.alloc_traces import AllocEvent, AllocTrace, TraceOp
from repro.workloads.tenants import (
    TenantReport,
    TenantResult,
    TenantSpec,
    make_specs,
    run_tenants,
)

__all__ = [
    "AllocEvent",
    "AllocTrace",
    "TenantReport",
    "TenantResult",
    "TenantSpec",
    "TraceOp",
    "make_specs",
    "run_tenants",
    "hot_cold_pages",
    "random_pages",
    "sequential_pages",
    "sparse_pages",
    "strided_offsets",
]
