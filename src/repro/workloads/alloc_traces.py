"""Allocation-trace generators for heap and allocator benchmarks.

Synthesizes malloc/free sequences with realistic size and lifetime
distributions: "most programs do not allocate their entire data set in one
large contiguous chunk, but instead call an allocator repeatedly to
allocate small regions" (§4.2).  Sizes follow a heavy-tailed mixture
(mostly small objects, occasional large buffers); lifetimes follow the
usual die-young pattern.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.units import KIB, MIB


class TraceOp(enum.Enum):
    """One trace event kind."""

    MALLOC = "malloc"
    FREE = "free"


@dataclass(frozen=True)
class AllocEvent:
    """One allocation-trace event.

    ``tag`` identifies the object so FREE events can name their MALLOC.
    ``size`` is 0 for FREE events.
    """

    op: TraceOp
    tag: int
    size: int = 0


class AllocTrace:
    """Deterministic malloc/free trace generator."""

    def __init__(
        self,
        seed: int = 42,
        small_bytes_max: int = 512,
        medium_bytes_max: int = 16 * KIB,
        large_bytes_max: int = 4 * MIB,
        large_fraction: float = 0.02,
        medium_fraction: float = 0.18,
    ) -> None:
        if not 0 <= large_fraction + medium_fraction <= 1:
            raise ValueError("size-class fractions must sum to <= 1")
        self._seed = seed
        self._small_max = small_bytes_max
        self._medium_max = medium_bytes_max
        self._large_max = large_bytes_max
        self._large_fraction = large_fraction
        self._medium_fraction = medium_fraction

    def _sample_size(self, rng: random.Random) -> int:
        roll = rng.random()
        if roll < self._large_fraction:
            return rng.randint(self._medium_max + 1, self._large_max)
        if roll < self._large_fraction + self._medium_fraction:
            return rng.randint(self._small_max + 1, self._medium_max)
        return rng.randint(16, self._small_max)

    def generate(
        self,
        operations: int,
        live_target: int = 256,
        die_young_probability: float = 0.6,
    ) -> List[AllocEvent]:
        """A trace of ``operations`` events with bounded live objects.

        Allocates until ``live_target`` objects are live, then mixes
        frees in; ``die_young_probability`` frees recent objects first
        (LIFO-ish), the common heap behaviour.
        """
        if operations <= 0:
            raise ValueError(f"operations must be positive, got {operations}")
        rng = random.Random(self._seed)
        events: List[AllocEvent] = []
        live: List[int] = []
        next_tag = 0
        for _ in range(operations):
            must_free = len(live) >= 2 * live_target
            want_free = live and len(live) >= live_target and rng.random() < 0.5
            if must_free or want_free:
                if rng.random() < die_young_probability:
                    index = len(live) - 1 - rng.randrange(max(1, len(live) // 4))
                else:
                    index = rng.randrange(len(live))
                tag = live.pop(max(0, index))
                events.append(AllocEvent(op=TraceOp.FREE, tag=tag))
            else:
                size = self._sample_size(rng)
                events.append(AllocEvent(op=TraceOp.MALLOC, tag=next_tag, size=size))
                live.append(next_tag)
                next_tag += 1
        return events

    @staticmethod
    def total_allocated(events: List[AllocEvent]) -> int:
        """Sum of all MALLOC sizes in a trace."""
        return sum(event.size for event in events if event.op is TraceOp.MALLOC)
