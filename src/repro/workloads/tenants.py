"""Multi-tenant memory-pressure workload for the QoS controller.

Open-loop arrivals: every tenant's requests arrive on a fixed simulated
schedule whether or not the machine has kept up, so queueing delay and
throttle stalls land in the latency distribution instead of quietly
slowing the generator down (the coordinated-omission trap).  Each tenant
runs in its own memory cgroup sized so the fleet oversubscribes DRAM —
the well-behaved majority thrashes against its ``high`` watermark
(bounded reclaim + throttle backpressure) while a few *noisy* tenants
leak unreclaimable memory past ``max`` and must die by OOM kill without
collateral damage outside their cgroup.

Everything is deterministic given ``seed``: arrivals, access patterns
and limits come from seeded generators, and the simulated clock is the
only notion of time.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OomKilledError
from repro.kernel.kernel import Kernel, MachineConfig
from repro.kernel.process import Process
from repro.obs.metrics import LatencyHistogram
from repro.units import MIB, PAGE_SIZE
from repro.vm.vma import MapFlags

#: Mean simulated inter-arrival time of one tenant's requests.
_PERIOD_NS = 2_000_000


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's footprint, limits and behavior."""

    name: str
    working_set_pages: int
    high: int
    max_frames: int
    period_ns: int
    #: Noisy tenants skip LRU tracking, so nothing of theirs is
    #: reclaimable: they must breach ``max`` and be OOM-killed.
    noisy: bool = False


@dataclass
class TenantResult:
    """What one tenant experienced."""

    spec: TenantSpec
    requests_done: int = 0
    requests_total: int = 0
    killed: bool = False
    latency: LatencyHistogram = field(
        default_factory=lambda: LatencyHistogram("tenant_request_ns")
    )

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "noisy": self.spec.noisy,
            "requests_done": self.requests_done,
            "requests_total": self.requests_total,
            "killed": self.killed,
            "p50_ns": self.latency.percentile(50),
            "p99_ns": self.latency.percentile(99),
            "p999_ns": self.latency.percentile(99.9),
        }


@dataclass
class TenantReport:
    """Fleet-level outcome of one :func:`run_tenants` run."""

    seed: int
    dram_frames: int
    oversubscribe: float
    results: List[TenantResult]
    kills: List[Dict[str, object]]
    qos_report: Dict[str, object]
    counters: Dict[str, int]

    def problems(self) -> List[str]:
        """Robustness violations; empty means the run is acceptable."""
        problems: List[str] = []
        for kill in self.kills:
            if kill["cgroup"] != kill["offending"]:
                problems.append(
                    f"OOM kill escaped its cgroup: victim pid {kill['pid']} "
                    f"in {kill['cgroup']!r}, offender {kill['offending']!r}"
                )
        for result in self.results:
            if result.spec.noisy:
                if not result.killed and result.requests_done < result.requests_total:
                    problems.append(
                        f"noisy tenant {result.spec.name} neither finished "
                        "nor was OOM-killed"
                    )
            elif result.killed:
                problems.append(
                    f"well-behaved tenant {result.spec.name} was OOM-killed"
                )
            elif result.requests_done != result.requests_total:
                problems.append(
                    f"tenant {result.spec.name} stalled at "
                    f"{result.requests_done}/{result.requests_total} requests"
                )
        if self.counters.get("qos_throttle_stall", 0) == 0:
            problems.append(
                "oversubscribed fleet never throttled: backpressure is dead"
            )
        return problems

    def ok(self) -> bool:
        return not self.problems()

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "tool": "repro-o1 qos",
            "seed": self.seed,
            "dram_frames": self.dram_frames,
            "oversubscribe": self.oversubscribe,
            "tenants": [r.snapshot() for r in self.results],
            "kills": self.kills,
            "qos": self.qos_report,
            "counters": self.counters,
            "problems": self.problems(),
        }

    def summary(self) -> str:
        done = sum(r.requests_done for r in self.results)
        total = sum(r.requests_total for r in self.results)
        killed = [r.spec.name for r in self.results if r.killed]
        lines = [
            f"tenants             : {len(self.results)} "
            f"({sum(1 for r in self.results if r.spec.noisy)} noisy)",
            f"oversubscription    : {self.oversubscribe:.2f}x of "
            f"{self.dram_frames} DRAM frames",
            f"requests completed  : {done}/{total}",
            f"reclaim batches     : {self.counters.get('qos_reclaim_batch', 0)}",
            f"throttle stalls     : {self.counters.get('qos_throttle_stall', 0)}",
            f"oom kills           : {len(self.kills)} ({', '.join(killed) or '-'})",
        ]
        worst = max(
            (r for r in self.results if r.latency.count),
            key=lambda r: r.latency.percentile(99.9),
            default=None,
        )
        if worst is not None:
            lines.append(
                f"worst tenant p99.9  : {worst.spec.name} "
                f"{worst.latency.percentile(99.9)} ns"
            )
        for problem in self.problems():
            lines.append(f"PROBLEM {problem}")
        return "\n".join(lines)


def make_specs(
    tenants: int, dram_frames: int, oversubscribe: float, seed: int
) -> List[TenantSpec]:
    """Size a fleet: working sets oversubscribe DRAM, limits do not.

    The sum of ``max`` watermarks stays near 70% of DRAM so global
    exhaustion never races the per-cgroup policy; the sum of working
    sets is ``oversubscribe`` times DRAM, so tenants must cycle through
    swap to make progress.
    """
    if tenants < 2:
        raise ValueError(f"need at least 2 tenants, got {tenants}")
    rng = random.Random(seed)
    working_set = max(8, int(dram_frames * oversubscribe) // tenants)
    max_frames = max(6, (dram_frames * 7 // 10) // tenants)
    high = max(4, max_frames * 2 // 3)
    noisy_count = max(1, tenants // 16)
    specs: List[TenantSpec] = []
    for i in range(tenants):
        noisy = i < noisy_count
        specs.append(
            TenantSpec(
                name=f"{'noisy' if noisy else 'tenant'}-{i:03d}",
                working_set_pages=working_set,
                # Noisy limits are tighter: they leak, they die sooner.
                high=max(3, high // 2) if noisy else high,
                max_frames=max(4, max_frames // 2) if noisy else max_frames,
                period_ns=_PERIOD_NS + rng.randrange(-_PERIOD_NS // 4, _PERIOD_NS // 4),
                noisy=noisy,
            )
        )
    return specs


def run_tenants(
    tenants: int = 64,
    seed: int = 0,
    requests_per_tenant: Optional[int] = None,
    request_pages: int = 16,
    oversubscribe: float = 2.0,
    dram_bytes: int = 64 * MIB,
    kernel: Optional[Kernel] = None,
) -> TenantReport:
    """Drive an oversubscribed tenant fleet to completion.

    Requests slide a window across the tenant's working set (with random
    revisits behind it), so by default (``requests_per_tenant=None``)
    each tenant sweeps ~1.5x its working set — far past its watermarks —
    and swapped-out pages get faulted back in as major faults.

    Pass ``kernel`` to run on a pre-built machine (e.g. with sanitizers
    or chaos armed); it must have swap, and QoS is armed here if the
    caller has not already done so.  OOM kills raised at a victim's next
    entry (:class:`~repro.errors.OomKilledError`) are the one *handled*
    fault; anything else propagates to the caller as a genuine bug.
    """
    if kernel is None:
        frames = dram_bytes // PAGE_SIZE
        kernel = Kernel(
            MachineConfig(dram_bytes=dram_bytes, swap_pages=4 * frames)
        )
    qos = kernel.qos
    if qos is None:
        qos = kernel.arm_qos()
    dram_frames = kernel.dram_buddy.region.frame_count
    specs = make_specs(tenants, dram_frames, oversubscribe, seed)
    if requests_per_tenant is None:
        sweep = 3 * specs[0].working_set_pages // 2
        requests_per_tenant = max(6, -(-sweep // request_pages))

    processes: List[Process] = []
    results: List[TenantResult] = []
    rngs: List[random.Random] = []
    vas: List[int] = []
    for spec in specs:
        cg = qos.cgroup(
            spec.name, high=spec.high, max_frames=spec.max_frames
        )
        process = kernel.spawn(
            spec.name, track_lru=not spec.noisy, cgroup=cg
        )
        va = kernel.syscalls(process).mmap(
            spec.working_set_pages * PAGE_SIZE, flags=MapFlags.PRIVATE
        )
        processes.append(process)
        results.append(
            TenantResult(spec=spec, requests_total=requests_per_tenant)
        )
        rngs.append(random.Random(seed * 10_007 + len(rngs)))
        vas.append(va)

    # Open-loop schedule: (arrival_ns, tiebreak, tenant index).
    queue: List[Tuple[int, int, int]] = []
    seq = 0
    for idx, spec in enumerate(specs):
        heapq.heappush(queue, (spec.period_ns, seq, idx))
        seq += 1

    clock = kernel.clock
    while queue:
        arrival, _, idx = heapq.heappop(queue)
        process, result = processes[idx], results[idx]
        if result.killed or not process.alive:
            # Reaped while parked (oom_reaper path): record and stop.
            result.killed = True
            continue
        if clock.now < arrival:
            clock.advance(arrival - clock.now)
        spec, rng, va = specs[idx], rngs[idx], vas[idx]
        base = (result.requests_done * request_pages) % spec.working_set_pages
        touched = min(
            spec.working_set_pages,
            (result.requests_done + 1) * request_pages,
        )
        try:
            for j in range(request_pages):
                if rng.randrange(2):
                    # Advance the working window: new footprint.
                    page = (base + j) % spec.working_set_pages
                else:
                    # Revisit earlier pages: major faults once reclaim
                    # has pushed them to swap.
                    page = rng.randrange(touched)
                kernel.access(
                    process,
                    va + page * PAGE_SIZE,
                    write=rng.randrange(4) != 0,
                )
        except OomKilledError:
            result.killed = True
            continue
        result.requests_done += 1
        result.latency.observe(clock.now - arrival)
        if result.requests_done < result.requests_total:
            heapq.heappush(
                queue, (arrival + spec.period_ns, seq, idx)
            )
            seq += 1

    counters = {
        name: value
        for name, value in kernel.counters.snapshot().items()
        if name.startswith(("qos_", "swap_", "reclaim_", "vm_"))
    }
    return TenantReport(
        seed=seed,
        dram_frames=dram_frames,
        oversubscribe=oversubscribe,
        results=results,
        kills=list(qos.kills),
        qos_report=qos.report(),
        counters=counters,
    )
