"""VFS layer: inodes, directories, path walking, file handles.

Deliberately thin — just enough structure that the paper's comparisons are
honest: path lookup charges per component, file creation charges an inode
allocation, permissions live on the *whole file* ("permission is granted
for the whole file and not individual blocks"), and reads/writes through
the handle pay the kernel-copy costs that make ``read()`` competitive with
cold mapped access (§3.2).

Concrete file systems (:mod:`repro.fs.tmpfs`, :mod:`repro.fs.pmfs`)
subclass :class:`FileSystem` and provide block storage and a
:class:`~repro.vm.vma.MemoryBacking` per inode so files can be mmapped.
"""

from __future__ import annotations

import abc
import enum
import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    BadFileDescriptorError,
    FileExistsError_,
    FileNotFoundError_,
    FileSystemError,
)
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.lint import complexity
from repro.units import CACHE_LINE, PAGE_SIZE, pages_for
from repro.vm.vma import MemoryBacking


class InodeKind(enum.Enum):
    """What an inode names."""

    FILE = "file"
    DIR = "dir"


class Inode:
    """One file or directory.

    Permissions (``mode``) apply to the whole file — the coarse-metadata
    property the paper leans on.  ``payload`` sparsely stores real bytes
    for pages that were actually written, so examples can demonstrate data
    surviving crashes without the simulator holding gigabytes.
    """

    _ino_counter = itertools.count(1)

    def __init__(self, fs: "FileSystem", kind: InodeKind, mode: int = 0o644) -> None:
        self.ino = next(self._ino_counter)
        self.fs = fs
        self.kind = kind
        self.mode = mode
        self.size = 0
        self.nlink = 1
        #: Open-handle/mmap reference count; reclamation is whole-file.
        self.refcount = 0
        #: Directory entries (DIR inodes only).
        self.children: Dict[str, "Inode"] = {}
        #: Sparse real data: page_index -> bytes (FILE inodes only).
        self.payload: Dict[int, bytes] = {}
        #: File-only-memory annotation: survives crash iff True and the
        #: file system itself is persistent.
        self.persistent = True
        #: Discardable files may be deleted under memory pressure.
        self.discardable = False

    @property
    def page_count(self) -> int:
        """Pages needed for the current size."""
        return pages_for(self.size) if self.size else 0

    def __repr__(self) -> str:
        return f"Inode(ino={self.ino}, {self.kind.value}, size={self.size})"


class FileSystem(abc.ABC):
    """Base for the memory file systems.

    Subclasses implement block storage (:meth:`allocate_blocks`,
    :meth:`free_blocks`, :meth:`charge_block_lookup`) and expose a
    :meth:`backing_for` used by mmap.
    """

    #: Technology backing file data, for pricing copies.
    tech: MemoryTechnology = MemoryTechnology.DRAM
    #: Whether contents survive :meth:`crash`.
    persistent: bool = False

    def __init__(
        self,
        name: str,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        self.name = name
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self.root = Inode(self, InodeKind.DIR, mode=0o755)

    # ------------------------------------------------------------------
    # Path operations
    # ------------------------------------------------------------------
    @staticmethod
    @complexity("n", note="one part per path component")
    def _split(path: str) -> List[str]:
        if not path.startswith("/"):
            raise FileSystemError(f"paths must be absolute, got {path!r}")
        return [part for part in path.split("/") if part]

    @complexity("n", note="one charge per path component")
    def _walk_to_parent(self, path: str) -> Tuple[Inode, str]:
        """(parent directory inode, final component), charging per hop."""
        parts = self._split(path)
        if not parts:
            raise FileSystemError(f"path {path!r} names the root")
        node = self.root
        for part in parts[:-1]:
            self._clock.advance(self._costs.path_component_ns)
            child = node.children.get(part)
            if child is None or child.kind is not InodeKind.DIR:
                raise FileNotFoundError_(f"{self.name}: no directory {part!r} in {path!r}")
            node = child
        self._clock.advance(self._costs.path_component_ns)
        return node, parts[-1]

    @complexity("n", note="per path component")
    def lookup(self, path: str) -> Inode:
        """Resolve ``path`` to its inode."""
        parent, name = self._walk_to_parent(path)
        child = parent.children.get(name)
        if child is None:
            raise FileNotFoundError_(f"{self.name}: {path!r} does not exist")
        return child

    @complexity("n", note="one path lookup")
    def exists(self, path: str) -> bool:
        """True if ``path`` resolves."""
        try:
            self.lookup(path)
            return True
        except FileNotFoundError_:
            return False

    @complexity("n", note="one walk per missing ancestor, within the path length")
    def makedirs(self, path: str) -> Inode:
        """Create a directory and any missing ancestors (mkdir -p)."""
        parts = self._split(path)
        node = self.root
        prefix = ""
        for part in parts:
            prefix += "/" + part
            child = node.children.get(part)
            if child is None:
                # o1: allow(flow-bounded) -- the ancestors partition the declared n components
                child = self.mkdir(prefix)
            elif child.kind is not InodeKind.DIR:
                raise FileSystemError(f"{self.name}: {prefix!r} is not a directory")
            node = child
        return node

    @complexity("n", note="one path walk")
    def mkdir(self, path: str) -> Inode:
        """Create one directory."""
        parent, name = self._walk_to_parent(path)
        if name in parent.children:
            raise FileExistsError_(f"{self.name}: {path!r} exists")
        self._clock.advance(self._costs.inode_alloc_ns)
        inode = Inode(self, InodeKind.DIR, mode=0o755)
        parent.children[name] = inode
        return inode

    @complexity("n", note="path walk; the storage itself is one extent")
    def create(self, path: str, size: int = 0, mode: int = 0o644) -> Inode:
        """Create a file, pre-allocating ``size`` bytes of storage.

        Pre-allocation at create time is the file-system idiom the paper
        exploits: one (or few) extent allocations up front instead of
        per-page allocations on every fault.
        """
        parent, name = self._walk_to_parent(path)
        if name in parent.children:
            raise FileExistsError_(f"{self.name}: {path!r} exists")
        self._clock.advance(self._costs.inode_alloc_ns)
        self._counters.bump("inode_create")
        inode = Inode(self, InodeKind.FILE, mode=mode)
        parent.children[name] = inode
        if size:
            self.truncate(inode, size)
        return inode

    @complexity("n", note="path walk; the free itself is whole-file")
    def unlink(self, path: str) -> None:
        """Remove a file, freeing its storage — whole-file reclamation."""
        parent, name = self._walk_to_parent(path)
        inode = parent.children.get(name)
        if inode is None:
            raise FileNotFoundError_(f"{self.name}: {path!r} does not exist")
        if inode.kind is InodeKind.DIR and inode.children:
            raise FileSystemError(f"{self.name}: directory {path!r} not empty")
        del parent.children[name]
        inode.nlink -= 1
        if inode.nlink == 0 and inode.kind is InodeKind.FILE:
            self.free_blocks(inode)
            self._counters.bump("inode_unlink")

    @complexity("n", note="block allocation/release for the size delta")
    def truncate(self, inode: Inode, size: int) -> None:
        """Grow (or shrink) a file's allocated storage to ``size`` bytes."""
        if size < 0:
            raise FileSystemError(f"negative size {size}")
        old_pages = inode.page_count
        new_pages = pages_for(size) if size else 0
        if new_pages > old_pages:
            self.allocate_blocks(inode, new_pages - old_pages)
        elif new_pages < old_pages:
            self.shrink_blocks(inode, new_pages)
        inode.size = size

    @complexity("n", note="one path lookup (plus create's walk on miss)")
    def open(self, path: str, create: bool = False, size: int = 0) -> "FileHandle":
        """Open (optionally creating) a file."""
        try:
            inode = self.lookup(path)
        except FileNotFoundError_:
            if not create:
                raise
            inode = self.create(path, size=size)
        return self.open_inode(inode)

    def open_inode(self, inode: Inode) -> "FileHandle":
        """Open a handle to an already-resolved inode (dup/fork path)."""
        if inode.kind is not InodeKind.FILE:
            raise FileSystemError(f"{self.name}: inode {inode.ino} is a directory")
        inode.refcount += 1
        return FileHandle(inode, self._clock, self._costs, self._counters)

    @complexity("n", note="one visit per directory entry")
    def iter_files(self) -> Iterator[Tuple[str, Inode]]:
        """All (path, inode) file pairs, depth-first."""
        stack: List[Tuple[str, Inode]] = [("", self.root)]
        while stack:
            prefix, node = stack.pop()
            # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- each entry is visited once; entries are the declared n
            for name, child in sorted(node.children.items()):
                path = f"{prefix}/{name}"
                if child.kind is InodeKind.DIR:
                    stack.append((path, child))
                else:
                    yield path, child

    # ------------------------------------------------------------------
    # Storage interface for subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def allocate_blocks(self, inode: Inode, nblocks: int) -> None:
        """Extend ``inode``'s storage by ``nblocks`` pages."""

    @abc.abstractmethod
    def shrink_blocks(self, inode: Inode, keep_blocks: int) -> None:
        """Release storage beyond the first ``keep_blocks`` pages."""

    @abc.abstractmethod
    def free_blocks(self, inode: Inode) -> None:
        """Release all storage of ``inode`` (unlink path)."""

    @abc.abstractmethod
    def charge_block_lookup(self, inode: Inode, page_index: int) -> int:
        """Charge the cost of resolving one file page; returns its PFN."""

    @abc.abstractmethod
    def backing_for(self, inode: Inode) -> MemoryBacking:
        """A mmap backing for ``inode``."""

    @complexity("n", note="volatile reset: every file's storage freed once")
    def crash(self) -> None:
        """Power failure: volatile file systems lose everything."""
        if not self.persistent:
            files = list(self.iter_files())
            for _, inode in files:
                # o1: allow(flow-bounded) -- the files partition the declared n blocks
                self.free_blocks(inode)
            self.root = Inode(self, InodeKind.DIR, mode=0o755)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def file_count(self) -> int:
        """Number of regular files."""
        return sum(1 for _ in self.iter_files())

    def used_bytes(self) -> int:
        """Total bytes of allocated file storage."""
        return sum(inode.page_count * PAGE_SIZE for _, inode in self.iter_files())


class FileHandle:
    """An open file: positioned read/write with kernel-copy costs.

    Costs per page touched: one block lookup (page cache or extent) plus
    one line-granularity copy — the standard file API the paper compares
    mapped access against.
    """

    def __init__(
        self,
        inode: Inode,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        self.inode = inode
        self.pos = 0
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise BadFileDescriptorError("handle is closed")

    def close(self) -> None:
        """Drop this handle's reference."""
        if not self._closed:
            self._closed = True
            self.inode.refcount -= 1

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Positioned I/O
    # ------------------------------------------------------------------
    def seek(self, pos: int) -> None:
        """Set the file offset."""
        if pos < 0:
            raise FileSystemError(f"negative seek {pos}")
        self._check_open()
        self.pos = pos

    @complexity("n", note="one positioned pread")
    def read(self, length: int) -> bytes:
        """Read up to ``length`` bytes from the current offset."""
        data = self.pread(self.pos, length)
        self.pos += len(data)
        return data

    @complexity("n", note="one positioned pwrite")
    def write(self, data: bytes) -> int:
        """Write ``data`` at the current offset."""
        written = self.pwrite(self.pos, data)
        self.pos += written
        return written

    @complexity("n", note="per page copied")
    def pread(self, offset: int, length: int) -> bytes:
        """Read without moving the offset; short at EOF."""
        self._check_open()
        if offset >= self.inode.size:
            return b""
        length = min(length, self.inode.size - offset)
        self._charge_copy(offset, length, write=False)
        out = bytearray()
        position = offset
        remaining = length
        while remaining > 0:
            page, start = divmod(position, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - start)
            stored = self.inode.payload.get(page, b"")
            piece = stored[start : start + chunk]
            piece = piece + b"\x00" * (chunk - len(piece))
            out += piece
            position += chunk
            remaining -= chunk
        return bytes(out)

    @complexity("n", note="per page copied")
    def pwrite(self, offset: int, data: bytes) -> int:
        """Write without moving the offset, extending the file if needed."""
        self._check_open()
        end = offset + len(data)
        if end > self.inode.page_count * PAGE_SIZE:
            self.inode.fs.truncate(self.inode, end)
        elif end > self.inode.size:
            self.inode.size = end
        self._charge_copy(offset, len(data), write=True)
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            # The data store is about to become visible: any journal
            # fence this write depends on must already have passed.
            san.on_data_visible(self.inode)
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None and chaos.hit("fs.write.torn") == "torn":
            # Torn write: a prefix of the payload lands, then power fails.
            self._store(offset, data[: len(data) // 2])
            chaos.power_cut("fs.write.torn")
        self._store(offset, data)
        return len(data)

    @complexity("n", note="one payload splice per page written")
    def _store(self, offset: int, data: bytes) -> None:
        """Splice ``data`` into the per-page payload at ``offset``."""
        position = offset
        index = 0
        while index < len(data):
            page, start = divmod(position, PAGE_SIZE)
            chunk = min(len(data) - index, PAGE_SIZE - start)
            stored = bytearray(self.inode.payload.get(page, b""))
            if len(stored) < start + chunk:
                stored.extend(b"\x00" * (start + chunk - len(stored)))
            stored[start : start + chunk] = data[index : index + chunk]
            self.inode.payload[page] = bytes(stored)
            position += chunk
            index += chunk

    @complexity("n", note="one block lookup and one copy per page touched")
    def _charge_copy(self, offset: int, length: int, write: bool) -> None:
        """Kernel-copy cost: per-page lookup + per-line copy + media access."""
        if length <= 0:
            return
        fs = self.inode.fs
        first_page = offset // PAGE_SIZE
        last_page = (offset + length - 1) // PAGE_SIZE
        ras = getattr(self._counters, "ras", None)
        for page in range(first_page, last_page + 1):
            pfn = fs.charge_block_lookup(self.inode, page)
            if ras is not None:
                # Media check per block touched: retries transients on
                # the simulated clock, raises MediaError (EIO) for reads
                # of poisoned/dead media.
                ras.on_file_block(self.inode, pfn, write)
        lines = -(-length // CACHE_LINE)
        media = (
            self._costs.write_ns(fs.tech) if write else self._costs.read_ns(fs.tech)
        )
        # One media access per page (streaming prefetch hides the rest),
        # plus the per-line copy through the kernel.
        pages = last_page - first_page + 1
        self._clock.advance(self._costs.copy_line_ns * lines + media * pages)
        self._counters.bump("file_copy_bytes", length)
