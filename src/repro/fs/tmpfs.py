"""tmpfs: the page-cache-backed memory file system (per-page baseline).

Linux's tmpfs stores file data as individual page-cache pages: every page
is found, allocated and tracked separately through a radix tree.  That
per-page granularity is exactly what the paper's Figure 1 measures — so
this implementation charges one ``pagecache_op_ns`` per page on every
lookup, allocation and populate run, and its :meth:`frame_runs` can never
return a run longer than one page.

Contrast with :mod:`repro.fs.pmfs`, whose extent trees return whole-file
runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import FileSystemError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.lint import complexity, o1
from repro.mem.buddy import BuddyAllocator
from repro.fs.vfs import FileSystem, Inode
from repro.units import PAGE_SIZE
from repro.vm.vma import MemoryBacking


class _TmpfsBacking:
    """mmap backing over one tmpfs inode's page cache."""

    def __init__(self, fs: "Tmpfs", inode: Inode) -> None:
        self._fs = fs
        self._inode = inode
        # COW in the vm layer needs a frame source.
        self._allocator = fs._buddy

    def frame_for(self, page_index: int, write: bool) -> int:
        return self._fs._page_in(self._inode, page_index)

    def frame_runs(self, start_page: int, npages: int) -> Iterator[Tuple[int, int, int]]:
        # Page-cache pages are individually placed: one run per page.
        for page_index in range(start_page, start_page + npages):
            yield page_index, self._fs._page_in(self._inode, page_index), 1

    def release(self, page_index: int, npages: int) -> None:
        # Pages belong to the file, not the mapping; nothing to do until
        # the file is unlinked.
        return None


class Tmpfs(FileSystem):
    """Page-cache memory file system over a DRAM buddy allocator."""

    tech = MemoryTechnology.DRAM
    persistent = False

    def __init__(
        self,
        name: str,
        buddy: BuddyAllocator,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        super().__init__(name, clock, costs, counters)
        self._buddy = buddy
        #: ino -> {page_index -> pfn}: the per-file radix tree.
        self._pages: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Page cache
    # ------------------------------------------------------------------
    def _cache_of(self, inode: Inode) -> Dict[int, int]:
        return self._pages.setdefault(inode.ino, {})

    @o1(note="one radix probe; the cold alloc is the miss path")
    def _page_in(self, inode: Inode, page_index: int) -> int:
        """Find-or-allocate one page-cache page (charged per page)."""
        self._clock.advance(self._costs.pagecache_op_ns)
        self._counters.bump("pagecache_lookup")
        cache = self._cache_of(inode)
        pfn = cache.get(page_index)
        if pfn is None:
            # o1: allow(flow-bounded) -- cold page-in; order-0 allocs hit the exact free list
            pfn = self._buddy.alloc(0)
            self._clock.advance(self._costs.zero_page_ns(PAGE_SIZE))
            cache[page_index] = pfn
            self._counters.bump("pagecache_alloc")
        return pfn

    # ------------------------------------------------------------------
    # FileSystem storage interface
    # ------------------------------------------------------------------
    @complexity("n", note="one page-cache insert per block — the per-page baseline")
    def allocate_blocks(self, inode: Inode, nblocks: int) -> None:
        cache = self._cache_of(inode)
        start = inode.page_count
        for page_index in range(start, start + nblocks):
            if page_index not in cache:
                self._page_in(inode, page_index)

    @complexity("n", note="one free per dropped page-cache page")
    def shrink_blocks(self, inode: Inode, keep_blocks: int) -> None:
        cache = self._cache_of(inode)
        doomed = [p for p in cache if p >= keep_blocks]
        for page_index in doomed:
            self._buddy.free(cache.pop(page_index))
            self._counters.bump("pagecache_free")

    @complexity("n", note="one free per cached page — per-page reclamation")
    def free_blocks(self, inode: Inode) -> None:
        cache = self._pages.pop(inode.ino, {})
        for pfn in cache.values():
            self._buddy.free(pfn)
            self._counters.bump("pagecache_free")
        inode.payload.clear()

    @o1(note="one page-cache probe per block")
    def charge_block_lookup(self, inode: Inode, page_index: int) -> int:
        return self._page_in(inode, page_index)

    def backing_for(self, inode: Inode) -> MemoryBacking:
        return _TmpfsBacking(self, inode)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cached_pages(self, inode: Inode) -> int:
        """Resident page-cache pages for ``inode``."""
        return len(self._pages.get(inode.ino, {}))
