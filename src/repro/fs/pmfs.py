"""PMFS: extent-based persistent-memory file system (after Dulloor [7]).

The file system the paper's Figure 2/7 allocates through.  Three properties
make it the natural substrate for file-only memory:

* **extent allocation** — a file's storage is a handful of contiguous
  runs, allocated with one bitmap update per run, so creating even a
  gigabyte file is O(#extents), not O(#pages);
* **direct access (DAX)** — file data lives in NVM at stable physical
  addresses, so mmap maps those frames directly with no page cache;
* **journaled metadata** — creates/allocations write undo-log records so
  the namespace survives crashes, which :meth:`crash`/:meth:`recover`
  exercise for the paper's persistence-management story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import FileSystemError, NoSpaceError, SimulatedCrashError
from repro.fs.extent import Extent, ExtentTree
from repro.fs.vfs import FileSystem, Inode
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.lint import complexity, o1
from repro.mem.bitmap import Bitmap
from repro.mem.physical import MemoryRegion
from repro.units import PAGE_SIZE
from repro.vm.vma import MemoryBacking


class BlockAllocator:
    """Bitmap-backed extent allocator over one NVM region.

    One bit per 4 KiB block; allocation finds a contiguous clear run
    (next-fit from the last allocation point) and charges per *extent*,
    not per block — "unused blocks are represented by a single bit in a
    bitmap" (§3.1).
    """

    def __init__(
        self,
        region: MemoryRegion,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
    ) -> None:
        self._region = region
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._bitmap = Bitmap(region.frame_count)
        self._hint = 0

    @property
    def free_blocks(self) -> int:
        """Blocks not allocated."""
        return self._bitmap.clear_count

    @property
    def total_blocks(self) -> int:
        """Blocks managed."""
        return self._bitmap.size

    @o1(note="one bitmap run update, any extent size")
    def alloc_extent(self, nblocks: int, align_frames: int = 1) -> Extent:
        """Allocate one contiguous extent of ``nblocks`` blocks.

        ``align_frames`` forces the extent's physical start onto a frame
        boundary (e.g. 512 for 2 MiB alignment) so file-only memory can
        map it with huge pages or linked page-table subtrees.
        """
        if nblocks <= 0:
            raise ValueError(f"nblocks must be positive, got {nblocks}")
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin("extent_alloc", "fs", args={"nblocks": nblocks})
            try:
                return self._alloc_extent(nblocks, align_frames)
            finally:
                tracer.end()
        return self._alloc_extent(nblocks, align_frames)

    @o1(note="one bitmap run update; the run search is the priced slow path")
    def _alloc_extent(self, nblocks: int, align_frames: int) -> Extent:
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None and chaos.hit("pmfs.extent.alloc") == "error":
            raise NoSpaceError(
                f"chaos: injected exhaustion in {self._region.name or 'nvm'}"
            )
        self._clock.advance(self._costs.extent_alloc_ns + self._costs.bitmap_run_ns)
        self._counters.bump("extent_alloc")
        # o1: allow(flow-bounded) -- the bitmap scan is priced as one bitmap_run_ns, the model's slow path
        start = self._find_aligned_run(nblocks, align_frames)
        if start is None:
            raise NoSpaceError(
                f"no contiguous run of {nblocks} blocks "
                f"(align {align_frames}) in {self._region.name or 'nvm'}: "
                f"{self.free_blocks} free but fragmented"
            )
        self._bitmap.set_range(start, nblocks)
        self._hint = start + nblocks
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_nvm_alloc(self, self._region.first_pfn + start, nblocks)
        qos = getattr(self._counters, "qos", None)
        if qos is not None:
            # PMFS block charging: billed to the calling tenant's cgroup
            # (an informational side ledger; no watermark actions).
            qos.on_nvm_alloc(nblocks)
        return Extent(logical=0, pfn=self._region.first_pfn + start, count=nblocks)

    @complexity("n", note="next-fit bitmap scan for an aligned run")
    def _find_aligned_run(self, nblocks: int, align_frames: int) -> Optional[int]:
        if align_frames <= 1:
            return self._bitmap.find_clear_run(nblocks, self._hint)
        # Alignment is relative to physical frame numbers.
        first = self._region.first_pfn
        candidate = self._bitmap.find_clear_run(nblocks, self._hint)
        scanned_from = candidate
        # o1: allow(o1-size-loop, o1-charge-in-loop) -- candidates advance monotonically; one bitmap pass total
        while candidate is not None:
            misalign = (first + candidate) % align_frames
            if misalign == 0:
                return candidate
            next_try = candidate + (align_frames - misalign)
            if next_try + nblocks > self._bitmap.size:
                break
            if self._bitmap.run_is_clear(next_try, nblocks):
                return next_try
            candidate = self._bitmap.find_clear_run(nblocks, next_try + 1)
            if candidate == scanned_from:
                break
        return None

    @complexity("n", note="few extents when contiguity exists; the scan is the fragmentation fallback")
    def alloc_best_effort(self, nblocks: int) -> List[Extent]:
        """Allocate ``nblocks`` as few extents as possible (fragmentation
        fallback): repeatedly grab the largest run available."""
        extents: List[Extent] = []
        remaining = nblocks
        while remaining > 0:
            run = remaining
            start = None
            # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- run halves each probe, a log-bounded search
            while run > 0:
                # o1: allow(flow-bounded) -- the bitmap scan is the priced fragmentation fallback
                start = self._bitmap.find_clear_run(run, self._hint)
                if start is not None:
                    break
                run //= 2
            if start is None or run == 0:
                # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- error-path rollback of the few extents grabbed
                for extent in extents:
                    self.free_extent(extent)
                raise NoSpaceError(
                    f"cannot allocate {nblocks} blocks even fragmented"
                )
            self._clock.advance(
                self._costs.extent_alloc_ns + self._costs.bitmap_run_ns
            )
            self._counters.bump("extent_alloc")
            self._bitmap.set_range(start, run)
            self._hint = start + run
            san = getattr(self._counters, "sanitize", None)
            if san is not None:
                san.on_nvm_alloc(self, self._region.first_pfn + start, run)
            extents.append(
                Extent(logical=0, pfn=self._region.first_pfn + start, count=run)
            )
            remaining -= run
        return extents

    @o1(note="one bitmap test")
    def block_is_free(self, pfn: int) -> bool:
        """Whether the block at ``pfn`` is unallocated."""
        index = pfn - self._region.first_pfn
        if not 0 <= index < self._bitmap.size:
            raise ValueError(
                f"pfn {pfn:#x} outside {self._region.name or 'nvm'}"
            )
        return not self._bitmap.test(index)

    @o1(note="one bitmap bit update")
    def claim_block(self, pfn: int) -> None:
        """Mark one specific *free* block allocated (badblock adoption).

        Unlike :meth:`alloc_extent` this claims an exact block rather
        than searching for a run — the RAS engine uses it to pin a
        failing-but-free block so it can never be handed out again.
        """
        index = pfn - self._region.first_pfn
        if not 0 <= index < self._bitmap.size:
            raise ValueError(
                f"pfn {pfn:#x} outside {self._region.name or 'nvm'}"
            )
        if self._bitmap.test(index):
            raise NoSpaceError(f"block {pfn:#x} is not free")
        self._clock.advance(self._costs.bitmap_run_ns)
        self._counters.bump("extent_alloc")
        self._bitmap.set_range(index, 1)
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_nvm_alloc(self, pfn, 1)

    @o1(note="one bitmap run update")
    def free_extent(self, extent: Extent) -> None:
        """Return an extent's blocks to the bitmap (one run update)."""
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_nvm_free(self, extent.pfn, extent.count)
        self._clock.advance(self._costs.bitmap_run_ns)
        self._counters.bump("extent_free")
        qos = getattr(self._counters, "qos", None)
        if qos is not None:
            qos.on_nvm_free(extent.count)
        self._bitmap.clear_range(extent.pfn - self._region.first_pfn, extent.count)


class _PmfsBacking:
    """DAX mmap backing: file pages map straight to NVM frames.

    ``tracks_frame_meta`` is False: DAX mappings are pfn-based — there is
    no ``struct page`` for the media's frames, so the vm layer performs no
    per-4KiB metadata updates on populate or teardown.  This is exactly
    the coarse-metadata property §3.1 claims for file-managed memory.
    """

    tracks_frame_meta = False

    def __init__(self, fs: "Pmfs", inode: Inode) -> None:
        self._fs = fs
        self._inode = inode
        # COW needs a frame source; private copies of NVM pages come from
        # the same NVM allocator (simplification: one media).
        self._allocator = _CowShim(fs)

    def frame_for(self, page_index: int, write: bool) -> int:
        return self._fs.charge_block_lookup(self._inode, page_index)

    def frame_runs(self, start_page: int, npages: int) -> Iterator[Tuple[int, int, int]]:
        tree = self._fs._tree_of(self._inode)
        for logical, pfn, run in tree.runs(start_page, npages):
            # One extent lookup per run — the extent economy in action.
            self._fs._charge_extent_lookup()
            yield logical, pfn, run

    def release(self, page_index: int, npages: int) -> None:
        return None


@dataclass
class JournalRecord:
    """One durable journal entry (undo log for allocs, redo for frees).

    Lives in NVM: still present after a crash, which is what recovery
    reads.  ``extents`` carry (logical, pfn, count) so both undo (bitmap
    frees) and redo (tree inserts / frees) are possible.
    """

    op: str
    ino: int
    extents: List[Extent] = field(default_factory=list)
    committed: bool = False
    applied: bool = False
    #: shrink records remember the target size for idempotent redo.
    keep_blocks: int = 0
    #: Torn while being made durable: the record's contents cannot be
    #: trusted, so recovery must skip it (and scrub any blocks it leaks).
    corrupted: bool = False
    #: migrate records: the failing extent being vacated.  ``extents``
    #: holds only the freshly allocated replacement, so an uncommitted
    #: crash undoes exactly the new allocation and never the old data.
    migrate_from: Optional[Extent] = None
    #: migrate records: inode number of the badblock list that adopts the
    #: vacated blocks at apply time.
    badblock_ino: int = 0


class _CowShim:
    """Adapter giving the vm layer an ``alloc(0)`` for COW copies."""

    def __init__(self, fs: "Pmfs") -> None:
        self._fs = fs

    def alloc(self, order: int) -> int:
        extent = self._fs.allocator.alloc_extent(1 << order)
        return extent.pfn

    def free(self, pfn: int) -> None:
        self._fs.allocator.free_extent(Extent(logical=0, pfn=pfn, count=1))


class Pmfs(FileSystem):
    """Extent-based persistent-memory FS with journaled metadata."""

    tech = MemoryTechnology.NVM
    persistent = True

    def __init__(
        self,
        name: str,
        allocator: BlockAllocator,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
        dax: bool = True,
        extent_align_frames: int = 1,
    ) -> None:
        super().__init__(name, clock, costs, counters)
        self.allocator = allocator
        self.dax = dax
        #: Force new extents onto this frame alignment (512 = 2 MiB), the
        #: "natural granularities of page table structures" knob.
        self.extent_align_frames = extent_align_frames
        self._trees: Dict[int, ExtentTree] = {}
        #: Undo/redo journal records (they live in NVM, so they survive
        #: crashes and drive :meth:`crash` recovery).
        self.journal: List[JournalRecord] = []
        #: Crash-injection countdown: raises SimulatedCrashError when a
        #: journal tick point is reached with the counter at zero.
        self._crash_countdown: Optional[int] = None
        #: ``callback(ino, first_pfn, count)`` hooks run whenever file
        #: extents stop being valid (free, shrink, migration) so shared
        #: translation caches can drop entries for the vacated media.
        self._extent_invalidators: List = []

    def register_extent_invalidator(self, callback) -> None:
        """Register ``callback(ino, first_pfn, count)`` for extent death.

        Invoked once per extent whenever blocks leave a file — whole-file
        frees (unlink), truncation, and RAS migration — so caches holding
        physical translations into file extents (premapped page-table
        subtrees, PBM shared windows) can invalidate instead of serving
        stale media.
        """
        self._extent_invalidators.append(callback)

    def _notify_extent_invalidators(self, ino: int, first_pfn: int, count: int) -> None:
        # o1: allow(o1-size-loop) -- a handful of registered caches
        for callback in self._extent_invalidators:
            callback(ino, first_pfn, count)

    # ------------------------------------------------------------------
    # Journal — undo log for allocations, redo log for frees
    # ------------------------------------------------------------------
    def schedule_crash(self, ticks: int) -> None:
        """Inject a power failure ``ticks`` journal steps from now.

        Tick points sit between every durable metadata step, so tests can
        crash the file system in every interesting window and verify
        recovery.  The countdown decrements *at* each tick point and the
        crash fires when a tick point is reached with the counter already
        at zero — so for a one-extent allocation:

        * ``ticks=0`` fires **after** the first extent is allocated from
          the bitmap and recorded in the (uncommitted) journal entry —
          i.e. after the first journaled write, not before it (the
          pre-first-write window has no tick point; nothing durable has
          happened yet, so there is nothing to recover);
        * ``ticks=1`` fires at commit-pre: all extents recorded,
          ``committed`` still False (undo window);
        * ``ticks=2`` fires at commit-post: committed but not applied
          (redo window).

        A multi-extent allocation inserts one extra tick per additional
        extent between 0 and commit-pre.  ``tests/test_fs_pmfs_crash.py::
        TestTickSemantics`` nails this mapping down.  For kernel-wide,
        named injection points prefer :mod:`repro.chaos`.
        """
        if ticks < 0:
            raise ValueError(f"ticks must be >= 0, got {ticks}")
        self._crash_countdown = ticks

    def _tick(self) -> None:
        if self._crash_countdown is None:
            return
        if self._crash_countdown == 0:
            self._crash_countdown = None
            raise SimulatedCrashError(f"{self.name}: injected power failure")
        self._crash_countdown -= 1

    def _journal_begin(self, op: str, ino: int) -> "JournalRecord":
        self._clock.advance(self._costs.journal_record_ns)
        self._counters.bump("journal_record")
        record = JournalRecord(op=op, ino=ino)
        self.journal.append(record)
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_journal_begin(self, record)
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None:
            chaos.hit("pmfs.journal.begin")
        return record

    def _journal_commit(self, record: "JournalRecord") -> None:
        self._tick()
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None and chaos.hit("pmfs.journal.commit.pre") == "corrupt":
            # The commit write is torn: the record is unreadable and the
            # machine loses power before anything else happens.
            record.corrupted = True
            chaos.power_cut("pmfs.journal.commit.pre")
        self._clock.advance(self._costs.journal_record_ns // 2)
        self._counters.bump("journal_commit")
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "journal_commit",
                "fs",
                args={"op": record.op, "ino": record.ino},
            )
        record.committed = True
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_journal_commit(self, record)
        self._tick()
        if chaos is not None:
            chaos.hit("pmfs.journal.commit.post")

    def _charge_extent_lookup(self) -> None:
        self._clock.advance(self._costs.extent_lookup_ns)
        self._counters.bump("extent_lookup")

    def _tree_of(self, inode: Inode) -> ExtentTree:
        tree = self._trees.get(inode.ino)
        if tree is None:
            tree = self._trees[inode.ino] = ExtentTree(
                tracer=self._counters.tracer
            )
        return tree

    # ------------------------------------------------------------------
    # FileSystem storage interface
    # ------------------------------------------------------------------
    @o1(note="one journal record + one extent in the aligned common case")
    def allocate_blocks(self, inode: Inode, nblocks: int) -> None:
        """Grow a file by ``nblocks``, crash-safely.

        Protocol: journal-begin, allocate extents from the bitmap (each
        recorded in the journal entry *after* it is durably allocated),
        commit, then apply (insert into the extent tree).  A crash before
        commit is undone (bitmap frees); after commit it is redone (tree
        inserts) — see :meth:`crash`.
        """
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            tracer.begin(
                "fs_alloc_blocks",
                "fs",
                args={"ino": inode.ino, "nblocks": nblocks},
            )
            try:
                # o1: allow(flow-bounded) -- one extent in the common case; pieces only under fragmentation
                return self._allocate_blocks(inode, nblocks)
            finally:
                tracer.end()
        # o1: allow(flow-bounded) -- one extent in the common case; pieces only under fragmentation
        return self._allocate_blocks(inode, nblocks)

    @complexity("n", note="journaled extent allocation; pieces only under fragmentation")
    def _allocate_blocks(self, inode: Inode, nblocks: int) -> None:
        tree = self._tree_of(inode)
        logical = tree.block_count
        record = self._journal_begin("alloc", inode.ino)
        try:
            extent = self.allocator.alloc_extent(
                nblocks, align_frames=self.extent_align_frames
            )
            pieces = [extent]
        except NoSpaceError:
            try:
                pieces = self.allocator.alloc_best_effort(nblocks)
            except NoSpaceError:
                san = getattr(self._counters, "sanitize", None)
                if san is not None:
                    # The transaction dies before its commit: close the
                    # epoch so later writes to this inode aren't blamed.
                    san.on_journal_abort(self, record)
                raise
        for piece in pieces:
            record.extents.append(
                Extent(logical=logical, pfn=piece.pfn, count=piece.count)
            )
            logical += piece.count
            self._tick()
        self._journal_commit(record)
        self._apply_alloc(record)

    @complexity("n", note="one tree insert per journaled extent")
    def _apply_alloc(self, record: "JournalRecord") -> None:
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_journal_apply(self, record)
        tree = self._trees.get(record.ino)
        if tree is None:
            tree = self._trees[record.ino] = ExtentTree(
                tracer=self._counters.tracer
            )
        for extent in record.extents:
            if tree.lookup(extent.logical) is None:
                tree.insert(extent)
        record.applied = True

    @complexity("n", note="one journaled record covering the tail extents")
    def shrink_blocks(self, inode: Inode, keep_blocks: int) -> None:
        """Truncate a file's tail, crash-safely (redo-logged frees)."""
        tree = self._tree_of(inode)
        record = self._journal_begin("shrink", inode.ino)
        for extent in tree.extents():
            if extent.logical_end <= keep_blocks:
                continue
            if extent.logical >= keep_blocks:
                record.extents.append(extent)
            else:
                keep = keep_blocks - extent.logical
                record.extents.append(
                    Extent(
                        extent.logical + keep,
                        extent.pfn + keep,
                        extent.count - keep,
                    )
                )
        record.keep_blocks = keep_blocks
        self._journal_commit(record)
        self._apply_shrink(record)

    @complexity("n", note="tree rebuild plus one free per journaled extent")
    def _apply_shrink(self, record: "JournalRecord") -> None:
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_journal_apply(self, record)
        tree = self._trees.get(record.ino)
        if tree is not None:
            survivors: List[Extent] = []
            for extent in tree.remove_all():
                if extent.logical_end <= record.keep_blocks:
                    survivors.append(extent)
                elif extent.logical < record.keep_blocks:
                    keep = record.keep_blocks - extent.logical
                    survivors.append(Extent(extent.logical, extent.pfn, keep))
            for extent in survivors:
                tree.insert(extent)
        for extent in record.extents:
            # Invalidate cached translations (premap tables, PBM shared
            # subtrees) before the free: once the allocator reclaims the
            # blocks, any surviving translation dangles into memory the
            # next allocation may own.
            self._notify_extent_invalidators(record.ino, extent.pfn, extent.count)
            self.allocator.free_extent(extent)
        record.applied = True

    @o1(note="whole-file free: one journaled record")
    def free_blocks(self, inode: Inode) -> None:
        """Release all of a file's storage, crash-safely."""
        tree = self._trees.get(inode.ino)
        if tree is None:
            return
        tracer = self._counters.tracer
        traced = tracer is not None and tracer.enabled
        if traced:
            tracer.begin("fs_free_blocks", "fs", args={"ino": inode.ino})
        try:
            record = self._journal_begin("free", inode.ino)
            record.extents = tree.extents()
            self._journal_commit(record)
            # o1: allow(flow-bounded) -- one free per extent; the extent design keeps those few
            self._apply_free(record)
            inode.payload.clear()
        finally:
            if traced:
                tracer.end()

    @complexity("n", note="one free per journaled extent")
    def _apply_free(self, record: "JournalRecord") -> None:
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_journal_apply(self, record)
        tree = self._trees.pop(record.ino, None)
        if tree is not None:
            tree.remove_all()
        for extent in record.extents:
            # Same ordering as the truncate path: drop cached
            # translations before the blocks become reallocatable.
            self._notify_extent_invalidators(record.ino, extent.pfn, extent.count)
            self.allocator.free_extent(extent)
        record.applied = True

    @o1(note="one charged extent-tree bisect")
    def charge_block_lookup(self, inode: Inode, page_index: int) -> int:
        self._charge_extent_lookup()
        found = self._tree_of(inode).lookup(page_index)
        if found is None:
            # Hole: PMFS pre-allocates on truncate, so this means the file
            # is being written past EOF — extend by the missing amount.
            tree = self._tree_of(inode)
            missing = page_index + 1 - tree.block_count
            self.allocate_blocks(inode, missing)
            found = tree.lookup(page_index)
            assert found is not None
        return found[0]

    def backing_for(self, inode: Inode) -> MemoryBacking:
        return _PmfsBacking(self, inode)

    # ------------------------------------------------------------------
    # RAS: badblock adoption & live-extent migration (journaled)
    # ------------------------------------------------------------------
    @o1(note="one claimed bit + one journal record; badblock tree is tiny")
    def adopt_badblock(self, badblock_inode: Inode, pfn: int) -> None:
        """Persist one *free* NVM block onto the badblock list, crash-safely.

        Reuses the alloc journal protocol: begin, claim the exact bit,
        record the extent, commit, apply.  A crash before commit undoes
        the claim (the scrubber re-finds and re-adopts the frame after
        recovery); a crash after commit redoes the tree insert.  Either
        way :meth:`fsck`'s one-owner invariant holds — the badblock file
        owns the quarantined block.
        """
        tree = self._tree_of(badblock_inode)
        if self._tree_claims(tree, pfn):
            return
        # o1: allow(o1-size-loop) -- one extent per retired frame, few total
        ends = [extent.logical_end for extent in tree.extents()]
        next_logical = max(ends, default=0)
        record = self._journal_begin("alloc", badblock_inode.ino)
        self.allocator.claim_block(pfn)
        record.extents.append(Extent(logical=next_logical, pfn=pfn, count=1))
        self._tick()
        self._journal_commit(record)
        # o1: allow(flow-bounded) -- the record holds one single-block extent
        self._apply_alloc(record)
        self._counters.bump("ras_badblock_persisted")

    @complexity("n", note="repair path: scans one file's extents for the block")
    def migrate_block(
        self, inode: Inode, bad_pfn: int, badblock_inode: Inode
    ) -> int:
        """Move one failing block's data to fresh media, crash-safely.

        Protocol: journal-begin, allocate the replacement block (recorded
        in ``extents`` so an uncommitted crash undoes exactly that),
        remember the vacated extent in ``migrate_from``, copy the data
        old→new *before* commit, commit, then apply — remap the file's
        extent tree onto the new block and quarantine the old one on the
        badblock list.  Returns the new block's pfn.  The caller owns
        translation teardown (PTEs/TLB); the registered extent
        invalidators fire here for the shared caches.
        """
        tree = self._tree_of(inode)
        logical = None
        # o1: allow(o1-size-loop) -- per extent of one file (repair path)
        for extent in tree.extents():
            if extent.pfn <= bad_pfn < extent.pfn + extent.count:
                logical = extent.logical + (bad_pfn - extent.pfn)
                break
        if logical is None:
            raise FileSystemError(
                f"block {bad_pfn:#x} is not mapped by ino {inode.ino}"
            )
        chaos = getattr(self._counters, "chaos", None)
        if chaos is not None:
            chaos.hit("ras.migrate.extent")
        record = self._journal_begin("migrate", inode.ino)
        record.badblock_ino = badblock_inode.ino
        try:
            new = self.allocator.alloc_extent(1)
        except NoSpaceError:
            san = getattr(self._counters, "sanitize", None)
            if san is not None:
                san.on_journal_abort(self, record)
            raise
        record.extents.append(Extent(logical=logical, pfn=new.pfn, count=1))
        record.migrate_from = Extent(logical=logical, pfn=bad_pfn, count=1)
        self._tick()
        # Copy the data off the failing media before commit: if power
        # dies here, undo releases the new block and the old data — still
        # the only durable copy — is untouched.
        self._clock.advance(self._costs.ras_migrate_block_ns)
        self._journal_commit(record)
        self._apply_migrate(record)
        return new.pfn

    @complexity("n", note="extent split/remap around the migrated block")
    def _apply_migrate(self, record: "JournalRecord") -> None:
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            san.on_journal_apply(self, record)
        old = record.migrate_from
        assert old is not None and record.extents, "malformed migrate record"
        new = record.extents[0]
        tree = self._trees.get(record.ino)
        found = tree.lookup(old.logical) if tree is not None else None
        if found is not None and found[0] == old.pfn:
            # Remap: split the containing extent around the migrated
            # block and point its logical position at the new media.
            rebuilt: List[Extent] = []
            for extent in tree.remove_all():
                if extent.logical <= old.logical < extent.logical_end:
                    before = old.logical - extent.logical
                    if before:
                        rebuilt.append(
                            Extent(extent.logical, extent.pfn, before)
                        )
                    rebuilt.append(Extent(old.logical, new.pfn, old.count))
                    after = extent.logical_end - (old.logical + old.count)
                    if after:
                        rebuilt.append(
                            Extent(
                                old.logical + old.count,
                                extent.pfn + before + old.count,
                                after,
                            )
                        )
                else:
                    rebuilt.append(extent)
            for extent in rebuilt:
                tree.insert(extent)
        # Quarantine the vacated block on the badblock list: its bitmap
        # bit stays set and the badblock inode becomes its owner, so
        # fsck's one-owner invariant holds and the block can never be
        # reallocated.
        bad_tree = self._trees.get(record.badblock_ino)
        if bad_tree is None:
            bad_tree = self._trees[record.badblock_ino] = ExtentTree(
                tracer=self._counters.tracer
            )
        if not self._tree_claims(bad_tree, old.pfn):
            next_logical = max(
                (extent.logical_end for extent in bad_tree.extents()),
                default=0,
            )
            bad_tree.insert(Extent(next_logical, old.pfn, old.count))
            self._counters.bump("ras_badblock_persisted")
        self._notify_extent_invalidators(record.ino, old.pfn, old.count)
        record.applied = True

    @staticmethod
    def _tree_claims(tree: ExtentTree, pfn: int) -> bool:
        # o1: allow(o1-size-loop) -- badblock tree: one extent per frame
        return any(
            extent.pfn <= pfn < extent.pfn + extent.count
            for extent in tree.extents()
        )

    @complexity("n", note="repair path: scans file extents for the owner")
    def owner_of_block(self, pfn: int) -> Optional[Inode]:
        """The inode owning the allocated block at ``pfn``, if any."""
        owner_ino: Optional[int] = None
        for ino, tree in self._trees.items():
            if self._tree_claims(tree, pfn):
                owner_ino = ino
                break
        if owner_ino is None:
            return None
        # o1: allow(flow-bounded) -- one directory walk after the tree scan, within the declared n
        for _path, inode in self.iter_files():
            if inode.ino == owner_ino:
                return inode
        return None

    # ------------------------------------------------------------------
    # mmap integration
    # ------------------------------------------------------------------
    @property
    def mmap_setup_extra_ns(self) -> int:
        """Extra constant mmap cost: the DAX setup path (~7 us slower than
        tmpfs in the paper's student measurements: 15 us vs 8 us)."""
        return self._costs.dax_setup_ns if self.dax else 0

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    @complexity("n", note="one replay pass over the journal")
    def crash(self) -> None:
        """Power failure: replay the journal to a consistent state.

        Uncommitted records are *undone* (their bitmap allocations
        released); committed-but-unapplied records are *redone* (applied
        idempotently).  Records torn mid-commit (``corrupted``) cannot be
        trusted in either direction: replay skips them and a scrub pass
        frees any blocks they leaked, so replay stays idempotent even
        under journal corruption.  After recovery, :func:`fsck` holds.
        """
        self._crash_countdown = None
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            # Power was lost: volatile shadow state (translations, open
            # journal epochs) is gone before any replay runs.
            san.on_fs_crash(self)
        tracer = self._counters.tracer
        traced = tracer is not None and tracer.enabled
        if traced:
            tracer.begin(
                "journal_replay", "fs", args={"records": len(self.journal)}
            )
        corrupted_seen = False
        for record in self.journal:
            self._clock.advance(self._costs.journal_record_ns // 2)
            self._counters.bump("journal_replay")
            if record.corrupted:
                # Torn record: extents/op may be garbage.  Don't undo or
                # redo from it; the scrub below reclaims what it leaked.
                corrupted_seen = True
                self._counters.bump("journal_corrupt_skipped")
                continue
            if record.applied:
                continue
            if not record.committed:
                if record.op in ("alloc", "migrate"):
                    # Undo: the extents were taken from the bitmap but
                    # never became part of any file.  (For migrate that
                    # is only the replacement block — the failing extent
                    # still holds the sole durable copy of the data.)
                    # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- few extents per undone record
                    for extent in record.extents:
                        self.allocator.free_extent(extent)
                # Uncommitted frees/shrinks changed nothing durable.
                continue
            # Committed but not applied: redo.  The commit already made it
            # durable before the crash, so applying here is inside the
            # original transaction's fence.
            if record.op == "alloc":
                self._apply_alloc(record)  # o1: allow(persist-outside-txn, flow-bounded) -- committed redo; records partition the replay
            elif record.op == "shrink":
                self._apply_shrink(record)  # o1: allow(persist-outside-txn, flow-bounded) -- committed redo; records partition the replay
            elif record.op == "free":
                self._apply_free(record)  # o1: allow(persist-outside-txn, flow-bounded) -- committed redo; records partition the replay
            elif record.op == "migrate":
                self._apply_migrate(record)  # o1: allow(persist-outside-txn, flow-bounded) -- committed redo; records partition the replay
        self.journal.clear()
        if corrupted_seen:
            self._scrub()
        if traced:
            tracer.end()

    @complexity("n", note="one pass over the trees and the block bitmap")
    def _scrub(self) -> None:
        """Free allocated blocks owned by no file.

        After replay the extent trees are the only ground truth; any
        bitmap bit set outside them was leaked by a record recovery could
        not trust.  Bits are re-checked individually so scrubbing is safe
        to run (and re-run) against any bitmap state.
        """
        claimed = set()
        for tree in self._trees.values():
            # o1: allow(o1-size-loop, o1-charge-in-loop, o1-nested-size-loop) -- extents across all trees fit the declared n
            for extent in tree.extents():
                claimed.update(range(extent.pfn, extent.pfn + extent.count))
        region = self.allocator._region
        bitmap = self.allocator._bitmap
        san = getattr(self._counters, "sanitize", None)
        scrubbed = 0
        for index in range(bitmap.size):
            if bitmap.test(index) and region.first_pfn + index not in claimed:
                if san is not None:
                    # Leaked block reclaim, not a free of a live
                    # allocation: skip the double-free check.
                    san.on_nvm_free(
                        self.allocator, region.first_pfn + index, 1, check=False
                    )
                bitmap.clear_range(index, 1)
                scrubbed += 1
        if scrubbed:
            self._clock.advance(self._costs.bitmap_run_ns * scrubbed)
            self._counters.bump("recovery_scrub_blocks", scrubbed)

    def fsck(self) -> List[str]:
        """Consistency check: every allocated block belongs to exactly
        one file extent.  Returns human-readable problems (empty = clean).
        """
        problems: List[str] = []
        claimed: Dict[int, int] = {}
        for ino, tree in self._trees.items():
            for extent in tree.extents():
                for pfn in range(extent.pfn, extent.pfn + extent.count):
                    if pfn in claimed:
                        problems.append(
                            f"block {pfn} claimed by ino {claimed[pfn]} "
                            f"and ino {ino}"
                        )
                    claimed[pfn] = ino
        region = self.allocator._region
        bitmap = self.allocator._bitmap
        for index in range(bitmap.size):
            pfn = region.first_pfn + index
            allocated = bitmap.test(index)
            if allocated and pfn not in claimed:
                problems.append(f"block {pfn} allocated but owned by no file")
            elif not allocated and pfn in claimed:
                problems.append(
                    f"block {pfn} owned by ino {claimed[pfn]} but free in bitmap"
                )
        return problems

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def extent_count(self, inode: Inode) -> int:
        """Extents backing ``inode`` (1 = perfectly contiguous)."""
        return self._tree_of(inode).extent_count
