"""DAX helpers: direct access to file frames, bypassing the page cache.

With file data resident in byte-addressable NVM, mmap can install
translations straight to the media's frames — no page cache, no copy.
"Given that data is already in memory, it is natural to simply expose that
data to programs directly rather than forcing the kernel to interpose on
every access" (§3/§4).

These helpers are consumed by the kernel's mmap path and by file-only
memory when deciding whether a file can be mapped extent-at-a-time.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.fs.pmfs import Pmfs
from repro.fs.vfs import FileSystem, Inode
from repro.units import PAGE_SIZE


def is_dax(fs: FileSystem) -> bool:
    """True if mappings of this file system go direct to media frames."""
    return isinstance(fs, Pmfs) and fs.dax


def mmap_setup_extra_ns(fs: FileSystem) -> int:
    """Extra constant mmap cost the file system imposes (0 for tmpfs)."""
    return getattr(fs, "mmap_setup_extra_ns", 0)


def direct_map_runs(inode: Inode) -> Iterator[Tuple[int, int, int]]:
    """(file_page, pfn, run_pages) for a whole DAX file, extent order.

    The enumeration that makes O(1)-per-extent mapping possible: a
    single-extent file yields exactly one run regardless of size.
    """
    fs = inode.fs
    if not is_dax(fs):
        raise ValueError(
            f"file system {fs.name!r} is not DAX; only PMFS files have "
            f"stable media frames"
        )
    npages = inode.page_count
    if npages == 0:
        return
    backing = fs.backing_for(inode)
    yield from backing.frame_runs(0, npages)


def largest_natural_alignment(inode: Inode) -> int:
    """Largest page-table-natural granularity every extent satisfies.

    Returns bytes (1 GiB, 2 MiB or 4 KiB): the page size file-only memory
    may use to map this file, which depends on how the allocator aligned
    its extents.
    """
    fs = inode.fs
    if not isinstance(fs, Pmfs):
        return PAGE_SIZE
    best = 1 << 30  # start optimistic at 1 GiB
    tree = fs._tree_of(inode)
    if tree.extent_count == 0:
        return PAGE_SIZE
    for extent in tree.extents():
        start = extent.pfn * PAGE_SIZE
        size = extent.count * PAGE_SIZE
        while best > PAGE_SIZE and (start % best or size % best):
            best //= 512
        if best < PAGE_SIZE:
            best = PAGE_SIZE
    return max(best, PAGE_SIZE)
