"""Storage-utilization model behind the "memory as storage" motivation.

Paper §2 cites Agrawal et al.'s five-year Microsoft study: "the mean and
median file system utilization was below 50%", because disks fill slowly
and get replaced when they near capacity.  The implication the paper draws:
when storage moves into NVM, the same pattern leaves "vast amounts of
memory provisioned for future persistent data but currently unused" —
free capacity O(1) memory can spend.

The model reproduces that fleet shape: each simulated machine's
utilization follows a replacement lifecycle (fill linearly, replace with a
bigger device at a threshold), yielding a fleet whose mean utilization
sits in the 35-55% band of the study.  Deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.units import GIB


@dataclass(frozen=True)
class FleetStats:
    """Summary of a simulated fleet's utilization."""

    mean_utilization: float
    median_utilization: float
    total_capacity_bytes: int
    total_used_bytes: int

    @property
    def excess_capacity_bytes(self) -> int:
        """Provisioned-but-unused bytes: the O(1) memory budget."""
        return self.total_capacity_bytes - self.total_used_bytes


class UtilizationModel:
    """Fleet of machines with replacement-lifecycle storage utilization."""

    def __init__(
        self,
        seed: int = 2017,
        replace_threshold: float = 0.75,
        initial_capacity_bytes: int = 256 * GIB,
        growth_factor: float = 3.0,
        fill_bytes_per_epoch: int = 4 * GIB,
    ) -> None:
        if not 0.0 < replace_threshold <= 1.0:
            raise ValueError("replace_threshold must be in (0, 1]")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1.0")
        self._rng = random.Random(seed)
        self._replace_threshold = replace_threshold
        self._initial_capacity = initial_capacity_bytes
        self._growth_factor = growth_factor
        self._fill_per_epoch = fill_bytes_per_epoch

    def machine_utilization(self, epochs: int) -> float:
        """Utilization of one machine after ``epochs`` of its lifecycle.

        Data grows by a jittered amount each epoch; crossing the
        replacement threshold swaps in a device ``growth_factor`` bigger
        (data is carried over), dropping utilization — the sawtooth that
        keeps the fleet mean low.
        """
        capacity = self._initial_capacity
        used = int(capacity * self._rng.uniform(0.05, 0.30))
        for _ in range(epochs):
            used += int(self._fill_per_epoch * self._rng.uniform(0.3, 1.7))
            if used >= capacity * self._replace_threshold:
                capacity = int(capacity * self._growth_factor)
        return min(1.0, used / capacity)

    def sample_fleet(self, machines: int, max_epochs: int = 120) -> List[float]:
        """Utilizations for a fleet at random lifecycle points."""
        if machines <= 0:
            raise ValueError(f"machines must be positive, got {machines}")
        return [
            self.machine_utilization(self._rng.randrange(max_epochs))
            for _ in range(machines)
        ]

    def fleet_stats(
        self, machines: int, capacity_bytes: int = 6 * 1024 * GIB
    ) -> FleetStats:
        """Aggregate stats for a fleet of NVM machines of equal capacity.

        ``capacity_bytes`` defaults to the paper's "6TB of storage in a
        2-socket server" 3D XPoint projection.
        """
        samples = sorted(self.sample_fleet(machines))
        mean = sum(samples) / len(samples)
        mid = len(samples) // 2
        median = (
            samples[mid]
            if len(samples) % 2
            else (samples[mid - 1] + samples[mid]) / 2
        )
        total_capacity = machines * capacity_bytes
        total_used = int(mean * total_capacity)
        return FleetStats(
            mean_utilization=mean,
            median_utilization=median,
            total_capacity_bytes=total_capacity,
            total_used_bytes=total_used,
        )
