"""Extent trees: file-block to physical-frame translation in long runs.

"Modern file systems, when possible, translate addresses in long extents
(e.g., Ext4, NTFS) rather than individual blocks" (§3.1).  An extent maps
a contiguous run of logical file blocks to a contiguous run of physical
frames with one fixed-size record, which is what lets file-only memory map
a whole file in O(#extents) instead of O(#pages) — and in O(1) when the
allocator produces single-extent files.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import FileSystemError
from repro.lint import o1


@dataclass(frozen=True)
class Extent:
    """One run: file blocks [logical, logical+count) -> frames [pfn, pfn+count)."""

    logical: int
    pfn: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"extent count must be positive, got {self.count}")
        if self.logical < 0 or self.pfn < 0:
            raise ValueError("extent offsets must be non-negative")

    @property
    def logical_end(self) -> int:
        """One past the last logical block covered."""
        return self.logical + self.count

    def covers(self, logical_block: int) -> bool:
        """True if this extent translates ``logical_block``."""
        return self.logical <= logical_block < self.logical_end

    def pfn_of(self, logical_block: int) -> int:
        """Frame backing ``logical_block`` (caller checked covers())."""
        return self.pfn + (logical_block - self.logical)

    def abuts(self, other: "Extent") -> bool:
        """True if ``other`` continues this extent both logically and physically."""
        return (
            other.logical == self.logical_end
            and other.pfn == self.pfn + self.count
        )


class ExtentTree:
    """Sorted, non-overlapping extent map for one file.

    Kept as a sorted list (files in this simulator have few extents by
    design — that is the whole point); lookup is a binary search.
    """

    def __init__(self, tracer: Optional[object] = None) -> None:
        self._extents: List[Extent] = []
        self._logicals: List[int] = []
        #: Optional :class:`repro.obs.trace.Tracer`; inserts and merges
        #: emit instant trace events when it is enabled.
        self.tracer = tracer

    @property
    def extent_count(self) -> int:
        """Number of extent records (the O(1) design drives this to 1)."""
        return len(self._extents)

    @property
    def block_count(self) -> int:
        """Total logical blocks mapped."""
        return sum(extent.count for extent in self._extents)

    def extents(self) -> List[Extent]:
        """All extents, ascending by logical block."""
        return list(self._extents)

    @o1(note="bisect insert + bounded neighbor merge")
    def insert(self, extent: Extent) -> None:
        """Add an extent; merges with an abutting predecessor."""
        index = bisect.bisect_left(self._logicals, extent.logical)
        if index > 0:
            prev = self._extents[index - 1]
            if prev.logical_end > extent.logical:
                raise FileSystemError(f"{extent!r} overlaps {prev!r}")
        if index < len(self._extents):
            nxt = self._extents[index]
            if extent.logical_end > nxt.logical:
                raise FileSystemError(f"{extent!r} overlaps {nxt!r}")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(
                "extent_insert",
                "fs",
                args={
                    "logical": extent.logical,
                    "pfn": extent.pfn,
                    "count": extent.count,
                },
            )
        # Merge with the predecessor when physically contiguous.
        if index > 0 and self._extents[index - 1].abuts(extent):
            prev = self._extents[index - 1]
            merged = Extent(prev.logical, prev.pfn, prev.count + extent.count)
            self._extents[index - 1] = merged
            self._maybe_merge_forward(index - 1)
            return
        self._extents.insert(index, extent)
        self._logicals.insert(index, extent.logical)
        self._maybe_merge_forward(index)

    def _maybe_merge_forward(self, index: int) -> None:
        if index + 1 < len(self._extents) and self._extents[index].abuts(
            self._extents[index + 1]
        ):
            left = self._extents[index]
            right = self._extents.pop(index + 1)
            self._logicals.pop(index + 1)
            self._extents[index] = Extent(
                left.logical, left.pfn, left.count + right.count
            )

    @o1(note="one bisect")
    def lookup(self, logical_block: int) -> Optional[Tuple[int, int]]:
        """(pfn, run_remaining) for ``logical_block``, or None if a hole.

        ``run_remaining`` is how many blocks from here stay contiguous —
        the walker/mapper uses it to batch work per extent.
        """
        index = bisect.bisect_right(self._logicals, logical_block) - 1
        if index < 0:
            return None
        extent = self._extents[index]
        if not extent.covers(logical_block):
            return None
        return (
            extent.pfn_of(logical_block),
            extent.logical_end - logical_block,
        )

    def runs(self, start_block: int, nblocks: int) -> Iterator[Tuple[int, int, int]]:
        """(logical_block, pfn, run_len) covering ``[start, start+nblocks)``.

        Raises on holes: simulated files are fully allocated (the
        space-for-time trade).
        """
        block = start_block
        end = start_block + nblocks
        while block < end:
            found = self.lookup(block)
            if found is None:
                raise FileSystemError(
                    f"hole at logical block {block}; file is not fully allocated"
                )
            pfn, remaining = found
            run = min(remaining, end - block)
            yield block, pfn, run
            block += run

    def remove_all(self) -> List[Extent]:
        """Drop every extent, returning them for the allocator to free."""
        extents = self._extents
        self._extents = []
        self._logicals = []
        return extents
