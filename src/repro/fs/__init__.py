"""File systems: the substrate file-only memory is built on.

The paper's central observation is that "operating systems already know
how to manage large quantities of persistent data efficiently through the
file system": coarse whole-file metadata, extent-based translation, one
bit per free block.  This package supplies those mechanisms:

* :mod:`repro.fs.vfs` — inodes, directories, file handles, path walking;
* :mod:`repro.fs.extent` — extent trees mapping file blocks to frames;
* :mod:`repro.fs.tmpfs` — page-cache-backed memory FS (per-page, baseline);
* :mod:`repro.fs.pmfs` — extent-based persistent-memory FS with a block
  bitmap and metadata journal, after Dulloor et al.'s PMFS [7];
* :mod:`repro.fs.dax` — helpers for direct (page-cache-less) mappings;
* :mod:`repro.fs.utilization` — the Agrawal-style utilization model behind
  the "memory as storage" motivation (§2).
"""

from repro.fs.extent import Extent, ExtentTree
from repro.fs.vfs import FileHandle, FileSystem, Inode, InodeKind
from repro.fs.tmpfs import Tmpfs
from repro.fs.pmfs import BlockAllocator, Pmfs
from repro.fs.utilization import UtilizationModel

__all__ = [
    "BlockAllocator",
    "Extent",
    "ExtentTree",
    "FileHandle",
    "FileSystem",
    "Inode",
    "InodeKind",
    "Pmfs",
    "Tmpfs",
    "UtilizationModel",
]
