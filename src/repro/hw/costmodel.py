"""Calibrated latency parameters for the simulated machine.

Every cost the simulator charges comes from one :class:`CostModel` instance,
so experiments can vary a single parameter (e.g. NVM write latency) and
every subsystem sees it.  The defaults are calibrated against the absolute
numbers the paper reports (see DESIGN.md "Calibrated cost-model anchors"):

* ``mmap(MAP_PRIVATE)`` on tmpfs lands near 8 us, on DAX near 15 us;
* pre-populating PTEs costs roughly 1 us/page (linear in file size);
* a demand minor fault costs a few microseconds, so touching every page of
  a large mapping is >50x the cost of walking pre-populated tables;
* PMFS file allocation tracks malloc within a few percent.

The values are in the range of published micro-architecture measurements
(Skylake-era syscall ~150 ns bare, but several hundred ns to microseconds
for the full kernel path; DRAM ~80 ns; 3D XPoint reads ~300 ns).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, replace
from typing import Dict


class MemoryTechnology(enum.Enum):
    """Backing technology of a physical-memory region."""

    DRAM = "dram"
    NVM = "nvm"  # 3D XPoint / PCM class persistent memory


@dataclass(frozen=True)
class CostModel:
    """Latency parameters (integer nanoseconds) for the simulated machine.

    Instances are frozen; use :meth:`with_overrides` to derive variants for
    sensitivity studies.
    """

    # ------------------------------------------------------------------
    # Raw memory-access latencies by technology and cache level.
    # ------------------------------------------------------------------
    l1_hit_ns: int = 1
    l2_hit_ns: int = 4
    llc_hit_ns: int = 14
    dram_read_ns: int = 80
    dram_write_ns: int = 80
    nvm_read_ns: int = 300
    nvm_write_ns: int = 600

    # ------------------------------------------------------------------
    # Kernel crossings.
    # ------------------------------------------------------------------
    #: User->kernel transition for a syscall, including register save and
    #: kernel dispatch (paper-era KPTI-less machine).
    syscall_entry_ns: int = 300
    syscall_exit_ns: int = 200
    #: Exception entry for a page fault: trap, fault-frame setup, and the
    #: generic fault dispatch up to the mm-specific handler.  Faults are
    #: more expensive than syscalls because they arrive unexpectedly and
    #: must decode the faulting context.
    fault_trap_ns: int = 700
    fault_return_ns: int = 400

    # ------------------------------------------------------------------
    # Memory-management micro-operations.
    # ------------------------------------------------------------------
    #: Buddy-allocator fast path: pull one 4 KiB frame off a per-CPU list.
    frame_alloc_ns: int = 150
    #: Per extra order: splitting cost when the buddy must break a block.
    buddy_split_ns: int = 40
    frame_free_ns: int = 90
    #: Write one page-table entry (cached store + accounting).
    pte_write_ns: int = 25
    #: Allocate + link one page-table node (a frame plus zeroing 4 KiB).
    pt_node_alloc_ns: int = 500
    #: Zero one cache line during page clearing (streaming stores).
    zero_line_ns: int = 3
    #: Update per-frame struct-page metadata (flags, refcount, LRU links).
    frame_meta_update_ns: int = 60
    #: rmap/LRU bookkeeping Linux performs on every faulted-in page.
    fault_accounting_ns: int = 450
    #: Per-page work in the MAP_POPULATE loop beyond the PTE write and
    #: cache lookup: follow_page, rmap insert, LRU and mlock accounting.
    #: Calibrated so populating a 1 MiB tmpfs file costs ~230 us (Fig 1a
    #: shows ~250 us at 1024 KB, i.e. roughly 1 us/page).
    populate_page_ns: int = 650
    #: Per-resident-page work in fork's copy_page_range beyond the PTE
    #: writes themselves (rmap duplication, refcount, accounting).
    fork_page_copy_ns: int = 200
    #: VMA allocation (slab) + red-black-tree insertion.
    vma_insert_ns: int = 600
    vma_remove_ns: int = 400
    #: Look up the VMA covering a faulting address.
    vma_find_ns: int = 250
    #: Charge for acquiring/releasing mmap_sem and mm accounting per call.
    mmap_lock_ns: int = 350
    #: Constant per-mmap() work beyond lock+VMA: fd resolution, security
    #: hooks, address-range search, accounting.  Calibrated so a tmpfs
    #: MAP_PRIVATE mmap lands near the paper's ~8 us.
    mmap_base_ns: int = 6000

    # ------------------------------------------------------------------
    # Swap device (NVMe-class SSD backing the baseline's paging).
    # ------------------------------------------------------------------
    swap_read_page_ns: int = 100_000
    swap_write_page_ns: int = 25_000

    # ------------------------------------------------------------------
    # File-system operations.
    # ------------------------------------------------------------------
    #: Path walk + dentry lookup for one component.
    path_component_ns: int = 400
    #: Inode allocation/initialisation in a memory file system.
    inode_alloc_ns: int = 800
    #: tmpfs page-cache radix-tree insert/lookup per page.
    pagecache_op_ns: int = 120
    #: PMFS/DAX extent-tree lookup (whole extent, not per page).
    extent_lookup_ns: int = 300
    #: Extent allocation from the free-space structures (per extent).
    extent_alloc_ns: int = 900
    #: Bitmap update per block *run* (word-granularity, not per block).
    bitmap_run_ns: int = 80
    #: Extra constant work DAX mmap does to set up a direct mapping
    #: (sizing, alignment checks, pfn remap bookkeeping).
    dax_setup_ns: int = 6500
    #: Journal a metadata record in PMFS (undo-log write + persist barrier).
    journal_record_ns: int = 500
    #: Copy cost per cache line for read()/write() through the kernel.
    copy_line_ns: int = 2
    #: Resolve a file descriptor to its open file (fdtable lookup).
    fd_lookup_ns: int = 200

    # ------------------------------------------------------------------
    # TLB and range-translation hardware.
    # ------------------------------------------------------------------
    #: Cost of looking up the TLB itself (pipelined; nearly free on hit).
    tlb_lookup_ns: int = 0
    #: Fill one TLB entry after a walk completes.
    tlb_fill_ns: int = 2
    #: Invalidate one TLB entry (invlpg); a full flush costs this per
    #: resident entry flushed.
    tlb_invalidate_ns: int = 40
    #: Inter-processor TLB shootdown (IPI round trip), charged per remote
    #: CPU that must be interrupted.
    tlb_shootdown_ipi_ns: int = 4000
    #: Range-TLB lookup and fill (fully associative, small).
    rtlb_fill_ns: int = 2
    #: Write one range-table entry (the O(1) mapping operation).
    rte_write_ns: int = 30
    #: Resolve a range-TLB miss against the architectural range table
    #: (a short fixed-size structure walk).
    range_table_lookup_ns: int = 100

    # ------------------------------------------------------------------
    # RAS: media scrubbing, retirement, migration (armed machines only).
    # ------------------------------------------------------------------
    #: Patrol-scrub probe of one frame (controller read + ECC check).
    ras_probe_ns: int = 100
    #: Administrative cost of retiring one frame (allocator surgery,
    #: badblock bookkeeping), beyond any migration copy.
    ras_retire_ns: int = 800
    #: Copy one block's data off failing media during extent migration.
    ras_migrate_block_ns: int = 900
    #: Base backoff delay per failed media retry (charged linearly:
    #: attempt k waits k times this).
    ras_backoff_ns: int = 200

    # ------------------------------------------------------------------
    # Context / scheduling.
    # ------------------------------------------------------------------
    context_switch_ns: int = 2000
    #: Address-space switch (CR3 write + pipeline effects), without the
    #: full scheduler cost.
    cr3_switch_ns: int = 300

    def read_ns(self, tech: MemoryTechnology) -> int:
        """Raw read latency of the backing technology."""
        if tech is MemoryTechnology.DRAM:
            return self.dram_read_ns
        return self.nvm_read_ns

    def write_ns(self, tech: MemoryTechnology) -> int:
        """Raw write latency of the backing technology."""
        if tech is MemoryTechnology.DRAM:
            return self.dram_write_ns
        return self.nvm_write_ns

    def zero_page_ns(self, page_size: int, line_size: int = 64) -> int:
        """Cost to zero a page of ``page_size`` bytes with streaming stores."""
        return self.zero_line_ns * (page_size // line_size)

    def with_overrides(self, **overrides: int) -> "CostModel":
        """A copy of this model with some parameters replaced.

        >>> CostModel().with_overrides(nvm_read_ns=100).nvm_read_ns
        100
        """
        valid = {f.name for f in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ValueError(f"unknown cost parameters: {sorted(unknown)}")
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, int]:
        """All parameters as a plain dict (for experiment records)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
