"""Simulated hardware: clock, cost model, caches, TLBs, and the CPU.

This package is the measurement backbone of the reproduction.  Every
memory-management event (a memory reference, a TLB miss, a page-table walk,
a trap into the kernel) flows through these models, which advance a
deterministic :class:`~repro.hw.clock.SimClock` by costs drawn from a
calibrated :class:`~repro.hw.costmodel.CostModel`.  The figures in the paper
are reproduced by *counting the same events* Linux incurs and charging a
fixed cost per event.
"""

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.hw.cache import CacheModel
from repro.hw.tlb import Tlb, TlbEntry
from repro.hw.rtlb import RangeTlb
from repro.hw.cpu import Cpu

__all__ = [
    "CacheModel",
    "CostModel",
    "Cpu",
    "EventCounters",
    "MemoryTechnology",
    "RangeTlb",
    "SimClock",
    "Tlb",
    "TlbEntry",
]
