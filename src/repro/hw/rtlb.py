"""Range TLB: the hardware half of range translations (paper §3.2/§4.3).

A range-table entry (RTE) maps an *arbitrary length* of contiguous virtual
addresses to contiguous physical addresses with a fixed-size
(base, limit, offset, protection) tuple — Figure 4/9 of the paper, after
Gandhi et al.'s "Range translations for fast virtual memory" [9].  The
range TLB caches a small number of RTEs fully associatively; a hit
translates any address inside the range with one comparison, so a multi-GiB
mapping consumes one entry instead of millions of page-TLB entries.

This module holds only the hardware cache; the architectural range *table*
lives in :mod:`repro.core.rangetrans.table`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.lint import allocbound, allocfree, o1


@dataclass(frozen=True)
class RangeEntry:
    """One cached range translation.

    Translates ``vaddr`` in ``[base, base + limit)`` to ``vaddr + offset``.
    ``offset`` may be negative; physical = virtual + offset, as in the
    BASE/LIMIT/OFFSET structure of the paper's Figure 4.
    """

    base: int
    limit: int
    offset: int
    writable: bool
    asid: int = 0

    def covers(self, vaddr: int) -> bool:
        """True if this entry translates ``vaddr``."""
        return self.base <= vaddr < self.base + self.limit

    def translate(self, vaddr: int) -> int:
        """Physical address for ``vaddr`` (caller must check covers())."""
        return vaddr + self.offset


class RangeTlb:
    """Small, fully associative cache of range translations.

    Real proposals size this at tens of entries because each entry covers
    an unbounded region; 32 entries cover an entire address space mapped as
    a handful of files.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[RangeEntry, None]" = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum number of resident range entries."""
        return self._capacity

    @o1(note="fully associative probe bounded by fixed capacity (<= 32)")
    @allocfree(note="scan and move-to-end: no per-probe objects")
    def lookup(self, vaddr: int, asid: int = 0) -> Optional[RangeEntry]:
        """Entry covering ``vaddr`` for ``asid``, or None on miss."""
        # o1: allow(o1-size-loop) -- associative scan capped at capacity
        for entry in self._entries:
            if entry.asid == asid and entry.covers(vaddr):
                self._entries.move_to_end(entry)
                return entry
        return None

    @o1(note="one associative fill + possible LRU eviction")
    @allocbound(1, note="one association per fill; eviction hands the entry back")
    def insert(self, entry: RangeEntry) -> Optional[RangeEntry]:
        """Install ``entry``; returns the LRU entry evicted, if any."""
        if entry.limit <= 0:
            raise ValueError(f"range limit must be positive, got {entry.limit}")
        self._entries[entry] = None
        self._entries.move_to_end(entry)
        if len(self._entries) > self._capacity:
            evicted, _ = self._entries.popitem(last=False)
            return evicted
        return None

    @o1(note="one shootdown over a <= 32-entry associative array")
    def invalidate_overlap(self, base: int, limit: int, asid: int = 0) -> int:  # o1: allow(o1-size-loop) -- capacity-bounded scan
        """Shoot down every entry overlapping ``[base, base + limit)``.

        Unmapping a file is one such call — the O(1) shootdown the paper
        contrasts with per-page invlpg storms.
        """
        stale = [
            entry
            for entry in self._entries
            if entry.asid == asid
            and entry.base < base + limit
            and entry.base + entry.limit > base
        ]
        for entry in stale:
            del self._entries[entry]
        return len(stale)

    def flush_asid(self, asid: int) -> int:
        """Drop all entries for one address space."""
        stale = [entry for entry in self._entries if entry.asid == asid]
        for entry in stale:
            del self._entries[entry]
        return len(stale)

    def flush_all(self) -> int:
        """Drop everything."""
        count = len(self._entries)
        self._entries.clear()
        return count

    def resident_count(self) -> int:
        """Number of valid entries."""
        return len(self._entries)
