"""Deterministic simulated clock and event counters.

The whole simulator is single-threaded and deterministic: time only moves
when a component calls :meth:`SimClock.advance`.  Benchmarks read simulated
nanoseconds off the clock, so results are exactly reproducible run to run —
there is no wall-clock noise in any reported figure.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Tuple

from repro.lint.decorators import allocfree


class SimClock:
    """Monotonic simulated clock, in integer nanoseconds.

    >>> clk = SimClock()
    >>> clk.advance(150)
    >>> clk.now
    150
    """

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds since boot."""
        return self._now

    @allocfree(note="one int add on the accumulator")
    def advance(self, ns: int) -> None:
        """Move time forward by ``ns`` nanoseconds (must be non-negative)."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        self._now += ns

    def elapsed_since(self, start_ns: int) -> int:
        """Nanoseconds elapsed since a previously sampled ``now``."""
        return self._now - start_ns

    def __repr__(self) -> str:
        return f"SimClock(now={self._now}ns)"


class EventCounters:
    """Named counters for memory-management events.

    Components increment counters like ``tlb_miss``, ``minor_fault``,
    ``pte_write`` as they run; tests and benchmarks assert on them to verify
    that the *mechanism* (not just the cost) matches the paper's narrative —
    e.g. that MAP_POPULATE eliminates all minor faults.

    Counter names follow the ``subsystem_verb_object`` convention; the
    canonical list lives in :mod:`repro.obs.names`.
    :class:`repro.obs.metrics.MetricsRegistry` extends this class with
    latency histograms — new code should prefer it.
    """

    __slots__ = ("_counts",)

    #: Optional :class:`repro.obs.trace.Tracer` back-reference.  Components
    #: that hold counters reach the machine's tracer through it (``None``
    #: means no tracing); :class:`~repro.obs.metrics.MetricsRegistry`
    #: instances override it per machine.
    tracer = None

    #: Optional :class:`repro.chaos.plan.FaultPlan` back-reference, set by
    #: ``Kernel.arm_chaos``.  Instrumented hot paths consult it the same
    #: way they reach the tracer (``None`` means no fault injection).
    chaos = None

    #: Optional :class:`repro.perf.profiler.WallProfiler` back-reference,
    #: set by ``Kernel.arm_profiler`` (``None`` means no wall-time
    #: attribution).
    profiler = None

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    @allocfree(note="one Counter increment on an existing key")
    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._counts[name]

    def snapshot(self) -> Dict[str, int]:
        """A copy of all counters, for diffing around a measured region."""
        return dict(self._counts)

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        """Counters that changed since ``snapshot``, as name -> increase.

        Deltas are clamped at zero: a :meth:`reset` between snapshot and
        read would otherwise report negative "increases" for counters
        that were already non-zero at snapshot time.
        """
        out = {}
        for name, value in self._counts.items():
            change = value - snapshot.get(name, 0)
            if change > 0:
                out[name] = change
        return out

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"EventCounters({inner})"
