"""IOMMU and DMA-pinning model (paper §3.1, "Memory locking").

"Currently letting a device access memory often requires locking the page
in memory; even devices that support page faults through an IOMMU incur
high penalties.  With file-only memory, data is implicitly pinned in
memory, as pages are never reclaimed or relocated until the file is
explicitly unmapped."

Three device-access regimes are modeled:

* **pin/unpin** (baseline): before DMA the driver pins every page
  (get_user_pages: one frame-metadata update + refcount per page) and
  builds one IOMMU entry per page; after DMA it unpins — linear both ways.
* **IOMMU page faults** (ATS/PRI): no pinning, but each device-side fault
  pays the PRI round trip the paper calls "high penalties".
* **implicitly pinned** (file-only memory): the buffer is a mapped file
  extent — never reclaimed or moved — so the driver installs one IOMMU
  entry per *extent* and transfers immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import MappingError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.mem.frame_meta import FrameTable, PageFlags
from repro.units import PAGE_SIZE

#: IOMMU page-request-interface round trip (device fault -> OS -> resume);
#: Intel VT-d measurements put this in the tens of microseconds.
PRI_FAULT_NS = 20_000
#: Install/remove one IOMMU translation entry.
IOMMU_ENTRY_NS = 120
#: Pin one page: get_user_pages fast path (refcount + flags).
PIN_PAGE_NS = 180


@dataclass
class DmaRegion:
    """A device-visible window over physical memory."""

    iova: int
    length: int
    #: (paddr, length) runs backing the window, in order.
    runs: List[Tuple[int, int]]
    pinned_pfns: List[int]
    implicit: bool


class Iommu:
    """One device's IOMMU context: maps, pins, and fault accounting."""

    def __init__(
        self,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
        frame_table: Optional[FrameTable] = None,
    ) -> None:
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._frame_table = frame_table
        self._next_iova = 1 << 40
        self._regions: Dict[int, DmaRegion] = {}

    # ------------------------------------------------------------------
    # Baseline: pin per page, map per page
    # ------------------------------------------------------------------
    def map_pinned(self, runs: Iterable[Tuple[int, int]]) -> DmaRegion:
        """Pin and map a buffer page by page (the get_user_pages path)."""
        run_list = list(runs)
        pinned: List[int] = []
        entries = 0
        for paddr, length in run_list:
            self._check_run(paddr, length)
            for pfn in range(paddr // PAGE_SIZE, (paddr + length) // PAGE_SIZE):
                self._clock.advance(PIN_PAGE_NS + IOMMU_ENTRY_NS)
                self._counters.bump("dma_page_pinned")
                if self._frame_table is not None:
                    meta = self._frame_table.get_ref(pfn)
                    meta.set_flag(PageFlags.MLOCKED)
                pinned.append(pfn)
                entries += 1
        region = self._install(run_list, pinned, implicit=False)
        return region

    def unmap_pinned(self, region: DmaRegion) -> None:
        """Unpin and unmap — linear again."""
        self._remove(region)
        for pfn in region.pinned_pfns:
            self._clock.advance(PIN_PAGE_NS + IOMMU_ENTRY_NS)
            self._counters.bump("dma_page_unpinned")
            if self._frame_table is not None:
                meta = self._frame_table.touch(pfn)
                meta.clear_flag(PageFlags.MLOCKED)
                if meta.refcount:
                    meta.refcount -= 1

    # ------------------------------------------------------------------
    # File-only memory: implicit pinning, map per extent
    # ------------------------------------------------------------------
    def map_implicit(self, runs: Iterable[Tuple[int, int]]) -> DmaRegion:
        """Map a file-extent buffer: one IOMMU entry per contiguous run.

        No pinning work at all — the pages "are never reclaimed or
        relocated until the file is explicitly unmapped".
        """
        run_list = list(runs)
        for paddr, length in run_list:
            self._check_run(paddr, length)
            self._clock.advance(IOMMU_ENTRY_NS)
            self._counters.bump("dma_extent_mapped")
        return self._install(run_list, pinned=[], implicit=True)

    def unmap_implicit(self, region: DmaRegion) -> None:
        """Remove the per-extent entries — O(#extents)."""
        if not region.implicit:
            raise MappingError("region was pin-mapped; use unmap_pinned")
        self._remove(region)
        for _ in region.runs:
            self._clock.advance(IOMMU_ENTRY_NS)
            self._counters.bump("dma_extent_unmapped")

    # ------------------------------------------------------------------
    # ATS/PRI: no pinning, pay per device fault
    # ------------------------------------------------------------------
    def device_fault(self) -> None:
        """One IOMMU page-request round trip (the 'high penalty')."""
        self._clock.advance(PRI_FAULT_NS)
        self._counters.bump("iommu_pri_fault")

    # ------------------------------------------------------------------
    # Transfers / internals
    # ------------------------------------------------------------------
    def transfer(self, region: DmaRegion, bytes_count: int) -> None:
        """Model a DMA transfer through the window (per-line media cost
        is borne by the device; we charge a nominal setup)."""
        if bytes_count <= 0 or bytes_count > region.length:
            raise MappingError(
                f"transfer of {bytes_count} bytes exceeds region "
                f"of {region.length}"
            )
        self._counters.bump("dma_transfer")

    def _check_run(self, paddr: int, length: int) -> None:
        if paddr % PAGE_SIZE or length <= 0 or length % PAGE_SIZE:
            raise MappingError(
                f"DMA run ({paddr:#x}, {length}) must be page-aligned"
            )

    def _install(
        self, runs: List[Tuple[int, int]], pinned: List[int], implicit: bool
    ) -> DmaRegion:
        length = sum(run_length for _, run_length in runs)
        region = DmaRegion(
            iova=self._next_iova,
            length=length,
            runs=runs,
            pinned_pfns=pinned,
            implicit=implicit,
        )
        self._next_iova += max(length, PAGE_SIZE)
        self._regions[region.iova] = region
        return region

    def _remove(self, region: DmaRegion) -> None:
        if self._regions.pop(region.iova, None) is None:
            raise MappingError(f"region at iova {region.iova:#x} not mapped")

    @property
    def mapped_regions(self) -> int:
        """Live device-visible windows."""
        return len(self._regions)
