"""Simulated CPU front-end: the path every memory access takes.

:meth:`Cpu.access` models what an x86-64 core does on a load or store:

1. probe the range TLB (if the machine has range-translation hardware);
2. probe the page TLB;
3. on miss, walk the current address space's page tables (the walk itself
   issues memory references that are priced through the cache model);
4. if no valid translation exists — or a store hits a read-only mapping —
   raise a fault to the operating system, which resolves it and the access
   retries.

The CPU knows nothing about VMAs, files or processes; it talks to an
abstract :class:`TranslationContext` so the vm/kernel layers above can plug
in without circular imports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from repro.errors import ProtectionError
from repro.hw.cache import CacheModel
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.hw.rtlb import RangeEntry, RangeTlb
from repro.hw.tlb import Tlb, TlbEntry
from repro.lint.decorators import allocbound, allocfree, complexity, o1
from repro.units import CACHE_LINE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import Tracer


@runtime_checkable
class TranslationContext(Protocol):
    """What the CPU needs from an address space.

    Implemented by :class:`repro.vm.addrspace.AddressSpace`.  All three
    methods charge their own simulated costs through the shared clock.
    """

    @property
    def asid(self) -> int:
        """Address-space identifier used to tag TLB entries."""
        ...

    def walk(self, vaddr: int) -> Optional[TlbEntry]:
        """Hardware page-table walk; None if no valid translation."""
        ...

    def lookup_range(self, vaddr: int) -> Optional[RangeEntry]:
        """Architectural range-table lookup; None if absent/uncovered."""
        ...

    def handle_fault(self, vaddr: int, write: bool) -> None:
        """OS fault handler: establish a translation or raise ProtectionError."""
        ...


class Cpu:
    """One simulated core with private TLBs and a shared cache hierarchy."""

    #: A fault handler that fails to establish a translation after this
    #: many retries indicates a simulator bug, not a workload property.
    _MAX_FAULT_RETRIES = 4

    def __init__(
        self,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
        cache: CacheModel,
        tlb: Optional[Tlb] = None,
        rtlb: Optional[RangeTlb] = None,
    ) -> None:
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._cache = cache
        self._tlb = tlb if tlb is not None else Tlb()
        #: None means the machine has no range-translation hardware.
        self._rtlb = rtlb
        #: Other cores that may cache this machine's translations; every
        #: invalidation broadcast pays one IPI round trip per remote core
        #: (batched per operation, as Linux's flush_tlb_mm_range is).
        self.remote_cpus = 0

    @property
    def tlb(self) -> Tlb:
        """This core's page TLB."""
        return self._tlb

    @property
    def rtlb(self) -> Optional[RangeTlb]:
        """This core's range TLB, or None if absent."""
        return self._rtlb

    @property
    def cache(self) -> CacheModel:
        """The cache hierarchy this core prices references through."""
        return self._cache

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    @o1(note="TLB hit or one fault round-trip; the retry cap is a constant")
    @allocfree(note="the hit path constructs nothing; traced and fault worlds are cold")
    def access(self, space: TranslationContext, vaddr: int, write: bool = False) -> int:
        """Perform one 1-line memory access at ``vaddr``.

        Returns the physical address accessed.  Raises
        :class:`~repro.errors.ProtectionError` if the OS cannot resolve a
        fault on this address.
        """
        if vaddr < 0:
            raise ProtectionError(f"negative virtual address {vaddr:#x}")
        tracer = self._counters.tracer
        if tracer is not None and tracer.enabled:
            # alloc: allow(cold-call) -- tracer-armed runs only
            return self._access_traced(space, vaddr, write, tracer)
        paddr = self._translate(space, vaddr, write)
        if paddr is not None:
            return self._finish_access(paddr, write)
        # alloc: allow(cold-call) -- fault path; the trap world charges itself
        return self._access_fault(space, vaddr, write)

    @o1(note="traced mirror of access(); same bounded retry and charges")
    def _access_traced(
        self, space: TranslationContext, vaddr: int, write: bool, tracer: "Tracer"
    ) -> int:
        """Access with span bookkeeping; charge sequence matches access()."""
        tracer.begin("access", "cpu")
        try:
            # o1: allow(o1-size-loop) -- fault retries capped at _MAX_FAULT_RETRIES
            for _ in range(self._MAX_FAULT_RETRIES):
                paddr = self._translate(space, vaddr, write)
                if paddr is not None:
                    return self._finish_access(paddr, write)
                # No translation (or a permission upgrade needed): fault to OS.
                tracer.begin("fault", "fault", args={"vaddr": hex(vaddr)})
                try:
                    self._fault_round_trip(space, vaddr, write)
                finally:
                    tracer.end()
            raise ProtectionError(
                f"fault handler failed to map {vaddr:#x} after "
                f"{self._MAX_FAULT_RETRIES} retries"
            )
        finally:
            tracer.end()

    @o1(note="bounded fault retry; every charge lives in the round-trip helper")
    @allocbound(1, note="fault world: handler-side state is charged to the OS path")
    def _access_fault(self, space: TranslationContext, vaddr: int, write: bool) -> int:
        """Untraced slow path, entered after one failed translation.

        The charge sequence is identical to the pre-split retry loop:
        success after ``k`` faults costs ``k + 1`` translations and ``k``
        round trips; exhaustion costs ``_MAX_FAULT_RETRIES`` of each.
        """
        # o1: allow(o1-size-loop) -- fault retries capped at _MAX_FAULT_RETRIES
        for _ in range(self._MAX_FAULT_RETRIES - 1):
            self._fault_round_trip(space, vaddr, write)
            paddr = self._translate(space, vaddr, write)
            if paddr is not None:
                return self._finish_access(paddr, write)
        self._fault_round_trip(space, vaddr, write)
        raise ProtectionError(
            f"fault handler failed to map {vaddr:#x} after "
            f"{self._MAX_FAULT_RETRIES} retries"
        )

    @o1(note="one trap, one handler invocation, one return — fixed charges")
    @allocbound(2, note="the OS handler may build bounded per-fault state")
    def _fault_round_trip(
        self, space: TranslationContext, vaddr: int, write: bool
    ) -> None:
        """One fault trap: enter the OS, resolve (or not), return."""
        self._clock.advance(self._costs.fault_trap_ns)
        self._counters.bump("fault_trap")
        space.handle_fault(vaddr, write)
        self._clock.advance(self._costs.fault_return_ns)

    @o1(note="hook checks plus one cache reference")
    @allocfree(note="sanitizer/RAS worlds are cold; the reference is shape-free")
    def _finish_access(self, paddr: int, write: bool) -> int:
        """Post-translation tail: hooks, then the data reference itself."""
        san = getattr(self._counters, "sanitize", None)
        if san is not None:
            # alloc: allow(cold-call) -- sanitized runs only
            san.on_frame_access(paddr)
        ras = getattr(self._counters, "ras", None)
        if ras is not None:
            # Media check: retries transient errors on the simulated
            # clock; consuming poison raises the machine-check trap.
            # (The untyped handle keeps this edge out of the certified
            # closure; RAS-armed runs pay for their own checks.)
            ras.check_access(paddr, write=write)
        self._cache.reference(paddr, write=write)
        return paddr

    @complexity("n", note="one access per stride step across the range")
    @allocbound(1, note="one range object for the stride walk")
    def access_range(
        self,
        space: TranslationContext,
        vaddr: int,
        size: int,
        write: bool = False,
        stride: int = CACHE_LINE,
    ) -> None:
        """Access every ``stride``-th byte of ``[vaddr, vaddr + size)``.

        ``stride=CACHE_LINE`` models a streaming read/write of the region;
        a page-sized stride models the paper's "touch one byte per page".
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        # o1: allow(o1-size-loop) -- the stride walk is the declared n
        for offset in range(0, size, stride):
            self.access(space, vaddr + offset, write=write)

    # ------------------------------------------------------------------
    # Translation machinery
    # ------------------------------------------------------------------
    @allocfree(note="probe-and-bump only; miss-path fills are cold")
    def _translate(
        self, space: TranslationContext, vaddr: int, write: bool
    ) -> Optional[int]:
        """Translate without accessing data; None means 'must fault'."""
        self._clock.advance(self._costs.tlb_lookup_ns)

        if self._rtlb is not None:
            entry = self._rtlb.lookup(vaddr, asid=space.asid)
            if entry is not None:
                if write and not entry.writable:
                    return None
                self._counters.bump("rtlb_hit")
                san = getattr(self._counters, "sanitize", None)
                if san is not None:
                    san.check_rtlb_hit(space, vaddr, entry, write)
                return entry.translate(vaddr)
            # Range-TLB miss: consult the architectural range table before
            # falling back to paging, as the range hardware would.
            range_entry = space.lookup_range(vaddr)
            if range_entry is not None:
                self._counters.bump("rtlb_miss")
                self._clock.advance(self._costs.rtlb_fill_ns)
                # alloc: allow(cold-call) -- miss fill; the hit certificate excludes refills
                self._rtlb.insert(range_entry)
                if write and not range_entry.writable:
                    return None
                return range_entry.translate(vaddr)

        entry = self._tlb.lookup(vaddr, asid=space.asid)
        if entry is not None:
            self._counters.bump("tlb_hit")
            if write and not entry.writable:
                # Permission fault (e.g. COW): drop the stale entry so the
                # retry after the OS upgrades the PTE re-walks.
                self._tlb.invalidate(vaddr, asid=space.asid)
                return None
            san = getattr(self._counters, "sanitize", None)
            if san is not None:
                san.check_tlb_hit(space, vaddr, entry, write)
            return entry.paddr + vaddr % entry.page_size

        self._counters.bump("tlb_miss")
        walked = space.walk(vaddr)
        if walked is None:
            return None
        if write and not walked.writable:
            return None
        self._clock.advance(self._costs.tlb_fill_ns)
        # alloc: allow(cold-call) -- miss fill; the hit certificate excludes refills
        self._tlb.insert(walked)
        return walked.paddr + vaddr % walked.page_size

    # ------------------------------------------------------------------
    # TLB maintenance entry points used by the OS
    # ------------------------------------------------------------------
    @o1(note="one IPI broadcast; the retry cap is a constant")
    def _broadcast_shootdown(self, attempts: int = 4) -> None:
        if self.remote_cpus <= 0:
            return
        chaos = getattr(self._counters, "chaos", None)
        # o1: allow(o1-size-loop, o1-charge-in-loop) -- broadcast retries capped at `attempts`
        for _attempt in range(attempts):
            if chaos is not None and chaos.hit("cpu.shootdown") == "error":
                # Interrupted broadcast: part of the IPI fan-out went out
                # (charge roughly half) but not every core acked, so the
                # whole broadcast must be re-issued — remote TLBs may
                # still hold the stale translation.
                self._clock.advance(
                    self._costs.tlb_shootdown_ipi_ns
                    * max(1, self.remote_cpus // 2)
                )
                self._counters.bump("tlb_shootdown_retry")
                continue
            self._clock.advance(
                self._costs.tlb_shootdown_ipi_ns * self.remote_cpus
            )
            self._counters.bump("tlb_shootdown_ipi", self.remote_cpus)
            return
        raise RuntimeError(
            f"TLB shootdown failed {attempts} times; remote TLBs stale"
        )

    def invalidate_page(self, vaddr: int, asid: int = 0) -> None:
        """invlpg: drop one translation, charging the invalidate cost."""
        dropped = self._tlb.invalidate(vaddr, asid=asid)
        if dropped:
            self._clock.advance(self._costs.tlb_invalidate_ns * dropped)
        self._broadcast_shootdown()

    @o1(note="one range drop plus one broadcast, however large the range")
    def invalidate_space_range(self, vaddr: int, length: int, asid: int = 0) -> None:
        """Drop all translations overlapping a virtual range.

        One shootdown broadcast per call, however large the range — which
        is why batched (whole-file) unmaps beat per-page loops on SMP.
        """
        dropped = self._tlb.invalidate_range(vaddr, length, asid=asid)
        if self._rtlb is not None:
            dropped += self._rtlb.invalidate_overlap(vaddr, length, asid=asid)
        if dropped:
            self._clock.advance(self._costs.tlb_invalidate_ns * dropped)
        self._broadcast_shootdown()

    def switch_address_space(self, asid: int, flush: bool = False) -> None:
        """Model a CR3 write; with ``flush`` the whole TLB is discarded."""
        self._clock.advance(self._costs.cr3_switch_ns)
        self._counters.bump("cr3_switch")
        if flush:
            self._tlb.flush_all()
            if self._rtlb is not None:
                self._rtlb.flush_all()
