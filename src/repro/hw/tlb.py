"""Set-associative, multi-page-size TLB model.

x86-64 processors keep separate TLB arrays per page size (4 KiB / 2 MiB /
1 GiB) because the page size — and therefore which address bits form the
tag — is unknown until the walk completes.  The model mirrors that: one
set-associative array per supported page size, LRU replacement within a
set, and optional ASID (PCID) tagging so address-space switches need not
flush.

The TLB stores *translations only*; costs for lookups and fills are charged
by the CPU front-end (:mod:`repro.hw.cpu`) using the shared cost model.

Every set of every array is preallocated at construction and tags are
packed into a single int key (``vpn << 16 | asid``), so the lookup and
invalidate paths construct no Python objects per probe — the property
AllocSan certifies and ``lint --alloc`` cross-checks empirically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.lint import allocbound, allocfree, o1
from repro.units import HUGE_PAGE_1G, HUGE_PAGE_2M, PAGE_SIZE


@dataclass(frozen=True)
class TlbEntry:
    """One cached translation.

    ``vpn``/``pfn`` are in units of the entry's own ``page_size``;
    ``writable`` caches the permission bit so the CPU can detect permission
    faults without a walk.
    """

    vpn: int
    pfn: int
    page_size: int
    writable: bool
    asid: int = 0

    @property
    def vaddr(self) -> int:
        """Base virtual address covered by this entry."""
        return self.vpn * self.page_size

    @property
    def paddr(self) -> int:
        """Base physical address this entry maps to."""
        return self.pfn * self.page_size


#: Default geometry: (page_size -> (sets, ways)).  Roughly a Skylake L2
#: STLB: 1536 x 4 KiB entries (128 sets x 12 ways), 32 x 2 MiB, 4 x 1 GiB.
DEFAULT_GEOMETRY: Dict[int, Tuple[int, int]] = {
    PAGE_SIZE: (128, 12),
    HUGE_PAGE_2M: (8, 4),
    HUGE_PAGE_1G: (1, 4),
}

#: Tag packing: entries are keyed by ``(vpn << _ASID_BITS) | asid``, one
#: int instead of an (asid, vpn) tuple per probe.  x86 PCID is 12 bits;
#: 16 leaves headroom for synthetic test ASIDs.
_ASID_BITS = 16
_ASID_MASK = (1 << _ASID_BITS) - 1


class Tlb:
    """Split, set-associative TLB with LRU replacement per set.

    >>> tlb = Tlb()
    >>> tlb.insert(TlbEntry(vpn=5, pfn=42, page_size=4096, writable=True))
    >>> tlb.lookup(5 * 4096).pfn
    42
    """

    #: Optional :class:`repro.obs.trace.Tracer`; when set and enabled,
    #: structural events (insert evictions, invalidations, flushes) are
    #: recorded as instant trace events.  Hit/miss accounting stays in
    #: the CPU front-end, which owns the costs.
    tracer = None

    def __init__(self, geometry: Optional[Dict[int, Tuple[int, int]]] = None) -> None:
        self._geometry = dict(geometry or DEFAULT_GEOMETRY)
        for size, (sets, ways) in self._geometry.items():
            if sets <= 0 or ways <= 0:
                raise ValueError(f"bad TLB geometry for page size {size}")
        # arrays[page_size][set_index] = OrderedDict[packed key -> TlbEntry].
        # Every set exists from construction so the insert path never
        # builds a container.
        self._arrays: Dict[int, Dict[int, "OrderedDict[int, TlbEntry]"]] = {
            size: {index: OrderedDict() for index in range(sets)}
            for size, (sets, _ways) in self._geometry.items()
        }
        #: Probe order for the hit path, smallest page size first; the
        #: tuple is built once so lookups only unpack it.
        self._probe: Tuple[
            Tuple[int, int, Dict[int, "OrderedDict[int, TlbEntry]"]], ...
        ] = tuple(
            (size, self._geometry[size][0], self._arrays[size])
            for size in sorted(self._geometry)
        )

    @property
    def page_sizes(self) -> Tuple[int, ...]:
        """Page sizes this TLB can hold, smallest first."""
        return tuple(sorted(self._geometry))

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    @o1(note="parallel probe of three fixed page-size arrays")
    @allocfree(note="int-keyed probe of preallocated sets; constructs nothing")
    def lookup(self, vaddr: int, asid: int = 0) -> Optional[TlbEntry]:
        """Translation covering ``vaddr`` for ``asid``, or None on miss.

        Probes every page-size array, as hardware does in parallel.
        """
        # o1: allow(o1-size-loop) -- the geometry has exactly 3 arrays
        for size, nsets, sets in self._probe:
            vpn = vaddr // size
            entry_set = sets[vpn % nsets]
            if not entry_set:
                continue
            key = (vpn << _ASID_BITS) | asid
            entry = entry_set.get(key)
            if entry is not None:
                entry_set.move_to_end(key)
                return entry
        return None

    @o1(note="one set update + possible LRU eviction")
    @allocbound(2, note="one association per fill; the evicted entry is handed back")
    def insert(self, entry: TlbEntry) -> Optional[TlbEntry]:
        """Install ``entry``, returning any entry evicted by LRU."""
        if entry.page_size not in self._geometry:
            raise ValueError(
                f"TLB has no array for page size {entry.page_size}; "
                f"supported: {sorted(self._geometry)}"
            )
        nsets, ways = self._geometry[entry.page_size]
        entry_set = self._arrays[entry.page_size][entry.vpn % nsets]
        key = (entry.vpn << _ASID_BITS) | entry.asid
        entry_set[key] = entry
        entry_set.move_to_end(key)
        if len(entry_set) > ways:
            _, evicted = entry_set.popitem(last=False)
            # alloc: allow(cold-call) -- tracer-armed runs only
            self._trace_evict(evicted)
            return evicted
        return None

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    @o1(note="one probe per fixed page-size array")
    @allocfree(note="int-keyed pops; the trace world is cold")
    def invalidate(self, vaddr: int, asid: int = 0) -> int:
        """Drop any entry covering ``vaddr`` (invlpg); returns count dropped."""
        dropped = 0
        # o1: allow(o1-size-loop) -- the geometry has exactly 3 arrays
        for size, nsets, sets in self._probe:
            vpn = vaddr // size
            entry_set = sets[vpn % nsets]
            if entry_set and entry_set.pop((vpn << _ASID_BITS) | asid, None) is not None:
                dropped += 1
        # alloc: allow(cold-call) -- tracer-armed runs only
        self._trace_invalidate("tlb_invalidate", dropped, vaddr=vaddr)
        return dropped

    @o1(
        note="probes min(range VPNs, sets) sets per fixed array, each of "
        "fixed associativity — work bounded by the TLB's capacity"
    )
    def invalidate_range(self, vaddr: int, length: int, asid: int = 0) -> int:
        """Drop every entry overlapping ``[vaddr, vaddr + length)``.

        An entry for page size ``s`` overlaps iff its VPN lies in
        ``[vaddr // s, (end - 1) // s]``, and a VPN lives in exactly one
        set — so only the sets those VPNs index are probed.  A range
        naming more VPNs than there are sets degenerates to probing
        every set, which is still a hardware constant, not a scan of
        resident entries.
        """
        if length <= 0:
            return 0
        dropped = 0
        end = vaddr + length
        # o1: allow(o1-size-loop) -- the geometry has exactly 3 arrays
        for size, nsets, sets in self._probe:
            vpn_lo = vaddr // size
            vpn_hi = (end - 1) // size
            span = vpn_hi - vpn_lo + 1
            if span >= nsets:
                indices: Iterable[int] = range(nsets)
            else:
                # o1: allow(o1-size-loop) -- span < sets, a hardware constant
                indices = {(vpn_lo + i) % nsets for i in range(span)}
            # o1: allow(o1-size-loop) -- at most nsets indices, a constant
            for index in indices:
                entry_set = sets[index]
                if not entry_set:
                    continue
                # o1: allow(o1-size-loop) -- ways per set is fixed
                stale = [
                    key
                    for key in entry_set
                    if key & _ASID_MASK == asid
                    and vpn_lo <= key >> _ASID_BITS <= vpn_hi
                ]
                # o1: allow(o1-size-loop) -- at most ways stale keys
                for key in stale:
                    del entry_set[key]
                    dropped += 1
        self._trace_invalidate("tlb_invalidate_range", dropped, vaddr=vaddr)
        return dropped

    def flush_asid(self, asid: int) -> int:
        """Drop every entry belonging to ``asid``; returns count dropped."""
        dropped = 0
        for sets in self._arrays.values():
            for entry_set in sets.values():
                stale = [key for key in entry_set if key & _ASID_MASK == asid]
                for key in stale:
                    del entry_set[key]
                    dropped += 1
        return dropped

    @o1(note="clears a fixed-geometry hardware array")
    def flush_all(self) -> int:
        """Drop everything (CR3 write without PCID); returns count dropped."""
        dropped = self.resident_count()
        # o1: allow(o1-size-loop) -- the TLB arrays have fixed hardware geometry
        for sets in self._arrays.values():
            # o1: allow(o1-size-loop) -- sets per array is a hardware constant
            for entry_set in sets.values():
                # Clear in place: the preallocated sets (and the probe
                # tuple that aliases them) must survive a full flush.
                entry_set.clear()
        self._trace_invalidate("tlb_flush_all", dropped)
        return dropped

    @allocbound(3, note="one instant-event argument dict; tracer-armed runs only")
    def _trace_evict(self, evicted: TlbEntry) -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        self.tracer.instant(
            "tlb_evict",
            "cpu",
            args={"vaddr": hex(evicted.vaddr), "page_size": evicted.page_size},
        )

    @allocbound(3, note="one instant-event argument dict; tracer-armed runs only")
    def _trace_invalidate(
        self, name: str, dropped: int, vaddr: Optional[int] = None
    ) -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        args: Dict[str, object] = {"dropped": dropped}
        if vaddr is not None:
            args["vaddr"] = hex(vaddr)
        self.tracer.instant(name, "cpu", args=args)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @o1(note="counts a fixed-geometry hardware array")
    def resident_count(self, page_size: Optional[int] = None) -> int:
        """Number of valid entries (optionally for one page size)."""
        sizes: Iterable[int] = (
            [page_size] if page_size is not None else self._arrays.keys()
        )
        # o1: allow(o1-size-loop) -- the TLB arrays have fixed hardware geometry
        return sum(
            len(entry_set)
            for size in sizes
            for entry_set in self._arrays.get(size, {}).values()
        )

    def capacity(self, page_size: int) -> int:
        """Maximum entries for ``page_size``."""
        nsets, ways = self._geometry[page_size]
        return nsets * ways
