"""Set-associative, multi-page-size TLB model.

x86-64 processors keep separate TLB arrays per page size (4 KiB / 2 MiB /
1 GiB) because the page size — and therefore which address bits form the
tag — is unknown until the walk completes.  The model mirrors that: one
set-associative array per supported page size, LRU replacement within a
set, and optional ASID (PCID) tagging so address-space switches need not
flush.

The TLB stores *translations only*; costs for lookups and fills are charged
by the CPU front-end (:mod:`repro.hw.cpu`) using the shared cost model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.lint import o1
from repro.units import HUGE_PAGE_1G, HUGE_PAGE_2M, PAGE_SIZE


@dataclass(frozen=True)
class TlbEntry:
    """One cached translation.

    ``vpn``/``pfn`` are in units of the entry's own ``page_size``;
    ``writable`` caches the permission bit so the CPU can detect permission
    faults without a walk.
    """

    vpn: int
    pfn: int
    page_size: int
    writable: bool
    asid: int = 0

    @property
    def vaddr(self) -> int:
        """Base virtual address covered by this entry."""
        return self.vpn * self.page_size

    @property
    def paddr(self) -> int:
        """Base physical address this entry maps to."""
        return self.pfn * self.page_size


#: Default geometry: (page_size -> (sets, ways)).  Roughly a Skylake L2
#: STLB: 1536 x 4 KiB entries (128 sets x 12 ways), 32 x 2 MiB, 4 x 1 GiB.
DEFAULT_GEOMETRY: Dict[int, Tuple[int, int]] = {
    PAGE_SIZE: (128, 12),
    HUGE_PAGE_2M: (8, 4),
    HUGE_PAGE_1G: (1, 4),
}


class Tlb:
    """Split, set-associative TLB with LRU replacement per set.

    >>> tlb = Tlb()
    >>> tlb.insert(TlbEntry(vpn=5, pfn=42, page_size=4096, writable=True))
    >>> tlb.lookup(5 * 4096).pfn
    42
    """

    #: Optional :class:`repro.obs.trace.Tracer`; when set and enabled,
    #: structural events (insert evictions, invalidations, flushes) are
    #: recorded as instant trace events.  Hit/miss accounting stays in
    #: the CPU front-end, which owns the costs.
    tracer = None

    def __init__(self, geometry: Optional[Dict[int, Tuple[int, int]]] = None) -> None:
        self._geometry = dict(geometry or DEFAULT_GEOMETRY)
        for size, (sets, ways) in self._geometry.items():
            if sets <= 0 or ways <= 0:
                raise ValueError(f"bad TLB geometry for page size {size}")
        # arrays[page_size][set_index] = OrderedDict[(asid, vpn) -> TlbEntry]
        self._arrays: Dict[int, Dict[int, "OrderedDict[Tuple[int, int], TlbEntry]"]] = {
            size: {} for size in self._geometry
        }

    @property
    def page_sizes(self) -> Tuple[int, ...]:
        """Page sizes this TLB can hold, smallest first."""
        return tuple(sorted(self._geometry))

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    @o1(note="parallel probe of three fixed page-size arrays")
    def lookup(self, vaddr: int, asid: int = 0) -> Optional[TlbEntry]:
        """Translation covering ``vaddr`` for ``asid``, or None on miss.

        Probes every page-size array, as hardware does in parallel.
        """
        # o1: allow(o1-size-loop) -- the geometry has exactly 3 arrays
        for size, sets in self._arrays.items():
            vpn = vaddr // size
            nsets, _ = self._geometry[size]
            entry_set = sets.get(vpn % nsets)
            if entry_set is None:
                continue
            entry = entry_set.get((asid, vpn))
            if entry is not None:
                entry_set.move_to_end((asid, vpn))
                return entry
        return None

    @o1(note="one set update + possible LRU eviction")
    def insert(self, entry: TlbEntry) -> Optional[TlbEntry]:
        """Install ``entry``, returning any entry evicted by LRU."""
        if entry.page_size not in self._geometry:
            raise ValueError(
                f"TLB has no array for page size {entry.page_size}; "
                f"supported: {sorted(self._geometry)}"
            )
        nsets, ways = self._geometry[entry.page_size]
        sets = self._arrays[entry.page_size]
        entry_set = sets.setdefault(entry.vpn % nsets, OrderedDict())
        key = (entry.asid, entry.vpn)
        entry_set[key] = entry
        entry_set.move_to_end(key)
        if len(entry_set) > ways:
            _, evicted = entry_set.popitem(last=False)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.instant(
                    "tlb_evict",
                    "cpu",
                    args={"vaddr": hex(evicted.vaddr), "page_size": evicted.page_size},
                )
            return evicted
        return None

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    @o1(note="one probe per fixed page-size array")
    def invalidate(self, vaddr: int, asid: int = 0) -> int:
        """Drop any entry covering ``vaddr`` (invlpg); returns count dropped."""
        dropped = 0
        # o1: allow(o1-size-loop) -- the geometry has exactly 3 arrays
        for size, sets in self._arrays.items():
            vpn = vaddr // size
            nsets, _ = self._geometry[size]
            entry_set = sets.get(vpn % nsets)
            if entry_set and entry_set.pop((asid, vpn), None) is not None:
                dropped += 1
        self._trace_invalidate("tlb_invalidate", dropped, vaddr=vaddr)
        return dropped

    @o1(
        note="probes min(range VPNs, sets) sets per fixed array, each of "
        "fixed associativity — work bounded by the TLB's capacity"
    )
    def invalidate_range(self, vaddr: int, length: int, asid: int = 0) -> int:
        """Drop every entry overlapping ``[vaddr, vaddr + length)``.

        An entry for page size ``s`` overlaps iff its VPN lies in
        ``[vaddr // s, (end - 1) // s]``, and a VPN lives in exactly one
        set — so only the sets those VPNs index are probed.  A range
        naming more VPNs than there are sets degenerates to probing
        every set, which is still a hardware constant, not a scan of
        resident entries.
        """
        if length <= 0:
            return 0
        dropped = 0
        end = vaddr + length
        # o1: allow(o1-size-loop) -- the geometry has exactly 3 arrays
        for size, sets in self._arrays.items():
            vpn_lo = vaddr // size
            vpn_hi = (end - 1) // size
            nsets, _ = self._geometry[size]
            span = vpn_hi - vpn_lo + 1
            if span >= nsets:
                indices: Iterable[int] = list(sets)
            else:
                # o1: allow(o1-size-loop) -- span < sets, a hardware constant
                indices = {(vpn_lo + i) % nsets for i in range(span)}
            # o1: allow(o1-size-loop) -- at most nsets indices, a constant
            for index in indices:
                entry_set = sets.get(index)
                if not entry_set:
                    continue
                # o1: allow(o1-size-loop) -- ways per set is fixed
                stale = [
                    key
                    for key, entry in entry_set.items()
                    if key[0] == asid and vpn_lo <= key[1] <= vpn_hi
                ]
                # o1: allow(o1-size-loop) -- at most ways stale keys
                for key in stale:
                    del entry_set[key]
                    dropped += 1
        self._trace_invalidate("tlb_invalidate_range", dropped, vaddr=vaddr)
        return dropped

    def flush_asid(self, asid: int) -> int:
        """Drop every entry belonging to ``asid``; returns count dropped."""
        dropped = 0
        for sets in self._arrays.values():
            for entry_set in sets.values():
                stale = [key for key in entry_set if key[0] == asid]
                for key in stale:
                    del entry_set[key]
                    dropped += 1
        return dropped

    @o1(note="clears a fixed-geometry hardware array")
    def flush_all(self) -> int:
        """Drop everything (CR3 write without PCID); returns count dropped."""
        dropped = self.resident_count()
        # o1: allow(o1-size-loop) -- the TLB arrays have fixed hardware geometry
        for sets in self._arrays.values():
            sets.clear()
        self._trace_invalidate("tlb_flush_all", dropped)
        return dropped

    def _trace_invalidate(
        self, name: str, dropped: int, vaddr: Optional[int] = None
    ) -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        args: Dict[str, object] = {"dropped": dropped}
        if vaddr is not None:
            args["vaddr"] = hex(vaddr)
        self.tracer.instant(name, "cpu", args=args)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @o1(note="counts a fixed-geometry hardware array")
    def resident_count(self, page_size: Optional[int] = None) -> int:
        """Number of valid entries (optionally for one page size)."""
        sizes: Iterable[int] = (
            [page_size] if page_size is not None else self._arrays.keys()
        )
        # o1: allow(o1-size-loop) -- the TLB arrays have fixed hardware geometry
        return sum(
            len(entry_set)
            for size in sizes
            for entry_set in self._arrays.get(size, {}).values()
        )

    def capacity(self, page_size: int) -> int:
        """Maximum entries for ``page_size``."""
        nsets, ways = self._geometry[page_size]
        return nsets * ways
