"""Cache-hierarchy model used to price individual memory references.

The model tracks which physical cache lines are resident in an L1-like
first level and an LLC-like second level, both LRU.  It exists because the
paper's figures hinge on locality effects: a page-table walk over *warm*
page-table nodes costs a handful of nanoseconds, while demand faults touch
cold kernel structures and pay DRAM/NVM latency.  Pricing every reference
through the same cache model makes those effects emerge rather than being
hard-coded.

The model is intentionally simple — fully shared, physically indexed,
no associativity conflicts beyond capacity — because the reproduction
targets the *shape* of the paper's curves, not cycle accuracy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.lint.decorators import allocfree
from repro.units import CACHE_LINE


class CacheModel:
    """Two-level LRU cache over physical line addresses.

    Parameters
    ----------
    clock, costs, counters:
        Shared simulator plumbing; every :meth:`reference` advances the
        clock by the reference's latency.
    tech_of:
        Callback mapping a physical address to its backing
        :class:`MemoryTechnology`, normally provided by
        :class:`repro.mem.physical.PhysicalMemory`.
    l1_lines, llc_lines:
        Capacities in cache lines (defaults: 32 KiB L1, 16 MiB LLC).
    """

    def __init__(
        self,
        clock: SimClock,
        costs: CostModel,
        counters: EventCounters,
        tech_of: Optional[Callable[[int], MemoryTechnology]] = None,
        l1_lines: int = 512,
        llc_lines: int = 262144,
    ) -> None:
        if l1_lines <= 0 or llc_lines <= 0:
            raise ValueError("cache capacities must be positive")
        self._clock = clock
        self._costs = costs
        self._counters = counters
        self._tech_of = tech_of or (lambda _pa: MemoryTechnology.DRAM)
        self._l1_lines = l1_lines
        self._llc_lines = llc_lines
        # OrderedDict as LRU: most recently used at the end.
        self._l1: "OrderedDict[int, None]" = OrderedDict()
        self._llc: "OrderedDict[int, None]" = OrderedDict()

    # ------------------------------------------------------------------
    # Core operation
    # ------------------------------------------------------------------
    @allocfree(note="mask, probe, move-to-end: no per-reference objects")
    def reference(self, paddr: int, write: bool = False) -> int:
        """Reference one cache line at physical address ``paddr``.

        Advances the clock by the latency of the reference and returns it.
        Writes are priced like reads on hit (write-back caches absorb the
        store) but pay the technology's write latency on miss.
        """
        line = paddr & ~(CACHE_LINE - 1)
        if line in self._l1:
            self._l1.move_to_end(line)
            cost = self._costs.l1_hit_ns
            self._counters.bump("cache_l1_hit")
        elif line in self._llc:
            self._llc.move_to_end(line)
            self._install_l1(line)
            cost = self._costs.llc_hit_ns
            self._counters.bump("cache_llc_hit")
        else:
            tech = self._tech_of(line)
            if write:
                cost = self._costs.write_ns(tech)
            else:
                cost = self._costs.read_ns(tech)
            self._install_llc(line)
            self._install_l1(line)
            self._counters.bump("cache_miss")
        self._clock.advance(cost)
        return cost

    def touch_range(self, paddr: int, size: int, write: bool = False) -> int:
        """Reference every line in ``[paddr, paddr + size)``; total cost."""
        if size <= 0:
            return 0
        start = paddr & ~(CACHE_LINE - 1)
        end = paddr + size
        total = 0
        for line in range(start, end, CACHE_LINE):
            total += self.reference(line, write=write)
        return total

    def warm_range(self, paddr: int, size: int) -> None:
        """Install lines of ``[paddr, paddr+size)`` into the LLC, free.

        Models data that was *just written* by another actor (e.g. the
        process that created and filled a file) without charging the
        measured region for it.  Lines land in the LLC only — the L1 is
        too small to survive between phases anyway.  The paper's
        measurement methodology reads files "after writing to the
        allocated pages first", which is exactly this state.
        """
        start = paddr & ~(CACHE_LINE - 1)
        for line in range(start, paddr + size, CACHE_LINE):
            self._install_llc(line)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drop all cached lines (e.g. to model a cold start)."""
        self._l1.clear()
        self._llc.clear()

    def evict_range(self, paddr: int, size: int) -> None:
        """Invalidate all lines covering ``[paddr, paddr + size)``."""
        start = paddr & ~(CACHE_LINE - 1)
        for line in range(start, paddr + size, CACHE_LINE):
            self._l1.pop(line, None)
            self._llc.pop(line, None)

    def is_cached(self, paddr: int) -> bool:
        """True if the line holding ``paddr`` is resident at any level."""
        line = paddr & ~(CACHE_LINE - 1)
        return line in self._l1 or line in self._llc

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _install_l1(self, line: int) -> None:
        self._l1[line] = None
        self._l1.move_to_end(line)
        if len(self._l1) > self._l1_lines:
            self._l1.popitem(last=False)

    def _install_llc(self, line: int) -> None:
        self._llc[line] = None
        self._llc.move_to_end(line)
        if len(self._llc) > self._llc_lines:
            self._llc.popitem(last=False)
