"""Plain-text rendering of experiment results.

Benchmarks print these tables so their output can be laid side by side
with the paper's figures; EXPERIMENTS.md is assembled from the same rows.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.experiments import Series


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    if not headers:
        raise ValueError("need at least one header")
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
    lines = [fmt_row(headers), fmt_row(["-" * width for width in widths])]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_series_table(
    series_list: List[Series],
    x_label: str = "x",
    y_unit_divisor: float = 1000.0,
    y_suffix: str = "us",
) -> str:
    """Tabulate several series sharing the same xs.

    Default divisor renders simulated ns as microseconds, the unit the
    paper's figures use.
    """
    if not series_list:
        raise ValueError("need at least one series")
    xs = series_list[0].xs
    for series in series_list[1:]:
        if series.xs != xs:
            raise ValueError(
                f"series {series.label!r} has different xs than "
                f"{series_list[0].label!r}"
            )
    headers = [x_label] + [f"{series.label} ({y_suffix})" for series in series_list]
    rows = []
    for index, x in enumerate(xs):
        row = [f"{x:g}"]
        for series in series_list:
            row.append(f"{series.ys[index] / y_unit_divisor:.2f}")
        rows.append(row)
    return format_table(headers, rows)


def format_ratio(numerator: float, denominator: float) -> str:
    """'12.3x' style ratio, guarding zero denominators."""
    if denominator <= 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"
