"""Plain-text rendering of experiment results.

Benchmarks print these tables so their output can be laid side by side
with the paper's figures; EXPERIMENTS.md is assembled from the same rows.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence

from repro.analysis.experiments import Series


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    if not headers:
        raise ValueError("need at least one header")
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
    lines = [fmt_row(headers), fmt_row(["-" * width for width in widths])]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_series_table(
    series_list: List[Series],
    x_label: str = "x",
    y_unit_divisor: float = 1000.0,
    y_suffix: str = "us",
) -> str:
    """Tabulate several series sharing the same xs.

    Default divisor renders simulated ns as microseconds, the unit the
    paper's figures use.
    """
    if not series_list:
        raise ValueError("need at least one series")
    xs = series_list[0].xs
    for series in series_list[1:]:
        if series.xs != xs:
            raise ValueError(
                f"series {series.label!r} has different xs than "
                f"{series_list[0].label!r}"
            )
    headers = [x_label] + [f"{series.label} ({y_suffix})" for series in series_list]
    rows = []
    for index, x in enumerate(xs):
        row = [f"{x:g}"]
        for series in series_list:
            row.append(f"{series.ys[index] / y_unit_divisor:.2f}")
        rows.append(row)
    return format_table(headers, rows)


def parse_table(text: str) -> List[Dict[str, object]]:
    """Parse :func:`format_table` output back into records.

    Returns one dict per data row, keyed by header, with cells cast to
    int or float where they parse as numbers.  Used by the benchmark
    harness to emit machine-readable JSON alongside the text tables.

    >>> parse_table(format_table(["x", "y (us)"], [[1, "2.50"]]))
    [{'x': 1, 'y (us)': 2.5}]
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 2:
        return []
    headers = re.split(r"\s{2,}", lines[0].strip())
    records: List[Dict[str, object]] = []
    for line in lines[2:]:  # skip the header rule
        cells = re.split(r"\s{2,}", line.strip())
        if len(cells) != len(headers):
            continue
        record: Dict[str, object] = {}
        for header, cell in zip(headers, cells):
            record[header] = _parse_cell(cell)
        records.append(record)
    return records


def _parse_cell(cell: str) -> object:
    for cast in (int, float):
        try:
            return cast(cell)
        except ValueError:
            continue
    return cell


def format_ratio(numerator: float, denominator: float) -> str:
    """'12.3x' style ratio, guarding zero denominators."""
    if denominator <= 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"
