"""procfs-style introspection: smaps and meminfo for the simulator.

Operators of the real system read ``/proc/<pid>/smaps`` and
``/proc/meminfo``; these builders produce the equivalent views of a
simulated machine, used by examples and by tests that assert on
whole-system accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.analysis.tables import format_table
from repro.obs.export import attribution_rows
from repro.units import KIB, PAGE_SIZE, fmt_bytes, fmt_ns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


def smaps(process: "Process") -> str:
    """Per-VMA mapping report for one process (like /proc/pid/smaps)."""
    rows: List[List[object]] = []
    space = process.space
    for vma in space.vmas:
        resident = 0
        va = vma.start
        while va < vma.end:
            pte = space.page_table.lookup(va)
            if pte is not None:
                base = va - va % pte.page_size
                resident += pte.page_size
                va = base + pte.page_size
            else:
                va += PAGE_SIZE
        rows.append(
            [
                f"{vma.start:#x}-{vma.end:#x}",
                fmt_bytes(vma.length),
                fmt_bytes(resident),
                str(vma.prot).replace("Protection.", ""),
                vma.name or "anon",
            ]
        )
    return format_table(
        ["range", "size", "resident", "prot", "name"], rows
    )


def meminfo(kernel: "Kernel") -> Dict[str, int]:
    """Machine-wide memory accounting (like /proc/meminfo)."""
    info = {
        "dram_total_bytes": kernel.dram_region.size,
        "dram_free_bytes": kernel.dram_buddy.free_frames * PAGE_SIZE,
        "frame_meta_tracked": kernel.frame_table.tracked_count(),
        "tmpfs_used_bytes": kernel.tmpfs.used_bytes(),
        "processes": sum(1 for p in kernel.processes.values() if p.alive),
    }
    if kernel.nvm_region is not None:
        info["nvm_total_bytes"] = kernel.nvm_region.size
        info["nvm_free_bytes"] = (
            kernel.nvm_allocator.free_blocks * PAGE_SIZE
        )
        info["pmfs_used_bytes"] = kernel.pmfs.used_bytes()
    if kernel.zeropool is not None:
        info["zeropool_ready_bytes"] = kernel.zeropool.available * PAGE_SIZE
    if kernel.swap is not None:
        info["swap_used_bytes"] = kernel.swap.used_slots * PAGE_SIZE
    return info


def attribution_report(
    attribution: Dict[Tuple[int, str], int],
    total_ns: int,
    process_names: Optional[Dict[int, str]] = None,
) -> str:
    """Top-down cost attribution: simulated ns per (subsystem, process).

    ``attribution`` is a ``Kernel.measure(trace=True)`` result's
    :attr:`attribution` (or a tracer's live table); ``total_ns`` the
    measured elapsed time the shares are computed against.
    """
    rows: List[List[object]] = []
    for subsystem, process, ns in attribution_rows(attribution, process_names):
        share = f"{100.0 * ns / total_ns:.1f}%" if total_ns else "-"
        rows.append([subsystem, process, fmt_ns(ns), share])
    attributed = sum(attribution.values())
    rows.append(["total", "(all)", fmt_ns(attributed), ""])
    return format_table(["subsystem", "process", "self time", "share"], rows)


def histogram_report(registry) -> str:
    """Latency-histogram summary table (p50/p95/p99 in simulated ns).

    ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`; one row
    per histogram, i.e. per traced span name.
    """
    rows: List[List[object]] = []
    for hist in registry.iter_histograms():
        rows.append(
            [
                hist.name,
                hist.count,
                fmt_ns(hist.p50),
                fmt_ns(hist.p95),
                fmt_ns(hist.p99),
                fmt_ns(hist.max),
            ]
        )
    return format_table(["span", "count", "p50", "p95", "p99", "max"], rows)


def counters_report(counters) -> str:
    """All event counters as a two-column table, sorted by name."""
    rows = [[name, value] for name, value in counters]
    return format_table(["counter", "count"], rows)


def format_meminfo(kernel: "Kernel") -> str:
    """meminfo rendered as the classic two-column text."""
    info = meminfo(kernel)
    rows = [[name, fmt_bytes(value) if name.endswith("bytes") else value]
            for name, value in sorted(info.items())]
    return format_table(["field", "value"], rows)
