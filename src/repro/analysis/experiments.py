"""Parameter sweeps over simulated-time measurements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass
class Series:
    """One measured curve: a label and (x, y) points.

    ``ys`` are simulated nanoseconds unless the experiment says otherwise;
    ``meta`` carries per-point counter deltas for mechanism assertions.
    """

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)
    meta: List[Dict[str, int]] = field(default_factory=list)

    def add(self, x: float, y: float, meta: Dict[str, int] = None) -> None:
        """Append one point."""
        self.xs.append(x)
        self.ys.append(y)
        self.meta.append(meta or {})

    def y_at(self, x: float) -> float:
        """The y value recorded for exactly ``x`` (raises if absent)."""
        return self.ys[self.xs.index(x)]

    def is_roughly_constant(self, tolerance: float = 0.5) -> bool:
        """True if max/min stays within (1 + tolerance) — the O(1) test."""
        if not self.ys:
            return True
        low, high = min(self.ys), max(self.ys)
        if low <= 0:
            return high <= 0
        return high / low <= 1.0 + tolerance

    def is_increasing(self) -> bool:
        """True if ys grow (weakly) with xs — the linear-cost signature."""
        pairs = sorted(zip(self.xs, self.ys))
        return all(b[1] >= a[1] for a, b in zip(pairs, pairs[1:]))

    def growth_factor(self) -> float:
        """y(last)/y(first) after sorting by x; how 'linear' the curve is."""
        pairs = sorted(zip(self.xs, self.ys))
        first, last = pairs[0][1], pairs[-1][1]
        if first <= 0:
            return float("inf") if last > 0 else 1.0
        return last / first


def sweep(
    label: str,
    parameters: Sequence[float],
    body: Callable[[float], Tuple[float, Dict[str, int]]],
) -> Series:
    """Run ``body`` per parameter, collecting a :class:`Series`.

    ``body`` returns (measured_value, counter_delta).  Each invocation is
    expected to build fresh state (a new kernel), so points are
    independent — no warm-cache bleed between sizes.
    """
    series = Series(label=label)
    for parameter in parameters:
        value, meta = body(parameter)
        series.add(parameter, value, meta)
    return series
