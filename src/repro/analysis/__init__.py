"""Experiment running and result formatting for the benchmark harness.

:mod:`experiments` sweeps a parameter over a measured body and collects
simulated-time series; :mod:`tables` renders the series as the rows the
paper's figures plot, so ``pytest benchmarks/`` output can be compared to
the paper by eye.
"""

from repro.analysis.experiments import Series, sweep
from repro.analysis.tables import format_ratio, format_series_table, format_table

__all__ = ["Series", "format_ratio", "format_series_table", "format_table", "sweep"]
